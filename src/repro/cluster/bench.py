"""Cluster benchmark cells — multi-process throughput measurements.

The single-process actor pingpong is *serial*: one message in flight,
so its throughput is one round-trip latency inverted, GIL included.
The cluster cells exist to show what the paper's actor model buys once
a second OS process (second core, second GIL) joins: ``workers``
pinger/echo pairs run concurrently with a pipelined in-flight window
per pair, frames coalesce in the socket transport's batching writer,
and the two processes make progress truly in parallel.

Three cells, three code paths:

``pingpong.cluster``
    real two-process topology over TCP — serializer, Outbox/DedupTable,
    credit gates, the whole reliable-delivery stack;
``pingpong.cluster-local``
    one node, every tell through a :class:`~repro.cluster.node.RemoteRef`
    whose path points back at the minting node — the zero-serialization
    local fast path, isolated from any wire;
``bridge.cluster``
    the paper's bridge with the arbiter *and* the cars colocated on the
    worker process (crossings ride the local fast path) while the
    driver starts each repetition and collects completion over the
    socket — per-repetition wall is two socket hops plus the in-process
    crossing storm, which is what pushes p95 under 10 ms.

Unlike :func:`repro.bench.run_bench`, which times whole adapter calls,
cluster setup (subprocess fork, TCP handshake, remote spawns) would
drown the numbers it is supposed to measure — so
:func:`run_cluster_bench` builds the topology *once* per problem, then
times only the steady-state message exchange of each repetition.
Cells land in the same schema and merge into the same
``BENCH_runtimes.json`` baseline under ``<problem>.<runtime>`` keys.

The worker side is a real second process: ``repro cluster serve``
spawned via ``sys.executable``, announcing its ephemeral port on
stdout.  Everything the bench spawns remotely is a registered actor
type in this module (importing it is what arms the worker).
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from typing import Any, Callable, Optional

from ..actors import Actor
from ..bench import DEFAULT, BenchResult, Workload
from ..obs.metrics import Histogram
from ..obs.profile import Profiler, wall_clock
from .message import PickleSerializer, make_path
from .node import (ClusterConfig, ClusterNode, RemoteRef,
                   register_actor_type)
from .observe import merge_profiles
from .transport import LoopbackHub, SocketTransport

__all__ = ["run_cluster_bench", "cluster_bench_problems",
           "BENCH_CONFIG", "Echo", "ClusterBridge", "Car", "Pinger",
           "BridgeWorld"]

#: bench nodes run with deep windows — the point is throughput, and the
#: backpressure tests use small bounds elsewhere
BENCH_CONFIG = ClusterConfig(mailbox_bound=4096, credit_window=4096,
                             retry_timeout=1.0, max_attempts=6,
                             heartbeat_interval=0.5, suspect_after=5.0,
                             down_after=30.0, ack_every=64)


# ---------------------------------------------------------------------------
# bench actors (registered so `repro cluster serve` can spawn them)
# ---------------------------------------------------------------------------

class Echo(Actor):
    """Bounce every message straight back to its sender."""

    def receive(self, message, sender):
        if sender is not None:
            sender.tell(message, sender=self.self_ref)


class Pinger(Actor):
    """One pipelined ping source: keeps ``inflight`` messages racing.

    Starts a burst on ``("start", rounds)`` and signals ``done`` once
    every round-trip of the repetition completed — the driver thread
    times between those two points.

    ``sender_ref`` optionally overrides the identity the pinger hands
    out as reply-to: the local fast-path cell passes a
    :class:`~repro.cluster.node.RemoteRef` to the pinger itself, so the
    echo's replies route through the cluster path machinery too instead
    of short-circuiting on the raw :class:`~repro.actors.ref.ActorRef`.
    """

    def __init__(self, target: Any, inflight: int,
                 done: threading.Event, sender_ref: Any = None):
        super().__init__()
        self.target = target
        self.inflight = inflight
        self.done = done
        self.sender_ref = sender_ref
        self.rounds = 0
        self.sent = 0
        self.received = 0

    def receive(self, message, sender):
        me = self.sender_ref if self.sender_ref is not None \
            else self.self_ref
        if isinstance(message, (tuple, list)) and message[0] == "start":
            self.rounds = int(message[1])
            self.sent = self.received = 0
            for _ in range(min(self.inflight, self.rounds)):
                self.sent += 1
                self.target.tell(self.sent, sender=me)
            return
        self.received += 1
        if self.sent < self.rounds:
            self.sent += 1
            self.target.tell(self.sent, sender=me)
        if self.received >= self.rounds:
            self.done.set()


class ClusterBridge(Actor):
    """Single-lane bridge arbiter living on the worker node.

    Cars on other nodes ask ``["enter", direction]`` and get ``"go"``
    when the lane is theirs; ``["exit", direction]`` frees it.  One
    direction holds the lane at a time; opposite-direction cars queue.
    """

    def __init__(self):
        super().__init__()
        self.direction: Optional[str] = None
        self.on_bridge = 0
        self.waiting: list[tuple[str, Any]] = []   # (direction, sender)

    def receive(self, message, sender):
        what, direction = message[0], message[1]
        if what == "enter":
            if self.on_bridge == 0 or self.direction == direction:
                self.direction = direction
                self.on_bridge += 1
                sender.tell("go", sender=self.self_ref)
            else:
                self.waiting.append((direction, sender))
        elif what == "exit":
            self.on_bridge -= 1
            if self.on_bridge == 0:
                self.direction = None
                if self.waiting:
                    self.direction = self.waiting[0][0]
                    grant = [w for w in self.waiting
                             if w[0] == self.direction]
                    self.waiting = [w for w in self.waiting
                                    if w[0] != self.direction]
                    for _, waiter in grant:
                        self.on_bridge += 1
                        waiter.tell("go", sender=self.self_ref)


class Car(Actor):
    """One car crossing the (possibly remote) bridge repeatedly.

    ``notify`` is any zero-arg callable invoked when this car finishes
    its quota — a ``threading.Event.set`` for a driver-side car, a
    closure telling a coordinator actor for a colocated one.
    ``sender_ref`` plays the same role as on :class:`Pinger`.
    """

    def __init__(self, bridge: Any, direction: str,
                 notify: Callable[[], None], sender_ref: Any = None):
        super().__init__()
        self.bridge = bridge
        self.direction = direction
        self.notify = notify
        self.sender_ref = sender_ref
        self.crossings = 0

    def receive(self, message, sender):
        me = self.sender_ref if self.sender_ref is not None \
            else self.self_ref
        if isinstance(message, (tuple, list)) and message[0] == "start":
            self.crossings = int(message[1])
            self.bridge.tell(["enter", self.direction], sender=me)
            return
        if message == "go":
            self.bridge.tell(["exit", self.direction], sender=me)
            self.crossings -= 1
            if self.crossings > 0:
                self.bridge.tell(["enter", self.direction], sender=me)
            else:
                self.notify()


class BridgeWorld(Actor):
    """Worker-side coordinator: the whole bridge world in one process.

    Spawned remotely (``inject_node=True``), it lazily builds the
    arbiter plus ``cars`` car actors *on its own node*, wiring every
    car to the bridge through a :class:`~repro.cluster.node.RemoteRef`
    so each enter/go/exit rides the zero-serialization local fast path.
    Each ``("start", cars, crossings)`` kicks one repetition; when the
    last car reports in, the world replies ``"done"`` to the message's
    sender — the only two frames that cross the wire per repetition.
    """

    def __init__(self, node: Any):
        super().__init__()
        self.node = node
        self.cars: list[Any] = []
        self.cars_done = 0
        self.cars_n = 0
        self.reply_to: Any = None

    def receive(self, message, sender):
        if isinstance(message, (tuple, list)) and message[0] == "start":
            self.cars_n = int(message[1])
            crossings = int(message[2])
            self.reply_to = sender
            self.cars_done = 0
            if not self.cars:
                self._build()
            for car in self.cars:
                car.tell(("start", crossings), sender=self.self_ref)
        elif message == "car-done":
            self.cars_done += 1
            if self.cars_done >= self.cars_n \
                    and self.reply_to is not None:
                self.reply_to.tell("done", sender=self.self_ref)

    def _build(self) -> None:
        node = self.node
        me = self.self_ref
        node.spawn(ClusterBridge, name="bridge")
        bridge_path = make_path(node.name, "bridge")
        for i in range(self.cars_n):
            name = f"car-{i}"
            self.cars.append(node.spawn(
                Car,
                RemoteRef(node, bridge_path),   # per-car ref, own cache
                "red" if i % 2 == 0 else "blue",
                lambda: me.tell("car-done"),
                name=name,
                sender_ref=RemoteRef(node, make_path(node.name, name))))


register_actor_type("cluster-echo", Echo)
register_actor_type("cluster-bridge", ClusterBridge)
register_actor_type("cluster-bridge-world", BridgeWorld, inject_node=True)


def cluster_bench_problems() -> list[str]:
    return ["pingpong", "pingpong-local", "bridge"]


# ---------------------------------------------------------------------------
# worker process management
# ---------------------------------------------------------------------------

def spawn_worker(name: str = "worker", timeout: float = 20.0,
                 extra: Optional[list] = None
                 ) -> tuple[subprocess.Popen, int]:
    """Start a ``repro cluster serve`` child; returns (proc, port).

    The child binds an ephemeral port and announces ``PORT <n>`` on
    stdout; we block until that line (or die trying).  ``extra``
    appends additional ``serve`` flags (e.g. ``["--trace"]``).
    """
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "cluster", "serve",
         "--name", name, "--port", "0", "--serializer", "pickle",
         "--announce", *(extra or [])],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True)
    deadline = time.monotonic() + timeout
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("PORT "):
            port = int(line.split()[1])
            break
    if port is None:
        proc.kill()
        raise RuntimeError("cluster worker never announced its port")
    return proc, port


class _Topology:
    """Driver node + one worker process, torn down reliably."""

    processes = 2

    def __init__(self, profiler: Profiler):
        self.proc, port = spawn_worker()
        self.driver = ClusterNode(
            "driver", SocketTransport("driver", listen=False),
            serializer=PickleSerializer(), config=BENCH_CONFIG,
            profiler=profiler, workers=4)
        self.driver.connect("worker", ("127.0.0.1", port))

    def close(self) -> dict[str, Any]:
        try:
            worker_profile = self.driver.status_of(
                "worker", profile=True, timeout=5.0).get("profile") or {}
        except Exception:
            worker_profile = {}
        self.driver.close()
        self.proc.terminate()
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.proc.kill()
        return worker_profile


class _LoopbackTopology:
    """One node on an in-process loopback hub — no sockets, no second
    process; every path-addressed tell resolves to the local fast path."""

    processes = 1

    def __init__(self, profiler: Profiler):
        self.hub = LoopbackHub()
        self.driver = ClusterNode(
            "solo", self.hub.join("solo"),
            serializer=PickleSerializer(), config=BENCH_CONFIG,
            profiler=profiler, workers=4)

    def close(self) -> dict[str, Any]:
        self.driver.close()
        return {}


# ---------------------------------------------------------------------------
# the cells
# ---------------------------------------------------------------------------

def _measure(setup: Callable[[ClusterNode], tuple],
             workload: Workload, profiler: Profiler,
             clock: Callable[[], float], problem: str,
             spans: list, timeout: float = 120.0,
             topology: type = _Topology,
             runtime: str = "cluster") -> dict[str, Any]:
    """Shared shape of one cluster cell: topology up (untimed), then
    warmup + timed repetitions of the steady-state exchange."""
    topo = topology(profiler)
    try:
        start_rep, ops_per_rep = setup(topo.driver)
        wall = Histogram()
        ops_total = 0
        total_s = 0.0
        for rep in range(workload.warmup + workload.repetitions):
            t0 = clock()
            if not start_rep():
                raise RuntimeError(
                    f"cluster {problem} repetition timed out "
                    f"(driver status: {topo.driver.status()})")
            t1 = clock()
            if rep < workload.warmup:
                continue
            measured = rep - workload.warmup
            wall.record((t1 - t0) * 1e6)
            ops_total += ops_per_rep
            total_s += t1 - t0
            spans.append((f"{problem} rep {measured}", runtime, t0, t1))
        worker_profile = topo.close()
        merged = merge_profiles({"driver": profiler.snapshot(),
                                 "worker": worker_profile})
        return {
            "problem": problem,
            "runtime": runtime,
            "workers": workload.workers,
            "ops": workload.ops,
            "ops_total": ops_per_rep,
            "repetitions": workload.repetitions,
            "wall_us": wall.snapshot(),
            "throughput_ops_per_s": (
                round(ops_total / total_s, 1) if total_s > 0 else 0.0),
            "profile": {"counters": merged["counters"],
                        "gauges": merged["gauges"],
                        "histograms": merged["histograms"]},
        }
    except BaseException:
        topo.close()
        raise


def _pingpong_setup(workload: Workload, timeout: float
                    ) -> Callable[[ClusterNode], tuple]:
    def setup(driver: ClusterNode) -> tuple:
        pairs = max(2, workload.workers)
        rounds_each = workload.ops
        inflight = 128   # pipeline depth per pair; measured optimum
        events, pingers = [], []
        for i in range(pairs):
            echo = driver.spawn_remote("worker", "cluster-echo",
                                       f"echo-{i}")
            done = threading.Event()
            events.append(done)
            pingers.append(driver.spawn(Pinger, echo, inflight, done,
                                        name=f"pinger-{i}"))

        def start_rep() -> bool:
            for done in events:
                done.clear()
            for pinger in pingers:
                pinger.tell(("start", rounds_each))
            return all(done.wait(timeout) for done in events)

        return start_rep, pairs * rounds_each
    return setup


def _pingpong_local_setup(workload: Workload, timeout: float
                          ) -> Callable[[ClusterNode], tuple]:
    """Same pinger/echo pairs, one node: every tell and every reply is
    a path-addressed RemoteRef send that resolves to the
    zero-serialization local fast path."""
    def setup(node: ClusterNode) -> tuple:
        pairs = max(2, workload.workers)
        rounds_each = workload.ops
        inflight = 32
        events, pingers = [], []
        for i in range(pairs):
            node.spawn(Echo, name=f"echo-{i}")
            echo_ref = RemoteRef(node, make_path(node.name, f"echo-{i}"))
            done = threading.Event()
            events.append(done)
            pinger_name = f"pinger-{i}"
            pingers.append(node.spawn(
                Pinger, echo_ref, inflight, done, name=pinger_name,
                sender_ref=RemoteRef(node,
                                     make_path(node.name, pinger_name))))

        def start_rep() -> bool:
            for done in events:
                done.clear()
            for pinger in pingers:
                pinger.tell(("start", rounds_each))
            return all(done.wait(timeout) for done in events)

        return start_rep, pairs * rounds_each
    return setup


def _bridge_setup(workload: Workload, timeout: float
                  ) -> Callable[[ClusterNode], tuple]:
    """Bridge world colocated on the worker; the driver's collector
    actor hears one ``"done"`` per repetition."""
    def setup(driver: ClusterNode) -> tuple:
        cars_n = max(2, workload.workers)
        # crossings are latency-bound (enter→go→exit per lap), so the
        # per-repetition quota is scaled down from ``ops`` to keep one
        # repetition's wall in single-digit milliseconds
        crossings = max(8, workload.ops // 32)
        world = driver.spawn_remote("worker", "cluster-bridge-world",
                                    "world")
        done = threading.Event()

        class _Collector(Actor):
            def receive(self, message, sender):
                if message == "done":
                    done.set()

        collector = driver.spawn(_Collector, name="collector")

        def start_rep() -> bool:
            done.clear()
            world.tell(("start", cars_n, crossings), sender=collector)
            return done.wait(timeout)

        return start_rep, cars_n * crossings
    return setup


#: problem name -> (cell problem, cell runtime, setup factory, topology)
_CELLS: dict[str, tuple[str, str, Callable, type]] = {
    "pingpong": ("pingpong", "cluster", _pingpong_setup, _Topology),
    "pingpong-local": ("pingpong", "cluster-local",
                       _pingpong_local_setup, _LoopbackTopology),
    "bridge": ("bridge", "cluster", _bridge_setup, _Topology),
}


def run_cluster_bench(problems: Optional[list[str]] = None,
                      workload: Workload = DEFAULT,
                      clock: Optional[Callable[[], float]] = None,
                      progress: Optional[Callable[[str], None]] = None,
                      timeout: float = 120.0) -> BenchResult:
    """Measure the cluster cells; returns a BenchResult like
    :func:`repro.bench.run_bench` (cells carry ``runtime="cluster"``
    or ``"cluster-local"``).

    Socket problems spawn one worker process each — real sockets, real
    second core.  Not deterministic; lives outside tier-1 on purpose.
    """
    known = cluster_bench_problems()
    problems = list(problems) if problems else known
    for p in problems:
        if p not in known:
            raise KeyError(f"unknown cluster bench problem {p!r}; known: "
                           + ", ".join(known))
    clock = clock if clock is not None else wall_clock
    cells: list[dict[str, Any]] = []
    spans: list[tuple] = []
    for name in problems:
        problem, runtime, setup_factory, topology = _CELLS[name]
        if progress is not None:
            progress(f"{problem} on {runtime} "
                     f"({topology.processes} process"
                     f"{'es' if topology.processes > 1 else ''}, "
                     f"{workload.repetitions} reps)")
        profiler = Profiler(clock=clock)
        cells.append(_measure(setup_factory(workload, timeout), workload,
                              profiler, clock, problem, spans, timeout,
                              topology=topology, runtime=runtime))
    return BenchResult(workload, cells, spans)
