"""Delivery guarantees on top of an unreliable frame transport.

Three small, independently testable pieces give the cluster its
"at-least-once on the wire, effectively exactly-once at the actor"
contract plus credit-based backpressure:

* :class:`Outbox` — per-destination retransmission window.  Every
  reliable envelope registers on send; cumulative ACKs retire prefixes;
  :meth:`due` hands back what needs retransmitting (timeout with
  exponential backoff per attempt) and :meth:`expired` what has
  exhausted its attempts and must escalate to dead letters.
* :class:`DedupTable` — per-origin receive-side filter.  Tracks the
  contiguous delivered prefix plus a sparse set for out-of-order
  arrivals, so a retried frame whose original made it through is
  recognized and dropped (that is what turns at-least-once transport
  into exactly-once actor delivery), and doubles as the cumulative-ACK
  generator.
* :class:`CreditGate` — send-side park/resume point of the credit
  protocol.  ``acquire`` blocks the *sender* while the receiver's
  bounded remote mailbox is full; ``release`` (on CREDIT envelopes)
  wakes it; ``brk`` fails all parked senders when the peer is declared
  down so nobody waits on a corpse.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

__all__ = ["Outbox", "DedupTable", "CreditGate", "RetryPolicy"]


class RetryPolicy:
    """Timeout → exponential backoff → give-up schedule for one link."""

    __slots__ = ("base_timeout", "factor", "max_attempts")

    def __init__(self, base_timeout: float = 0.2, factor: float = 2.0,
                 max_attempts: int = 5):
        if base_timeout <= 0 or factor < 1 or max_attempts < 1:
            raise ValueError("invalid retry policy")
        self.base_timeout = base_timeout
        self.factor = factor
        self.max_attempts = max_attempts

    def deadline_after(self, attempts: int) -> float:
        """Seconds to wait after the ``attempts``-th transmission."""
        return self.base_timeout * (self.factor ** (attempts - 1))


class _Pending:
    __slots__ = ("envelope", "attempts", "next_due")

    def __init__(self, envelope: Any, attempts: int, next_due: float):
        self.envelope = envelope
        self.attempts = attempts
        self.next_due = next_due


class Outbox:
    """Unacknowledged reliable envelopes for one destination node."""

    def __init__(self, policy: Optional[RetryPolicy] = None):
        self.policy = policy if policy is not None else RetryPolicy()
        self._pending: dict[int, _Pending] = {}
        self._lock = threading.Lock()
        self.retries = 0
        # fast-path gates for the maintenance tick: scanning thousands
        # of healthy in-flight entries every few ms is pure overhead,
        # so ``due``/``expired`` bail before locking unless something
        # can actually be ready.  ``_min_due`` may go stale-low after
        # acks retire entries (costing one wasted scan), never
        # stale-high.
        self._min_due = float("inf")
        self._exhausted = 0            # entries at max attempts

    def register(self, seq: int, envelope: Any, now: float) -> None:
        next_due = now + self.policy.deadline_after(1)
        with self._lock:
            self._pending[seq] = _Pending(envelope, 1, next_due)
            if next_due < self._min_due:
                self._min_due = next_due
            if self.policy.max_attempts <= 1:
                self._exhausted += 1

    def on_ack(self, cum_seq: int) -> int:
        """Retire every pending seq <= ``cum_seq``; returns how many."""
        with self._lock:
            done = [s for s in self._pending if s <= cum_seq]
            exhausted = 0
            for s in done:
                if self._pending[s].attempts >= self.policy.max_attempts:
                    exhausted += 1
                del self._pending[s]
            self._exhausted -= exhausted
            if not self._pending:
                self._min_due = float("inf")
            return len(done)

    def due(self, now: float) -> list[Any]:
        """Envelopes to retransmit now (attempt counts already bumped)."""
        if now < self._min_due:        # racy read is safe: stale-low only
            return []
        out = []
        with self._lock:
            nxt = float("inf")
            for pend in self._pending.values():
                if pend.next_due <= now \
                        and pend.attempts < self.policy.max_attempts:
                    pend.attempts += 1
                    pend.next_due = now + self.policy.deadline_after(
                        pend.attempts)
                    self.retries += 1
                    out.append(pend.envelope)
                    if pend.attempts >= self.policy.max_attempts:
                        self._exhausted += 1
                if pend.next_due < nxt:
                    nxt = pend.next_due
            self._min_due = nxt
        return out

    def expired(self, now: float) -> list[Any]:
        """Envelopes past their last attempt — remove and escalate."""
        if not self._exhausted:
            return []
        out = []
        with self._lock:
            for seq in sorted(self._pending):
                pend = self._pending[seq]
                if pend.attempts >= self.policy.max_attempts \
                        and pend.next_due <= now:
                    out.append(pend.envelope)
                    del self._pending[seq]
                    self._exhausted -= 1
        return out

    def drain(self) -> list[Any]:
        """Remove and return everything pending (peer declared down)."""
        with self._lock:
            out = [self._pending[s].envelope for s in sorted(self._pending)]
            self._pending.clear()
            self._min_due = float("inf")
            self._exhausted = 0
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)


class DedupTable:
    """Seen-sequence filter + cumulative-ACK source for one origin."""

    __slots__ = ("high", "_sparse")

    def __init__(self) -> None:
        self.high = 0                  # contiguous prefix fully delivered
        self._sparse: set[int] = set()

    def fresh(self, seq: int) -> bool:
        """True exactly once per sequence number; compacts the prefix."""
        if seq <= self.high or seq in self._sparse:
            return False
        self._sparse.add(seq)
        while self.high + 1 in self._sparse:
            self.high += 1
            self._sparse.discard(self.high)
        return True

    def skip_to(self, seq: int) -> None:
        """Advance the delivered prefix over abandoned sequence numbers.

        The origin sends SKIP after dead-lettering undeliverable
        envelopes (retry exhaustion, peer-down drain): those seqs will
        never arrive, and without this the cumulative ACK would stall
        below them forever, falsely expiring every later send.
        Idempotent; never moves the prefix backwards.
        """
        if seq <= self.high:
            return
        for s in [s for s in self._sparse if s <= seq]:
            self._sparse.discard(s)
        self.high = seq
        while self.high + 1 in self._sparse:
            self.high += 1
            self._sparse.discard(self.high)

    @property
    def cumulative(self) -> int:
        """Highest seq such that everything at or below it was seen."""
        return self.high


class CreditGate:
    """Counting semaphore with a breakable failure state.

    One gate per remote target actor on the *sending* node: ``window``
    credits to start, one consumed per TELL, replenished by CREDIT
    envelopes as the receiver admits messages into the bounded remote
    mailbox.  ``parked`` counts threads currently blocked in
    :meth:`acquire` (observability + the saturation detector).
    """

    def __init__(self, window: int,
                 clock: Optional[Callable[[], float]] = None):
        if window < 1:
            raise ValueError("credit window must be >= 1")
        self.window = window
        self._available = window
        self._cond = threading.Condition()
        self._broken: Optional[str] = None
        # timeout deadlines come off this clock, so a node running on a
        # simulated clock times out on simulated time
        self._clock = clock if clock is not None else time.monotonic
        self.parked = 0
        self.total_parks = 0

    def acquire(self, timeout: Optional[float] = None) -> bool:
        """Take one credit; blocks (parks) while none are available.

        Returns False if the gate broke or the timeout expired — the
        caller dead-letters instead of sending.  A ``timeout`` of 0
        never parks: it fails immediately when no credit is available
        (the simulator's fail-fast mode).
        """
        with self._cond:
            if self._available > 0 and self._broken is None:
                self._available -= 1
                return True
            deadline = None if timeout is None \
                else self._clock() + timeout
            self.parked += 1
            self.total_parks += 1
            try:
                while self._available <= 0 and self._broken is None:
                    if deadline is None:
                        self._cond.wait()
                        continue
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        return False
                    self._cond.wait(remaining)
            finally:
                self.parked -= 1
            if self._broken is not None:
                return False
            self._available -= 1
            return True

    def release(self, n: int = 1) -> None:
        with self._cond:
            self._available = min(self.window, self._available + n)
            self._cond.notify_all()

    def brk(self, reason: str) -> None:
        """Fail the gate: wake every parked sender with a refusal."""
        with self._cond:
            self._broken = reason
            self._cond.notify_all()

    @property
    def broken(self) -> Optional[str]:
        return self._broken

    @property
    def available(self) -> int:
        with self._cond:
            return self._available
