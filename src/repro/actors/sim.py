"""Kernel-backed actor runtime — actors you can model-check.

Runs the same :class:`~repro.actors.actor.Actor` subclasses as the
threaded :class:`~repro.actors.system.ActorSystem`, but each actor is a
daemon task of the deterministic kernel with a
:class:`~repro.core.mailbox.Mailbox`.  Consequences:

* the explorer can enumerate every delivery order the mailbox policy
  admits — "two messages sent concurrently can arrive in either order"
  becomes an enumerable set of behaviours;
* message processing is one atomic step (the Hewitt model's per-message
  serialization), with sends/spawns buffered during the handler and
  issued as kernel effects right after — logically "during" processing,
  exactly as the actor axioms allow;
* quiescence ends a run: when only idle actors remain, the schedule is
  complete (kernel daemon rule).

Driver code runs as a kernel task and uses the ``*_gen`` helpers::

    def program(sched):
        system = SimActorSystem(sched)
        def driver():
            counter = system.spawn(Counter, name="c")
            yield from system.tell_gen(counter, "inc")
            reply = yield from system.ask_gen(counter, "get")
            yield Emit(reply)
        sched.spawn(driver, name="driver")
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional

from ..core.effects import Effect, Receive, Send, Spawn
from ..core.mailbox import DeliveryPolicy, Mailbox
from ..core.scheduler import Scheduler
from .actor import Actor, ActorContext
from .ref import ActorRef

__all__ = ["SimActorSystem"]


class _SimEnvelope:
    """Payload + logical sender ref, carried through the kernel mailbox."""

    __slots__ = ("payload", "sender")

    def __init__(self, payload: Any, sender: Optional[ActorRef]):
        self.payload = payload
        self.sender = sender

    def __repr__(self) -> str:
        who = self.sender.name if self.sender else "ext"
        return f"{self.payload!r}<-{who}"


class _StopSignal:
    def __repr__(self) -> str:
        return "<stop>"


class _SimCell:
    """ActorCell protocol implementation for the kernel runtime."""

    def __init__(self, system: "SimActorSystem", actor: Actor,
                 name: str, actor_id: int):
        self.system = system
        self.actor = actor
        self.mailbox = Mailbox(name, policy=system.mailbox_policy)
        self.ref = ActorRef(actor_id, name, self)
        self._stopped = False
        #: messages this actor has handled (stop signals excluded)
        self.processed = 0

    @property
    def stopped(self) -> bool:
        return self._stopped

    def enqueue(self, message: Any, sender: Optional[ActorRef]) -> None:
        """Reached via ``ref.tell`` — only legal while a handler runs,
        where sends are buffered (asynchronous sends inside atomic
        message processing).  Outside a handler, use
        :meth:`SimActorSystem.tell_gen` from a kernel task."""
        outbox = self.system._outbox
        if outbox is None:
            raise RuntimeError(
                "tell() on a sim actor outside a message handler; use "
                "SimActorSystem.tell_gen(...) from kernel code")
        outbox.append(("send", self, _SimEnvelope(message, sender)))


class SimActorSystem:
    """Deterministic actor runtime on a :class:`Scheduler`.

    ``mailbox_policy`` selects which arrival reorderings exist —
    ARBITRARY is the paper's semantics, PER_SENDER_FIFO is the
    Erlang/Akka guarantee, FIFO is misconception M5's faulty world.
    """

    _ids = itertools.count(1)

    def __init__(self, sched: Scheduler,
                 mailbox_policy: DeliveryPolicy = DeliveryPolicy.ARBITRARY):
        self.sched = sched
        self.mailbox_policy = mailbox_policy
        self._outbox: Optional[list[tuple]] = None
        self.cells: list[_SimCell] = []

    # ------------------------------------------------------------------
    def spawn(self, actor_class: type, *args: Any, name: str = "",
              **kwargs: Any) -> ActorRef:
        """Create an actor; runs as a kernel daemon task.

        Callable both from driver setup code (before/outside the run)
        and from inside handlers (Hewitt axiom 2) — in the latter case
        the task spawn is buffered as an effect.
        """
        if not issubclass(actor_class, Actor):
            raise TypeError(f"{actor_class.__name__} is not an Actor subclass")
        actor = actor_class(*args, **kwargs)
        actor_id = next(self._ids)
        cell = _SimCell(self, actor,
                        name or f"{actor_class.__name__.lower()}-{actor_id}",
                        actor_id)
        actor.context = ActorContext(self, cell.ref)
        self.cells.append(cell)
        if self._outbox is not None:
            self._outbox.append(("spawn", cell, None))
        else:
            self.sched.spawn(self._actor_loop(cell), name=cell.ref.name,
                             daemon=True)
        return cell.ref

    def stop(self, ref: ActorRef) -> None:
        """Usable from inside handlers only (buffers a stop signal)."""
        cell = self._cell_of(ref)
        cell.enqueue(_StopSignal(), None)

    def _cell_of(self, ref: ActorRef) -> _SimCell:
        for cell in self.cells:
            if cell.ref == ref:
                return cell
        raise KeyError(f"unknown ref {ref!r}")

    def hazards(self) -> list:
        """Hazards the kernel's monitor bus collected, if one is attached.

        Actors are plain kernel tasks, so creating the underlying
        scheduler with ``Scheduler(monitors=MonitorBus())`` already
        streams every actor send/deliver through the shipped detectors:
        mailbox saturation, message reordering (the M5 witness), actor
        handler failures.  This accessor just surfaces the result from
        actor-level code.
        """
        bus = getattr(self.sched, "monitors", None)
        return list(bus.hazards) if bus is not None else []

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-actor message statistics, keyed by actor name.

        Everything is in logical message counts — deterministic across
        replays of the same schedule — so tests can assert equality
        between runs and dashboards can diff snapshots.
        """
        return {
            cell.ref.name: {
                "processed": cell.processed,
                "pending": len(cell.mailbox),
                "mailbox_high_water": cell.mailbox.high_water,
                "delivered": cell.mailbox.delivered_count,
                "stopped": cell.stopped,
            }
            for cell in self.cells
        }

    # ------------------------------------------------------------------
    # kernel-side generators
    # ------------------------------------------------------------------
    def tell_gen(self, ref: ActorRef, message: Any,
                 sender: Optional[ActorRef] = None) -> Iterator[Effect]:
        """Send from driver/kernel code (asynchronous, one Send effect)."""
        cell = self._cell_of(ref)
        yield Send(cell.mailbox, _SimEnvelope(message, sender))

    def stop_gen(self, ref: ActorRef) -> Iterator[Effect]:
        """Stop an actor from driver code (graceful: queued messages
        delivered first under FIFO policies)."""
        cell = self._cell_of(ref)
        yield Send(cell.mailbox, _SimEnvelope(_StopSignal(), None))

    def ask_gen(self, ref: ActorRef, payload: Any,
                name: str = "ask") -> Iterator[Effect]:
        """Request/response from driver code: returns the reply payload."""
        reply_box = Mailbox(f"{name}-reply", policy=self.mailbox_policy)
        reply_ref = _ReplyRef(self, reply_box, name)
        cell = self._cell_of(ref)
        yield Send(cell.mailbox, _SimEnvelope(payload, reply_ref))
        envelope = yield Receive(reply_box)
        return envelope.payload

    def _actor_loop(self, cell: _SimCell) -> Iterator[Effect]:
        actor = cell.actor
        self._run_handler(cell, actor.pre_start)
        yield from self._flush(cell)
        while True:
            envelope = yield Receive(cell.mailbox)
            if isinstance(envelope.payload, _StopSignal):
                cell._stopped = True
                self._run_handler(cell, actor.post_stop)
                yield from self._flush(cell)
                return
            actor.context.sender = envelope.sender
            self._run_handler(cell, actor.current_behaviour(),
                              envelope.payload, envelope.sender)
            actor.context.sender = None
            cell.processed += 1
            yield from self._flush(cell)

    def _run_handler(self, cell: _SimCell, fn, *args: Any) -> None:
        """Run user code with the send/spawn buffer installed."""
        previous, self._outbox = self._outbox, []
        try:
            fn(*args)
        finally:
            buffered = self._outbox
            self._outbox = previous
            cell._pending_effects = buffered  # type: ignore[attr-defined]

    def _flush(self, cell: _SimCell) -> Iterator[Effect]:
        """Issue the effects the handler buffered."""
        for kind, target, envelope in getattr(cell, "_pending_effects", []):
            if kind == "send":
                if isinstance(target, _ReplyRef):
                    yield Send(target.mailbox, envelope)
                else:
                    yield Send(target.mailbox, envelope)
            elif kind == "spawn":
                yield Spawn(self._actor_loop(target), name=target.ref.name,
                            daemon=True)
        cell._pending_effects = []  # type: ignore[attr-defined]


class _ReplyRef(ActorRef):
    """Sender ref whose cell is a bare reply mailbox (for ask_gen)."""

    _reply_ids = itertools.count(10**9)

    def __init__(self, system: SimActorSystem, mailbox: Mailbox, name: str):
        self.mailbox = mailbox
        self._system = system
        super().__init__(next(self._reply_ids), name, self)  # self as cell

    # ActorCell protocol
    @property
    def stopped(self) -> bool:
        return False

    def enqueue(self, message: Any, sender: Optional[ActorRef]) -> None:
        outbox = self._system._outbox
        if outbox is None:
            raise RuntimeError("reply outside a message handler")
        outbox.append(("send", self, _SimEnvelope(message, sender)))
