"""repro.actors — the Scala Actors model, in Python.

:class:`Actor` subclasses implement Hewitt's axioms (send / create /
designate-next-behaviour) and run on either runtime:

* :class:`ActorSystem` — real threads, shared dispatcher pool, for
  throughput and the performance benchmarks;
* :class:`SimActorSystem` — deterministic kernel tasks, for exhaustive
  exploration of message arrival orders with :mod:`repro.verify`.

Plus the interaction patterns the labs use: :func:`ask` request/response,
routers, scatter-gather aggregation.
"""

from .actor import Actor, ActorContext, Behaviour
from .executor import WorkStealingExecutor
from .patterns import Ask, RoundRobinRouter, aggregate, ask
from .ref import ActorRef
from .sim import SimActorSystem
from .system import ActorSystem, DeadLetter, SupervisionDirective

__all__ = [
    "Actor", "ActorContext", "Behaviour", "ActorRef",
    "ActorSystem", "SupervisionDirective", "DeadLetter",
    "WorkStealingExecutor",
    "SimActorSystem",
    "ask", "Ask", "RoundRobinRouter", "aggregate",
]
