"""Work-stealing executor — the actor dispatch engine.

The original dispatcher pushed every processing job through one shared
:class:`~repro.threads.collections.BlockingQueue`, which cost a Monitor
acquire + notify (and usually an OS wakeup) per scheduled mailbox.  This
executor replaces that single point of contention with the standard
work-stealing arrangement:

* **per-worker deques** — each worker owns a ``collections.deque`` of
  runnable tasks.  Single-element ``append``/``pop``/``popleft`` on a
  deque are atomic under the GIL, so the common enqueue/dequeue pair is
  lock-free;
* **LIFO local push/pop** — a task submitted *from* a worker thread goes
  onto that worker's own deque and is popped right back off it (newest
  first).  A request/reply pair like ping-pong therefore executes as a
  tight single-threaded loop: the reply mailbox the handler just filled
  is still cache-warm, and no other thread is woken at all;
* **randomized FIFO stealing** — a worker that runs dry scans the other
  deques from a random start and takes the *oldest* task of the first
  non-empty victim, so stolen work is the work that waited longest;
* **parked-worker wakeup protocol** — idle workers park on a private
  ``Event``.  A parker registers itself in the parked list *before*
  re-checking every deque, and submitters enqueue *before* consulting
  the parked list; whichever side loses the race still observes the
  other's write, so no task is stranded (the classic lost-wakeup
  interleaving is impossible, and a bounded wait backstops the proof);
* **affinity** — external submits hash a stable key (the actor id) to a
  home worker, so a hot actor's cell keeps landing on the same thread
  instead of bouncing between caches, while stealing still rebalances
  whenever that thread falls behind.

Fairness: a task re-submitted with ``fair=True`` (an actor that
exhausted its throughput budget but still has mail) is pushed to the
*steal side* of the deque, behind everything already waiting — one
flooded mailbox cannot monopolize its worker.

The executor runs arbitrary callables and never lets one kill a worker;
actor semantics (per-actor ordering, supervision, dead letters) live in
:mod:`repro.actors.system`, which guarantees a cell is submitted to at
most one worker at a time.

Observability: per-worker counters are plain ints (single writer each,
torn reads impossible under the GIL) summed by :attr:`stats`; with a
:class:`~repro.obs.profile.Profiler` attached the executor additionally
emits ``executor.steals``, ``executor.parks`` and ``executor.local_hits``
— all behind ``is None`` guards, so the hot path allocates nothing when
profiling is off.
"""

from __future__ import annotations

import itertools
import random
import threading
from collections import deque
from typing import Any, Callable, Optional

__all__ = ["WorkStealingExecutor"]


class _CtxTask:
    """A submitted callable bundled with the submitter's request
    context: the worker runs it with the context installed and records
    one ``executor-queue``-parented span via the tracer's chain."""

    __slots__ = ("trc", "ctx", "task", "t_submit")

    def __init__(self, trc: Any, ctx: Any, task: Callable[[], Any]):
        self.trc = trc
        self.ctx = ctx
        self.task = task
        self.t_submit = trc.now()

    def __call__(self) -> Any:
        trc = self.trc
        if not trc.admit(self.ctx.request_id):
            # per-request hop budget spent: run untraced, drop the chain
            return self.task()
        t0 = trc.now()
        queued = trc.chain(self.ctx, "executor-queue", "executor",
                           self.t_submit, t0)
        run_id = trc.next_id()
        trc.install(trc.context(queued.request_id, run_id))
        try:
            return self.task()
        finally:
            trc.record(run_id, queued.span_id, queued.request_id,
                       "handler", "executor", t0, trc.now())
            trc.uninstall()


class _Worker:
    """One worker thread and its task deque."""

    __slots__ = ("idx", "tasks", "event", "thread", "rng", "busy",
                 "executed", "steals", "parks", "local_hits")

    def __init__(self, idx: int, name: str):
        self.idx = idx
        #: right end = local LIFO side, left end = steal/fair-FIFO side
        self.tasks: deque[Callable[[], Any]] = deque()
        self.event = threading.Event()
        self.rng = random.Random(idx * 2654435761 + 1)
        #: True from just before a dequeue attempt until the task (if
        #: any) finished — read by idle() to cover the in-flight window
        self.busy = False
        self.executed = 0
        self.steals = 0
        self.parks = 0
        self.local_hits = 0
        self.thread: Optional[threading.Thread] = None


class WorkStealingExecutor:
    """Fixed set of workers draining per-worker deques with stealing.

    ::

        ex = WorkStealingExecutor(workers=4)
        ex.submit(task)                  # task: any zero-arg callable
        ...
        ex.shutdown(wait=True)

    :meth:`submit` returns ``False`` (instead of raising) once the
    executor is shut down — callers decide what a rejected task means
    (the actor system dead-letters the pending mail).
    """

    #: bounded park backstop: the wakeup protocol is lost-wakeup-free by
    #: construction, but a worker still re-scans this often so that an
    #: unforeseen hole degrades to latency, never to a hang
    PARK_TIMEOUT = 0.05

    def __init__(self, workers: int = 4, name: str = "exec",
                 profiler: Optional[Any] = None,
                 tracer: Optional[Any] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.name = name
        self.profiler = profiler
        #: optional :class:`~repro.obs.causal.CausalTracer` for *plain*
        #: callables: a submit made under a request context wraps the
        #: task so the context re-installs on the worker that runs it.
        #: Actor cells never need this (contexts ride the mailbox, and
        #: the system deliberately leaves its executor untraced), but a
        #: standalone executor is a cross-thread handoff like any other
        self.tracer = tracer
        self._workers = [_Worker(i, name) for i in range(workers)]
        self._n = workers
        self._parked: list[_Worker] = []
        self._park_lock = threading.Lock()
        self._tls = threading.local()
        self._rr = itertools.count()
        self._shut = False
        for w in self._workers:
            w.thread = threading.Thread(target=self._loop, args=(w,),
                                        name=f"{name}-w{w.idx}", daemon=True)
            w.thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, task: Callable[[], Any],
               affinity: Optional[int] = None, fair: bool = False) -> bool:
        """Enqueue ``task``; returns False if the executor is shut down.

        From a worker thread the task lands on that worker's own deque
        (LIFO — processed next, cache-warm); from any other thread it
        goes to the ``affinity``-hashed home worker (FIFO side).
        ``fair=True`` forces the steal side even from a worker thread —
        used for requeue-after-budget so one actor cannot starve the
        rest of its worker's queue.
        """
        if self._shut:
            return False
        trc = self.tracer
        if trc is not None:
            ctx = trc.current()
            if ctx is not None:
                task = _CtxTask(trc, ctx, task)
        me: Optional[_Worker] = getattr(self._tls, "worker", None)
        if me is not None:
            if fair:
                me.tasks.appendleft(task)
            else:
                me.tasks.append(task)
                me.local_hits += 1
                if self.profiler is not None:
                    self.profiler.inc("executor.local_hits")
            # a lone task will be popped by this very worker the moment
            # the current one returns — waking a thief for it would cost
            # a syscall per message; wake only when work actually piles up
            if len(me.tasks) > 1 and self._parked:
                self._wake_one()
            return True
        idx = affinity if affinity is not None else next(self._rr)
        self._workers[idx % self._n].tasks.appendleft(task)
        if self._parked:
            self._wake_one()
        return True

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _loop(self, w: _Worker) -> None:
        self._tls.worker = w
        tasks = w.tasks
        while True:
            w.busy = True            # before the pop: idle() must never
            task = None              # miss a task that left the deque
            try:
                task = tasks.pop()
            except IndexError:
                task = self._steal(w)
            if task is None:
                w.busy = False
                if self._shut:
                    return
                self._park(w)
                continue
            # work is piling up behind us: hand a parked worker a chance
            # to steal it while we run this task
            if tasks and self._parked:
                self._wake_one()
            try:
                task()
            except BaseException:  # noqa: BLE001 - tasks must not kill
                pass               # workers; cells route errors already
            w.executed += 1
            w.busy = False

    def _steal(self, w: _Worker) -> Optional[Callable[[], Any]]:
        n = self._n
        if n == 1:
            return None
        start = w.rng.randrange(n)
        for k in range(n):
            victim = self._workers[(start + k) % n]
            if victim is w:
                continue
            try:
                task = victim.tasks.popleft()   # oldest waits longest
            except IndexError:
                continue
            w.steals += 1
            if self.profiler is not None:
                self.profiler.inc("executor.steals")
            return task
        return None

    def _park(self, w: _Worker) -> None:
        with self._park_lock:
            if self._shut:
                return
            self._parked.append(w)
        # re-check *after* registering: any submit that missed us in the
        # parked list happened before our registration, so its task is
        # visible to this scan — the lost-wakeup window is closed
        if any(v.tasks for v in self._workers):
            with self._park_lock:
                try:
                    self._parked.remove(w)
                except ValueError:
                    pass           # a waker already popped us
            w.event.clear()        # consume any signal aimed at us
            return
        w.parks += 1
        if self.profiler is not None:
            self.profiler.inc("executor.parks")
        w.event.wait(self.PARK_TIMEOUT)
        w.event.clear()
        with self._park_lock:
            try:
                self._parked.remove(w)
            except ValueError:
                pass
    # ------------------------------------------------------------------
    def _wake_one(self) -> None:
        with self._park_lock:
            w = self._parked.pop() if self._parked else None
        if w is not None:
            w.event.set()

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def idle(self) -> bool:
        """True when no task is queued or running on any worker."""
        return all(not w.tasks and not w.busy for w in self._workers)

    @property
    def stats(self) -> dict[str, int]:
        ws = self._workers
        return {
            "workers": self._n,
            "queued": sum(len(w.tasks) for w in ws),
            "executed": sum(w.executed for w in ws),
            "steals": sum(w.steals for w in ws),
            "parks": sum(w.parks for w in ws),
            "local_hits": sum(w.local_hits for w in ws),
        }

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; workers drain what is queued and exit."""
        self._shut = True
        with self._park_lock:
            parked, self._parked = self._parked, []
        for w in parked:
            w.event.set()
        if wait:
            for w in self._workers:
                if w.thread is not None and w.thread is not \
                        threading.current_thread():
                    w.thread.join()

    def __enter__(self) -> "WorkStealingExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown(wait=True)
