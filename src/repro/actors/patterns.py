"""Interaction patterns on top of tell: ask, forward-pipelines, routers.

These are the idioms the course's Scala labs use for request/response
over purely asynchronous sends — a reply-to reference travels in the
message, which is exactly what the paper's message-passing bridge does
with its ``succeedEnter``/``succeedExit`` acknowledgements.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from ..threads.pool import PoolFuture
from .actor import Actor
from .ref import ActorRef
from .system import ActorSystem

__all__ = ["ask", "Ask", "RoundRobinRouter", "aggregate"]


class Ask:
    """Request wrapper carrying an explicit reply-to reference.

    Receivers reply with ``sender.tell(...)`` (or ``context.reply``);
    :func:`ask` resolves the returned future with the first reply.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: Any):
        self.payload = payload

    def __repr__(self) -> str:
        return f"Ask({self.payload!r})"


class _ReplyCollector(Actor):
    """One-shot actor that completes a future with the first message."""

    def __init__(self, future: PoolFuture):
        super().__init__()
        self._future = future

    def receive(self, message: Any, sender: Optional[ActorRef]) -> None:
        self._future._complete(result=message)
        self.context.stop()


def ask(system: ActorSystem, target: ActorRef, payload: Any,
        timeout: float = 5.0) -> Any:
    """Request/response over asynchronous sends.

    Spawns a temporary reply actor, sends ``Ask(payload)`` with it as
    the sender, and blocks (the *caller*, never the target) until the
    reply lands or the timeout expires.
    """
    future = PoolFuture()
    collector = system.spawn(_ReplyCollector, future, name="ask-reply")
    target.tell(Ask(payload), sender=collector)
    return future.result(timeout)


class RoundRobinRouter(Actor):
    """Fans incoming messages across a fixed set of routees in rotation.

    The sender of each routed message is preserved, so replies bypass
    the router — standard Akka router behaviour.
    """

    def __init__(self, routees: list[ActorRef]):
        super().__init__()
        if not routees:
            raise ValueError("router needs at least one routee")
        self._routees = list(routees)
        self._rr = itertools.cycle(range(len(self._routees)))

    def receive(self, message: Any, sender: Optional[ActorRef]) -> None:
        self._routees[next(self._rr)].tell(message, sender=sender)


class aggregate(Actor):
    """Collects ``expected`` messages then calls ``on_complete(list)``.

    The scatter-gather worker pattern: spawn it as the reply-to of N
    requests and read the aggregated result from the callback (or via
    ask on top).
    """

    def __init__(self, expected: int,
                 on_complete: Callable[[list[Any]], None]):
        super().__init__()
        if expected < 1:
            raise ValueError("expected must be >= 1")
        self._expected = expected
        self._on_complete = on_complete
        self._received: list[Any] = []

    def receive(self, message: Any, sender: Optional[ActorRef]) -> None:
        self._received.append(message)
        if len(self._received) >= self._expected:
            self._on_complete(list(self._received))
            self.context.stop()
