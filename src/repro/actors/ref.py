"""ActorRef — the only handle user code holds on an actor.

References decouple identity from implementation: the same ``tell``
works whether the actor runs on the threaded dispatcher or inside the
deterministic kernel.  Scala's ``actor ! msg`` is ``ref.tell(msg)``.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

__all__ = ["ActorRef", "ActorCell"]


class ActorCell(Protocol):
    """What a runtime must provide per actor for refs to work."""

    def enqueue(self, message: Any, sender: Optional["ActorRef"]) -> None: ...

    @property
    def stopped(self) -> bool: ...


class ActorRef:
    """Location-transparent actor handle.

    Equality/hash by actor id, so refs can key routing tables and be
    carried inside messages.
    """

    __slots__ = ("actor_id", "name", "_cell")

    def __init__(self, actor_id: int, name: str, cell: ActorCell):
        self.actor_id = actor_id
        self.name = name
        self._cell = cell

    def tell(self, message: Any, sender: Optional["ActorRef"] = None) -> None:
        """Asynchronous, never-blocking send (may land in dead letters
        if the actor has stopped)."""
        self._cell.enqueue(message, sender)

    #: Scala spelling: ``ref << msg`` ≈ ``actor ! msg``
    def __lshift__(self, message: Any) -> "ActorRef":
        self.tell(message)
        return self

    @property
    def is_stopped(self) -> bool:
        return self._cell.stopped

    @property
    def pending(self) -> int:
        """Messages waiting in the mailbox (0 for cells without depth)."""
        depth = getattr(self._cell, "depth", None)
        return depth() if depth is not None else 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ActorRef) and other.actor_id == self.actor_id

    def __hash__(self) -> int:
        return hash(("actor", self.actor_id))

    def __repr__(self) -> str:
        return f"<ActorRef {self.name}#{self.actor_id}>"
