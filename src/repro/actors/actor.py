"""Actor base class and behaviour machinery.

Implements the three Hewitt axioms the paper quotes — in response to a
message an actor can concurrently (1) send messages to other actors,
(2) create new actors, (3) designate how to handle the next message:

* (1) ``self.context.tell(ref, msg)`` / ``ref.tell(msg)``;
* (2) ``self.context.spawn(ActorClass, ...)``;
* (3) ``self.become(behaviour)`` / ``self.unbecome()``.

An actor processes one message at a time (the runtime guarantees no
two messages of the same actor are handled concurrently), has no public
state, and communicates only by asynchronous message passing.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .ref import ActorRef

__all__ = ["Actor", "ActorContext", "Behaviour"]

#: a behaviour is "how to handle the next message"
Behaviour = Callable[[Any, Optional["ActorRef"]], None]


class ActorContext:
    """What an actor may touch while processing a message.

    The runtime (threaded system or kernel-backed sim system) installs
    itself here; user code sees the same interface under both.
    """

    def __init__(self, system: Any, self_ref: "ActorRef"):
        self.system = system
        self.self_ref = self_ref
        #: sender of the message currently being processed (may be None)
        self.sender: Optional["ActorRef"] = None

    def tell(self, target: "ActorRef", message: Any) -> None:
        """Asynchronous send with self as the implied sender."""
        target.tell(message, sender=self.self_ref)

    def reply(self, message: Any) -> None:
        """Send to the current sender; raises if the message had none."""
        if self.sender is None:
            raise RuntimeError("reply() with no sender on the current message")
        self.sender.tell(message, sender=self.self_ref)

    def spawn(self, actor_class: type, *args: Any, name: str = "",
              **kwargs: Any) -> "ActorRef":
        """Create a child actor (Hewitt axiom 2)."""
        return self.system.spawn(actor_class, *args, name=name, **kwargs)

    def stop(self, target: Optional["ActorRef"] = None) -> None:
        """Stop ``target`` (default: self)."""
        self.system.stop(target or self.self_ref)


class Actor:
    """Subclass and override :meth:`receive`.

    ``receive(message, sender)`` is invoked for each delivered message;
    ``sender`` is the :class:`ActorRef` that sent it (or None for
    external sends without a sender).  Behaviour switching::

        class Counter(Actor):
            def receive(self, message, sender):
                if message == "lock":
                    self.become(self.locked)
            def locked(self, message, sender):
                if message == "unlock":
                    self.unbecome()
    """

    def __init__(self) -> None:
        self.context: Optional[ActorContext] = None
        self._behaviours: list[Behaviour] = []

    # -- message handling ----------------------------------------------------
    def receive(self, message: Any, sender: Optional["ActorRef"]) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must override receive()")

    def current_behaviour(self) -> Behaviour:
        return self._behaviours[-1] if self._behaviours else self.receive

    def become(self, behaviour: Behaviour, discard_old: bool = False) -> None:
        """Designate how to handle the next message (Hewitt axiom 3)."""
        if discard_old and self._behaviours:
            self._behaviours[-1] = behaviour
        else:
            self._behaviours.append(behaviour)

    def unbecome(self) -> None:
        if self._behaviours:
            self._behaviours.pop()

    # -- lifecycle hooks ----------------------------------------------------
    def pre_start(self) -> None:
        """Called once before the first message."""

    def post_stop(self) -> None:
        """Called after the actor stops (normal or failure stop)."""

    def pre_restart(self, error: BaseException, message: Any) -> None:
        """Called before a supervision restart; default clears behaviours."""
        self._behaviours.clear()

    # -- convenience ---------------------------------------------------------
    @property
    def self_ref(self) -> "ActorRef":
        if self.context is None:
            raise RuntimeError("actor is not running in a system")
        return self.context.self_ref

    def __repr__(self) -> str:
        name = self.context.self_ref.name if self.context else "detached"
        return f"<{type(self).__name__} {name}>"
