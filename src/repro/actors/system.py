"""Threaded actor runtime — mailboxes + a work-stealing dispatcher.

Execution model (the standard event-driven actor dispatcher, as in
Akka/Scala rather than thread-per-actor):

* every actor owns an unbounded mailbox and a *scheduled* flag;
* ``tell`` enqueues and, if the actor is idle, submits a processing job
  to a shared :class:`~repro.actors.executor.WorkStealingExecutor`;
* a processing job swaps out a run of up to ``throughput`` messages in
  one go and invokes the actor's current behaviour one message at a
  time (the actor serialization guarantee), then yields the worker and
  reschedules itself — behind the worker's other work — if messages
  remain.

Hot-path discipline: with no profiler attached, ``enqueue`` is a single
``deque.append`` plus one non-blocking try-lock (the scheduled flag is
*represented by* a held :class:`threading.Lock`, so test-and-set is one
atomic C call), and a processing job drains its batch with plain
``popleft`` — single-element deque ops are atomic under the GIL and the
scheduled flag guarantees a single drainer.  Only a profiler forces the
cell's lock (its enqueue-timestamp deque must stay aligned with the
mailbox); the causal tracer stays lock-free by riding each message's
request context *inside* the mailbox entry — traced messages are
4-tuples, untraced ones keep the 2-tuple shape and pay one TLS read.
Each traced handler run spends one hop of the request's per-process
budget (``CausalTracer.hop_budget``), so a runaway request stops
paying tracing costs once its first few hundred hops are recorded.

Failures route to the actor's supervision directive: ``resume`` (drop
the message), ``restart`` (clear behaviour stack via ``pre_restart``),
or ``stop``.  Messages to stopped actors go to ``dead_letters``; a stop
in the middle of a drained batch dead-letters the batch's remainder,
exactly as if the messages were still queued.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from enum import Enum
from typing import Any, Optional

from ..threads.sync import Monitor
from .actor import Actor, ActorContext
from .executor import WorkStealingExecutor
from .ref import ActorRef

__all__ = ["SupervisionDirective", "ActorSystem", "DeadLetter"]


class SupervisionDirective(Enum):
    RESUME = "resume"
    RESTART = "restart"
    STOP = "stop"


class DeadLetter:
    """Record of a message that could not be delivered.

    ``ctx`` preserves the causal-tracing context the message carried at
    the drop point — either a live ``RequestContext`` or the cluster
    wire triple ``(request_id, span_id, t_send)`` — so ``repro
    critical`` and postmortem bundles can attribute the drop to the
    request that lost it.
    """

    __slots__ = ("target", "message", "sender", "ctx")

    def __init__(self, target: str, message: Any, sender: Optional[ActorRef],
                 ctx: Any = None):
        self.target = target
        self.message = message
        self.sender = sender
        self.ctx = ctx

    @property
    def request_id(self) -> Optional[str]:
        """Request id of the dropped message's causal context, if any."""
        ctx = self.ctx
        if ctx is None:
            return None
        rid = getattr(ctx, "request_id", None)
        if rid is not None:
            return rid
        try:
            return ctx[0]
        except (TypeError, IndexError, KeyError):
            return None

    def __repr__(self) -> str:
        rid = self.request_id
        tail = f" [req {rid}]" if rid is not None else ""
        return f"<DeadLetter to {self.target}: {self.message!r}{tail}>"


class _StopSignal:
    """Internal poison pill appended by ``system.stop``."""


class _Cell:
    """Runtime state of one actor: mailbox, flags, instance."""

    __slots__ = ("system", "actor", "ref", "mailbox", "lock", "_sched",
                 "_stopped", "started", "directive", "enq_times",
                 "_batch", "_run", "affinity")

    def __init__(self, system: "ActorSystem", actor: Actor, ref_name: str,
                 actor_id: int,
                 directive: Optional["SupervisionDirective"] = None):
        self.system = system
        self.actor = actor
        self.ref = ActorRef(actor_id, ref_name, self)
        self.mailbox: deque[tuple[Any, Optional[ActorRef]]] = deque()
        #: profiler-mode lock: keeps ``enq_times`` aligned with the
        #: mailbox, and serializes the stop-drain against late enqueues
        self.lock = threading.Lock()
        #: the scheduled flag *is* this lock's held/free state —
        #: ``acquire(False)`` is an atomic test-and-set, so the
        #: profiler-off enqueue path claims scheduling rights without
        #: ever blocking or taking ``self.lock``
        self._sched = threading.Lock()
        self._stopped = False
        self.started = False
        #: per-actor supervision override (None = system default)
        self.directive = directive
        #: enqueue timestamps, parallel to ``mailbox`` (profiling only —
        #: both deques are pushed/popped together under ``lock``, so the
        #: head timestamp always belongs to the head message)
        self.enq_times: deque[float] = deque()
        #: reusable drain buffer — one live batch per cell (guaranteed
        #: by the scheduled flag), so no per-batch list allocation
        self._batch: list[tuple[Any, Optional[ActorRef]]] = []
        #: the bound method the executor runs, created once per actor
        self._run = self._process
        #: stable home-worker key — a hot actor keeps hitting the same
        #: worker's deque (and that worker's caches) unless stolen
        self.affinity = actor_id

    # -- ActorCell protocol ---------------------------------------------------
    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def scheduled(self) -> bool:
        """True while a processing job is queued or running for us."""
        return self._sched.locked()

    def depth(self) -> int:
        """Messages currently pending in the mailbox."""
        return len(self.mailbox)

    def enqueue(self, message: Any, sender: Optional[ActorRef]) -> None:
        system = self.system
        prof = system.profiler
        trc = system.tracer
        if trc is None:
            entry: tuple = (message, sender)
        else:
            # the sender's causal position rides *inside* the mailbox
            # entry (a 4-tuple), so tracing needs no parallel deque and
            # no lock — an untraced message on a traced system pays one
            # TLS read and keeps the 2-tuple shape
            ctx = getattr(trc.tls, "ctx", None)
            entry = (message, sender) if ctx is None \
                else (message, sender, ctx, trc.clock())
        if prof is None:
            # lock-free fast path: one atomic append, one try-lock
            if self._stopped:
                system._dead_letter(self.ref.name, message, sender,
                                    entry[2] if len(entry) > 2 else None)
                return
            self.mailbox.append(entry)
            if self._stopped:
                # raced _do_stop: its drain may have run before our
                # append landed — flush so nothing rots in a dead mailbox
                self._drain_to_dead_letters()
                return
        else:
            with self.lock:
                if self._stopped:
                    system._dead_letter(self.ref.name, message, sender,
                                        entry[2] if len(entry) > 2
                                        else None)
                    return
                self.mailbox.append(entry)
                self.enq_times.append(prof.now())
            prof.inc("mailbox.enqueued")
            depth = len(self.mailbox)
            prof.observe("mailbox.depth", depth)
            prof.gauge_max("mailbox.depth_max", depth)
        if self._sched.acquire(False):
            if not system._executor.submit(self._run, affinity=self.affinity):
                self._reject()

    # -- message processing ----------------------------------------------------
    def _process(self) -> None:
        system = self.system
        actor = self.actor
        if not self.started:
            self.started = True
            try:
                actor.pre_start()
            except BaseException as exc:  # noqa: BLE001
                system._on_failure(self, exc, "<pre_start>")
            if self._stopped:          # STOP directive fired in pre_start
                self._sched.release()
                return
        prof = system.profiler
        trc = system.tracer
        mailbox = self.mailbox
        batch = self._batch
        drain_t = 0.0
        if trc is not None:
            # the dequeue timestamp is taken once per batch by design
            drain_t = trc.clock()
        if prof is None:
            # single drainer (scheduled flag) + atomic popleft: no lock
            n = len(mailbox)
            if n > system.throughput:
                n = system.throughput
            for _ in range(n):
                batch.append(mailbox.popleft())
        else:
            # one lock acquisition amortized over the whole batch
            now = prof.now()
            with self.lock:
                n = min(len(mailbox), system.throughput)
                times = self.enq_times
                for _ in range(n):
                    batch.append(mailbox.popleft())
                    if times:
                        prof.observe_us("mailbox.latency_us",
                                        now - times.popleft())
            if n:
                prof.observe("mailbox.batch_size", n)

        lane = self.ref.name
        if trc is not None:
            # hot-loop locals: span recording is inlined below (id
            # counter, deque append, raw TLS) — per traced message the
            # whole chain costs three tuple appends, one clock read and
            # one budget-table update
            _ids = trc._ids
            _app = trc._spans.append
            _now = trc.clock
            _tls = trc.tls
            _Ctx = trc.context
            _left = trc._hops_left
            _hb = trc.hop_budget
            t_prev = drain_t
        for i in range(n):
            entry = batch[i]
            message, sender = entry[0], entry[1]
            if isinstance(message, _StopSignal):
                self._do_stop()
            else:
                context = actor.context
                context.sender = sender
                traced = False
                if len(entry) == 4 and trc is not None:
                    # one handler run spends one hop of the request's
                    # per-process budget (inlined CausalTracer.admit);
                    # once it's gone the message runs untraced and the
                    # chain self-terminates — bounded tracing cost per
                    # request, like OpenTelemetry span limits
                    rid = entry[2].request_id
                    left = _left.get(rid)
                    if left is None:
                        if len(_left) >= 65536:
                            _left.clear()
                        left = _hb
                    if left > 0:
                        _left[rid] = left - 1
                        traced = True
                if traced:
                    # traced message: chain mailbox-wait → executor-queue
                    # → handler off the sender's span, and run the
                    # behaviour under the handler's context so nested
                    # tells keep the chain growing.  The handler start
                    # stamp reuses the previous handler's end (they are
                    # back-to-back in this loop), so the chain needs one
                    # clock read per message
                    ctx, enq_t = entry[2], entry[3]
                    h0 = t_prev
                    d = drain_t if drain_t >= enq_t else enq_t
                    if d > h0:
                        d = h0
                    w_id = next(_ids)
                    _app((w_id, ctx.span_id, rid, "mailbox-wait", lane,
                          enq_t if enq_t <= d else d, d))
                    q_id = next(_ids)
                    _app((q_id, w_id, rid, "executor-queue", lane, d, h0))
                    h_id = next(_ids)
                    _tls.ctx = _Ctx(rid, h_id)
                    try:
                        actor.current_behaviour()(message, sender)
                    except BaseException as exc:  # noqa: BLE001
                        system._on_failure(self, exc, message)
                    finally:
                        t_prev = _now()
                        _app((h_id, q_id, rid, "handler", lane, h0,
                              t_prev))
                        _tls.ctx = None
                        context.sender = None
                else:
                    try:
                        actor.current_behaviour()(message, sender)
                    except BaseException as exc:  # noqa: BLE001
                        system._on_failure(self, exc, message)
                    finally:
                        context.sender = None
            if prof is not None:
                # decoupled from the latency sample on purpose: messages
                # enqueued before a profiler was attached have no
                # timestamp but still count as processed (stop signals
                # included — they were dequeued and handled)
                prof.inc("mailbox.processed")
            if self._stopped:
                # stop (poison pill or STOP directive) mid-batch: the
                # batch remainder is mail behind the stop — dead-letter
                # it exactly like the messages still in the mailbox
                for j in range(i + 1, n):
                    late, late_sender = batch[j][0], batch[j][1]
                    if not isinstance(late, _StopSignal):
                        system._dead_letter(
                            self.ref.name, late, late_sender,
                            batch[j][2] if len(batch[j]) > 2 else None)
                del batch[:]
                self._sched.release()
                return
        del batch[:]

        if mailbox:
            # budget exhausted with mail left: requeue *fairly*, behind
            # whatever else is waiting on our worker
            if not system._executor.submit(self._run, affinity=self.affinity,
                                           fair=True):
                self._reject()
            return
        self._sched.release()
        # a message may have slipped in between the emptiness check and
        # the release — whoever wins the try-lock reschedules
        if mailbox and self._sched.acquire(False):
            if not system._executor.submit(self._run, affinity=self.affinity):
                self._reject()

    def _do_stop(self) -> None:
        with self.lock:
            self._stopped = True
        self._drain_to_dead_letters()
        try:
            self.actor.post_stop()
        except BaseException:  # noqa: BLE001 - post_stop must not kill workers
            pass
        self.system._forget(self)

    def _drain_to_dead_letters(self) -> None:
        """Atomically swap out everything queued and dead-letter it."""
        with self.lock:
            leftovers = list(self.mailbox)
            self.mailbox.clear()
            self.enq_times.clear()
        for entry in leftovers:
            message, sender = entry[0], entry[1]
            if not isinstance(message, _StopSignal):
                self.system._dead_letter(self.ref.name, message, sender,
                                         entry[2] if len(entry) > 2
                                         else None)

    def _reject(self) -> None:
        """The executor refused a submit (it is shut down): we hold the
        scheduled flag but no worker will ever run us.  Dead-letter the
        pending mail and hand the flag back without stranding a message
        that arrives between our drain and our release."""
        while True:
            self._drain_to_dead_letters()
            self._sched.release()
            if not self.mailbox or not self._sched.acquire(False):
                return


class ActorSystem:
    """Container + dispatcher for a set of actors.

    ::

        with ActorSystem(workers=4) as system:
            echo = system.spawn(Echo, name="echo")
            echo.tell("hello")
            system.drain()          # wait until all mailboxes are empty
    """

    _ids = itertools.count(1)

    def __init__(self, workers: int = 4, throughput: int = 16,
                 directive: SupervisionDirective = SupervisionDirective.RESTART,
                 name: str = "actor-system",
                 profiler: Optional[Any] = None,
                 tracer: Optional[Any] = None):
        self.name = name
        self.throughput = throughput
        self.directive = directive
        #: optional :class:`repro.obs.Profiler` — mailbox latency/depth,
        #: message throughput, executor steals/parks; None keeps the
        #: dispatch path untouched
        self.profiler = profiler
        #: optional :class:`repro.obs.causal.CausalTracer` — request
        #: contexts ride the mailbox and every traced handler records a
        #: mailbox-wait/executor-queue/handler span chain; None keeps
        #: the lock-free enqueue path
        self.tracer = tracer
        self._executor = WorkStealingExecutor(workers,
                                              name=f"{name}.dispatch",
                                              profiler=profiler)
        self._cells: dict[int, _Cell] = {}
        self._cells_lock = threading.Lock()
        self.dead_letters: list[DeadLetter] = []
        self._dl_lock = threading.Lock()
        self._failures: list[tuple[str, BaseException]] = []
        self._failures_lock = threading.Lock()
        #: optional callback (name, error, applied_directive) invoked after
        #: a failure is handled — the cluster layer hangs watch signals here
        self.failure_listener: Optional[Any] = None
        self._idle = Monitor(f"{name}.idle")

    # ------------------------------------------------------------------
    def spawn(self, actor_class: type, *args: Any, name: str = "",
              directive: Optional[SupervisionDirective] = None,
              **kwargs: Any) -> ActorRef:
        """Instantiate and register an actor; returns its ref.

        ``directive`` overrides the system-wide supervision default for
        this actor only — one crashing actor can be STOPped while the
        rest RESTART.
        """
        if not issubclass(actor_class, Actor):
            raise TypeError(f"{actor_class.__name__} is not an Actor subclass")
        actor = actor_class(*args, **kwargs)
        actor_id = next(self._ids)
        cell = _Cell(self, actor, name or
                     f"{actor_class.__name__.lower()}-{actor_id}", actor_id,
                     directive=directive)
        actor.context = ActorContext(self, cell.ref)
        with self._cells_lock:
            self._cells[actor_id] = cell
        # schedule once immediately so pre_start runs even for actors
        # that initiate conversations instead of waiting for mail
        cell._sched.acquire()
        if not self._executor.submit(cell._run, affinity=cell.affinity):
            cell._reject()
        return cell.ref

    def stop(self, ref: ActorRef) -> None:
        """Graceful stop: processes messages already enqueued first."""
        ref.tell(_StopSignal())

    def tell(self, ref: ActorRef, message: Any) -> None:
        ref.tell(message, sender=None)

    # ------------------------------------------------------------------
    def drain(self, timeout: float = 10.0) -> bool:
        """Block until every mailbox is empty and no actor is running.

        Polls rather than waits on a condition: quiescence is a global
        property across all cells and the executor, and per-message
        notifications would cost more than the poll.  The poll spins
        (GIL yields) briefly before backing off to millisecond sleeps —
        a short workload quiesces in microseconds, and a 1 ms first
        sleep would dominate its entire wall time.
        """
        import time
        deadline = time.monotonic() + timeout
        spins = 0
        while not self._quiet():
            if time.monotonic() >= deadline:
                return False
            spins += 1
            time.sleep(0 if spins < 200 else 0.001)
        return True

    def _quiet(self) -> bool:
        with self._cells_lock:
            cells = list(self._cells.values())
        busy = any(c._sched.locked() or c.mailbox for c in cells)
        return not busy and self._executor.idle()

    def shutdown(self) -> None:
        with self._cells_lock:
            refs = [c.ref for c in self._cells.values()]
        for ref in refs:
            self.stop(ref)
        self.drain()
        self._executor.shutdown(wait=True)

    def executor_stats(self) -> dict[str, int]:
        """Dispatcher counters: queued, executed, steals, parks,
        local_hits, workers."""
        return self._executor.stats

    # ------------------------------------------------------------------
    # runtime callbacks
    # ------------------------------------------------------------------
    def _dead_letter(self, target: str, message: Any,
                     sender: Optional[ActorRef], ctx: Any = None) -> None:
        with self._dl_lock:
            self.dead_letters.append(DeadLetter(target, message, sender,
                                                ctx))

    def _forget(self, cell: _Cell) -> None:
        with self._cells_lock:
            self._cells.pop(cell.ref.actor_id, None)
        with self._idle:
            self._idle.notify_all()

    def _on_failure(self, cell: _Cell, error: BaseException,
                    message: Any) -> None:
        # runs on dispatch workers: the failure log needs the same
        # lock discipline as dead_letters
        with self._failures_lock:
            self._failures.append((cell.ref.name, error))
        directive = cell.directive if cell.directive is not None \
            else self.directive
        if directive is SupervisionDirective.RESTART:
            try:
                cell.actor.pre_restart(error, message)
            except BaseException:  # noqa: BLE001
                pass
        elif directive is SupervisionDirective.STOP:
            cell._do_stop()
        listener = self.failure_listener
        if listener is not None:
            try:
                listener(cell.ref.name, error, directive)
            except BaseException:  # noqa: BLE001 - listeners must not
                pass               # kill dispatch workers

    def failures(self) -> list[tuple[str, BaseException]]:
        """Snapshot copy of every (actor name, error) recorded so far."""
        with self._failures_lock:
            return list(self._failures)

    def set_directive(self, ref: ActorRef,
                      directive: Optional[SupervisionDirective]) -> None:
        """Change one actor's supervision override (None = system default)."""
        with self._cells_lock:
            cell = self._cells.get(ref.actor_id)
        if cell is not None:
            cell.directive = directive

    @property
    def actor_count(self) -> int:
        with self._cells_lock:
            return len(self._cells)

    def __enter__(self) -> "ActorSystem":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
