"""Threaded actor runtime — mailboxes + a shared dispatcher pool.

Execution model (the standard event-driven actor dispatcher, as in
Akka/Scala rather than thread-per-actor):

* every actor owns an unbounded mailbox and a *scheduled* flag;
* ``tell`` enqueues and, if the actor is idle, submits a processing job
  to a shared :class:`~repro.threads.pool.ThreadPool`;
* a processing job drains up to ``throughput`` messages (invoking the
  actor's current behaviour one message at a time — the actor
  serialization guarantee), then yields the worker and reschedules
  itself if messages remain.

Failures route to the actor's supervision directive: ``resume`` (drop
the message), ``restart`` (clear behaviour stack via ``pre_restart``),
or ``stop``.  Messages to stopped actors go to ``dead_letters``.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from enum import Enum
from typing import Any, Optional

from ..threads.pool import ThreadPool
from ..threads.sync import Monitor
from .actor import Actor, ActorContext
from .ref import ActorRef

__all__ = ["SupervisionDirective", "ActorSystem", "DeadLetter"]


class SupervisionDirective(Enum):
    RESUME = "resume"
    RESTART = "restart"
    STOP = "stop"


class DeadLetter:
    """Record of a message that could not be delivered."""

    __slots__ = ("target", "message", "sender")

    def __init__(self, target: str, message: Any, sender: Optional[ActorRef]):
        self.target = target
        self.message = message
        self.sender = sender

    def __repr__(self) -> str:
        return f"<DeadLetter to {self.target}: {self.message!r}>"


class _StopSignal:
    """Internal poison pill appended by ``system.stop``."""


class _Cell:
    """Runtime state of one actor: mailbox, flags, instance."""

    def __init__(self, system: "ActorSystem", actor: Actor, ref_name: str,
                 actor_id: int,
                 directive: Optional["SupervisionDirective"] = None):
        self.system = system
        self.actor = actor
        self.ref = ActorRef(actor_id, ref_name, self)
        self.mailbox: deque[tuple[Any, Optional[ActorRef]]] = deque()
        self.lock = threading.Lock()
        self.scheduled = False
        self._stopped = False
        self.started = False
        #: per-actor supervision override (None = system default)
        self.directive = directive
        #: enqueue timestamps, parallel to ``mailbox`` (profiling only —
        #: both deques are pushed/popped together under ``lock``, so the
        #: head timestamp always belongs to the head message)
        self.enq_times: deque[float] = deque()

    # -- ActorCell protocol ---------------------------------------------------
    @property
    def stopped(self) -> bool:
        return self._stopped

    def depth(self) -> int:
        """Messages currently pending in the mailbox."""
        with self.lock:
            return len(self.mailbox)

    def enqueue(self, message: Any, sender: Optional[ActorRef]) -> None:
        prof = self.system.profiler
        with self.lock:
            if self._stopped:
                self.system._dead_letter(self.ref.name, message, sender)
                return
            self.mailbox.append((message, sender))
            if prof is not None:
                self.enq_times.append(prof.now())
                prof.inc("mailbox.enqueued")
                depth = len(self.mailbox)
                prof.observe("mailbox.depth", depth)
                prof.gauge_max("mailbox.depth_max", depth)
            if not self.scheduled:
                self.scheduled = True
                submit = True
            else:
                submit = False
        if submit:
            self.system._pool.submit(self._process)

    # -- message processing ----------------------------------------------------
    def _process(self) -> None:
        actor = self.actor
        if not self.started:
            self.started = True
            try:
                actor.pre_start()
            except BaseException as exc:  # noqa: BLE001
                self.system._on_failure(self, exc, "<pre_start>")
        prof = self.system.profiler
        for _ in range(self.system.throughput):
            with self.lock:
                if self._stopped or not self.mailbox:
                    self.scheduled = bool(self.mailbox) and not self._stopped
                    if self.scheduled:
                        break  # reschedule below
                    return
                message, sender = self.mailbox.popleft()
                if prof is not None and self.enq_times:
                    prof.observe_us("mailbox.latency_us",
                                    prof.now() - self.enq_times.popleft())
                    prof.inc("mailbox.processed")
            if isinstance(message, _StopSignal):
                self._do_stop()
                return
            actor.context.sender = sender
            try:
                actor.current_behaviour()(message, sender)
            except BaseException as exc:  # noqa: BLE001
                self.system._on_failure(self, exc, message)
                if self._stopped:
                    return
            finally:
                actor.context.sender = None
        # budget exhausted or flagged for reschedule: put ourselves back
        with self.lock:
            if self.mailbox and not self._stopped:
                self.scheduled = True
                self.system._pool.submit(self._process)
            else:
                self.scheduled = False

    def _do_stop(self) -> None:
        with self.lock:
            self._stopped = True
            leftovers = list(self.mailbox)
            self.mailbox.clear()
            self.enq_times.clear()
            self.scheduled = False
        for message, sender in leftovers:
            if not isinstance(message, _StopSignal):
                self.system._dead_letter(self.ref.name, message, sender)
        try:
            self.actor.post_stop()
        except BaseException:  # noqa: BLE001 - post_stop must not kill workers
            pass
        self.system._forget(self)


class ActorSystem:
    """Container + dispatcher for a set of actors.

    ::

        with ActorSystem(workers=4) as system:
            echo = system.spawn(Echo, name="echo")
            echo.tell("hello")
            system.drain()          # wait until all mailboxes are empty
    """

    _ids = itertools.count(1)

    def __init__(self, workers: int = 4, throughput: int = 16,
                 directive: SupervisionDirective = SupervisionDirective.RESTART,
                 name: str = "actor-system",
                 profiler: Optional[Any] = None):
        self.name = name
        self.throughput = throughput
        self.directive = directive
        #: optional :class:`repro.obs.Profiler` — mailbox latency/depth,
        #: message throughput; None keeps the dispatch path untouched
        self.profiler = profiler
        self._pool = ThreadPool(workers, name=f"{name}.dispatch",
                                profiler=profiler)
        self._cells: dict[int, _Cell] = {}
        self._cells_lock = threading.Lock()
        self.dead_letters: list[DeadLetter] = []
        self._dl_lock = threading.Lock()
        self._failures: list[tuple[str, BaseException]] = []
        self._failures_lock = threading.Lock()
        #: optional callback (name, error, applied_directive) invoked after
        #: a failure is handled — the cluster layer hangs watch signals here
        self.failure_listener: Optional[Any] = None
        self._idle = Monitor(f"{name}.idle")

    # ------------------------------------------------------------------
    def spawn(self, actor_class: type, *args: Any, name: str = "",
              directive: Optional[SupervisionDirective] = None,
              **kwargs: Any) -> ActorRef:
        """Instantiate and register an actor; returns its ref.

        ``directive`` overrides the system-wide supervision default for
        this actor only — one crashing actor can be STOPped while the
        rest RESTART.
        """
        if not issubclass(actor_class, Actor):
            raise TypeError(f"{actor_class.__name__} is not an Actor subclass")
        actor = actor_class(*args, **kwargs)
        actor_id = next(self._ids)
        cell = _Cell(self, actor, name or
                     f"{actor_class.__name__.lower()}-{actor_id}", actor_id,
                     directive=directive)
        actor.context = ActorContext(self, cell.ref)
        with self._cells_lock:
            self._cells[actor_id] = cell
        # schedule once immediately so pre_start runs even for actors
        # that initiate conversations instead of waiting for mail
        with cell.lock:
            cell.scheduled = True
        self._pool.submit(cell._process)
        return cell.ref

    def stop(self, ref: ActorRef) -> None:
        """Graceful stop: processes messages already enqueued first."""
        ref.tell(_StopSignal())

    def tell(self, ref: ActorRef, message: Any) -> None:
        ref.tell(message, sender=None)

    # ------------------------------------------------------------------
    def drain(self, timeout: float = 10.0) -> bool:
        """Block until every mailbox is empty and no actor is running.

        Polls rather than waits on a condition: quiescence is a global
        property across all cells and the pool, and per-message
        notifications would cost more than the 1 ms poll.
        """
        import time
        deadline = time.monotonic() + timeout
        while not self._quiet():
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.001)
        return True

    def _quiet(self) -> bool:
        with self._cells_lock:
            cells = list(self._cells.values())
        busy = any(c.scheduled or c.mailbox for c in cells)
        return not busy and self._pool.stats["queued"] == 0 \
            and self._pool.stats["submitted"] == self._pool.stats["completed"]

    def shutdown(self) -> None:
        with self._cells_lock:
            refs = [c.ref for c in self._cells.values()]
        for ref in refs:
            self.stop(ref)
        self.drain()
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # runtime callbacks
    # ------------------------------------------------------------------
    def _dead_letter(self, target: str, message: Any,
                     sender: Optional[ActorRef]) -> None:
        with self._dl_lock:
            self.dead_letters.append(DeadLetter(target, message, sender))

    def _forget(self, cell: _Cell) -> None:
        with self._cells_lock:
            self._cells.pop(cell.ref.actor_id, None)
        with self._idle:
            self._idle.notify_all()

    def _on_failure(self, cell: _Cell, error: BaseException,
                    message: Any) -> None:
        # runs on dispatch-pool threads: the failure log needs the same
        # lock discipline as dead_letters
        with self._failures_lock:
            self._failures.append((cell.ref.name, error))
        directive = cell.directive if cell.directive is not None \
            else self.directive
        if directive is SupervisionDirective.RESTART:
            try:
                cell.actor.pre_restart(error, message)
            except BaseException:  # noqa: BLE001
                pass
        elif directive is SupervisionDirective.STOP:
            cell._do_stop()
        listener = self.failure_listener
        if listener is not None:
            try:
                listener(cell.ref.name, error, directive)
            except BaseException:  # noqa: BLE001 - listeners must not
                pass               # kill dispatch workers

    def failures(self) -> list[tuple[str, BaseException]]:
        """Snapshot copy of every (actor name, error) recorded so far."""
        with self._failures_lock:
            return list(self._failures)

    def set_directive(self, ref: ActorRef,
                      directive: Optional[SupervisionDirective]) -> None:
        """Change one actor's supervision override (None = system default)."""
        with self._cells_lock:
            cell = self._cells.get(ref.actor_id)
        if cell is not None:
            cell.directive = directive

    @property
    def actor_count(self) -> int:
        with self._cells_lock:
            return len(self._cells)

    def __enter__(self) -> "ActorSystem":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
