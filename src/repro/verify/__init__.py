"""repro.verify — systematic concurrency testing over the kernel.

* :func:`explore` — CHESS-style replay DFS over all schedules
* :func:`check_deadlock_free` / :func:`check_always` /
  :func:`check_sometimes` — program-level properties with replayable
  counterexamples
* :func:`find_races` / :func:`find_races_program` — vector-clock
  happens-before race detection
* :class:`ScenarioQuestion` / :func:`answer_question` — the paper's
  Test-1 "could this happen?" reachability queries
* :func:`explore_adaptive` / :func:`sample_behaviours` — budget-aware
  degradation from proof to stress testing
"""

from .explorer import (REDUCTIONS, ExplorationResult, Program, explore,
                       run_schedule)
from .properties import (PropertyReport, check_always, check_deadlock_free,
                         check_mutual_exclusion, check_sometimes,
                         fairness_report, mutex_intervals, starvation_gap)
from .race import Race, find_races, find_races_program
from .reachability import (Answer, Pattern, ScenarioQuestion, answer_question,
                           embeds, matches)
from .lts import LTS, LTSAnswer, LTSResult, PathStep, Rule, answer_question_lts
from .reduction import (TreeEstimate, estimate_tree, explore_adaptive,
                        sample_behaviours)

__all__ = [
    "explore", "run_schedule", "ExplorationResult", "Program", "REDUCTIONS",
    "PropertyReport", "check_deadlock_free", "check_always",
    "check_sometimes", "check_mutual_exclusion", "mutex_intervals",
    "starvation_gap", "fairness_report",
    "Race", "find_races", "find_races_program",
    "ScenarioQuestion", "Answer", "answer_question", "embeds", "matches",
    "Pattern",
    "TreeEstimate", "estimate_tree", "sample_behaviours", "explore_adaptive",
    "LTS", "Rule", "LTSResult", "LTSAnswer", "PathStep", "answer_question_lts",
]
