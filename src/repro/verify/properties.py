"""Safety and liveness properties over explored schedule spaces.

Two layers:

* trace-level predicates (:func:`check_mutual_exclusion`,
  :func:`starvation_gap`, ...) that analyze one :class:`Trace`;
* program-level checkers (:func:`check_deadlock_free`,
  :func:`check_always`, :func:`check_sometimes`) that explore the whole
  space and return a :class:`PropertyReport` with a witness or
  counterexample schedule (replayable via
  :func:`repro.verify.explorer.run_schedule`).

These are the concepts the course's §IV.C names — race conditions,
conditional synchronization, deadlock and fairness — as executable
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..core.trace import Trace
from .explorer import ExplorationResult, Program, explore

__all__ = [
    "PropertyReport",
    "check_deadlock_free",
    "check_always",
    "check_sometimes",
    "check_mutual_exclusion",
    "mutex_intervals",
    "starvation_gap",
    "fairness_report",
]


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of a program-level property check.

    ``holds`` is the verdict; when ``False``, ``counterexample`` is a
    replayable schedule and ``detail`` says what went wrong.  When the
    exploration hit its budget, ``exhaustive`` is False and a ``True``
    verdict means only "no violation found within budget".
    """

    name: str
    holds: bool
    exhaustive: bool
    detail: str = ""
    counterexample: Optional[list[int]] = None
    witness: Optional[list[int]] = None
    exploration: Optional[ExplorationResult] = None

    def __bool__(self) -> bool:
        return self.holds


def check_deadlock_free(program: Program, *, samples_first: int = 300,
                        **explore_kw: Any) -> PropertyReport:
    """No schedule of ``program`` reaches a deadlock.

    Strategy: a cheap randomized sampling phase first (deadlocks are
    usually dense in the schedule space and random walks find them in
    milliseconds, whereas leftmost-first DFS may have to backtrack
    through a huge prefix), then exhaustive exploration for the proof.
    """
    from .reduction import sample_behaviours
    if samples_first > 0:
        sampled = sample_behaviours(program, samples=samples_first)
        if sampled.deadlock_possible:
            witness = sampled.deadlocks[0]
            return PropertyReport(
                name="deadlock-free", holds=False, exhaustive=False,
                detail=f"deadlock reachable: {witness.detail}",
                counterexample=witness.schedule(), exploration=sampled)
    res = explore(program, **explore_kw)
    if res.deadlock_possible:
        witness = res.deadlocks[0]
        return PropertyReport(
            name="deadlock-free", holds=False, exhaustive=res.complete,
            detail=f"deadlock reachable: {witness.detail}",
            counterexample=witness.schedule(), exploration=res)
    return PropertyReport(name="deadlock-free", holds=True,
                          exhaustive=res.complete, exploration=res)


def check_always(program: Program,
                 predicate: Callable[[tuple, Any], bool],
                 name: str = "always",
                 **explore_kw: Any) -> PropertyReport:
    """``predicate(output_tuple, observation)`` holds at every terminal."""
    res = explore(program, **explore_kw)
    for (out, obs), witness in res.witnesses.items():
        if not predicate(out, obs):
            return PropertyReport(
                name=name, holds=False, exhaustive=res.complete,
                detail=f"violated at output={out!r} obs={obs!r}",
                counterexample=witness.schedule(), exploration=res)
    return PropertyReport(name=name, holds=True, exhaustive=res.complete,
                          exploration=res)


def check_sometimes(program: Program,
                    predicate: Callable[[tuple, Any], bool],
                    name: str = "sometimes",
                    **explore_kw: Any) -> PropertyReport:
    """Some schedule reaches a terminal satisfying the predicate.

    This is the Test-1 question form: "could scenario X happen?" — a
    YES needs a witness schedule, a NO needs exhaustive exploration.
    """
    res = explore(program, **explore_kw)
    for (out, obs), witness in res.witnesses.items():
        if predicate(out, obs):
            return PropertyReport(
                name=name, holds=True, exhaustive=res.complete,
                detail=f"witness output={out!r} obs={obs!r}",
                witness=witness.schedule(), exploration=res)
    return PropertyReport(
        name=name, holds=False, exhaustive=res.complete,
        detail="no satisfying terminal found"
               + ("" if res.complete else " (budget hit — inconclusive)"),
        exploration=res)


# ---------------------------------------------------------------------------
# trace-level analyses
# ---------------------------------------------------------------------------

def mutex_intervals(trace: Trace, enter_label: str, exit_label: str
                    ) -> list[tuple[str, int, int]]:
    """Extract (task, enter_step, exit_step) critical-section intervals.

    Convention: tasks mark sections with ``Emit((enter_label, name))`` /
    ``Emit((exit_label, name))``; the emitted tuples appear in
    ``trace.output`` in execution order.
    """
    intervals: list[tuple[str, int, int]] = []
    open_at: dict[str, int] = {}
    for pos, value in enumerate(trace.output):
        if not (isinstance(value, tuple) and len(value) == 2):
            continue
        label, who = value
        if label == enter_label:
            open_at[who] = pos
        elif label == exit_label and who in open_at:
            intervals.append((who, open_at.pop(who), pos))
    # anything never exited stays open to the end of the trace
    for who, start in open_at.items():
        intervals.append((who, start, len(trace.output)))
    return intervals


def check_mutual_exclusion(trace: Trace, enter_label: str = "enter",
                           exit_label: str = "exit") -> Optional[str]:
    """None of the marked critical sections overlap.

    Returns None when exclusion holds, else a description of the first
    overlapping pair.
    """
    intervals = sorted(mutex_intervals(trace, enter_label, exit_label),
                       key=lambda iv: iv[1])
    for (who_a, s_a, e_a), (who_b, s_b, e_b) in zip(intervals, intervals[1:]):
        if s_b < e_a:
            return (f"{who_a} in section [{s_a},{e_a}] overlaps "
                    f"{who_b} entering at {s_b}")
    return None


def starvation_gap(trace: Trace, task_name: str) -> int:
    """Longest run of consecutive steps during which ``task_name`` did
    not execute (after its first and before its last step).

    A fairness measure: under a fair scheduler the gap stays bounded by
    roughly the number of live tasks.
    """
    positions = [i for i, e in enumerate(trace.events) if e.task_name == task_name]
    if len(positions) < 2:
        return 0
    return max(b - a - 1 for a, b in zip(positions, positions[1:]))


def fairness_report(trace: Trace) -> dict[str, dict[str, int]]:
    """Per-task steps and worst starvation gap — a fairness dashboard."""
    report: dict[str, dict[str, int]] = {}
    for name, steps in trace.steps_by_task().items():
        report[name] = {"steps": steps, "max_gap": starvation_gap(trace, name)}
    return report
