"""Systematic interleaving exploration (CHESS-style replay DFS).

Python generators cannot be snapshotted, so the explorer re-executes the
program from scratch for every interleaving, steering each run with a
:class:`~repro.core.policy.FixedPolicy` prefix and extending depth-first.
Because *all* kernel nondeterminism flows through policy decisions, the
decision tree is exactly the space of behaviours: enumerate the leaves
and you have enumerated every schedule (up to the budget).

The unit of exploration is a *program*: a callable that receives a fresh
:class:`~repro.core.scheduler.Scheduler`, creates all state (locks,
mailboxes, shared variables — they must be fresh per run!), spawns the
tasks, and optionally returns an *observation function* evaluated after
the run to capture final state.

>>> from repro.core import Emit
>>> def program(sched):
...     def t(c):
...         yield Emit(c)
...     sched.spawn(t, "a")
...     sched.spawn(t, "b")
>>> sorted(explore(program).output_strings())
['ab', 'ba']
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.policy import FixedPolicy, SchedulingPolicy, Transition
from ..core.scheduler import Scheduler
from ..core.trace import Trace

__all__ = ["Program", "ExplorationResult", "explore", "run_schedule"]

#: A program under exploration: sets up a fresh Scheduler, optionally
#: returns a zero-argument observation callable.
Program = Callable[[Scheduler], Optional[Callable[[], Any]]]


class _FirstPolicy(SchedulingPolicy):
    """Always pick transition 0 — the DFS tail beyond the fixed prefix."""

    def choose(self, transitions: list[Transition]) -> int:
        return 0


@dataclass
class ExplorationResult:
    """Everything learned from exploring a program's schedule space."""

    runs: int = 0
    complete: bool = True
    #: multiset of outcomes: done / deadlock / failed / budget
    outcomes: Counter = field(default_factory=Counter)
    #: distinct (output-tuple, observation) terminal results
    terminals: dict[tuple, Any] = field(default_factory=dict)
    #: one witness trace per distinct terminal
    witnesses: dict[tuple, Trace] = field(default_factory=dict)
    #: traces that ended in deadlock (bounded sample)
    deadlocks: list[Trace] = field(default_factory=list)
    #: traces that ended in task failure (bounded sample)
    failures: list[Trace] = field(default_factory=list)
    #: total scheduling decisions executed across all runs (work measure)
    decisions: int = 0

    # -- convenience views ------------------------------------------------
    def output_sets(self) -> set[tuple]:
        """Distinct observable-output tuples over all explored schedules."""
        return {key[0] for key in self.terminals}

    def output_strings(self) -> set[str]:
        """Outputs as concatenated strings — the paper's 'possibility' lists."""
        return {"".join(str(v) for v in out) for out in self.output_sets()}

    def observations(self) -> set[Any]:
        """Distinct post-run observation values (hashable observations only)."""
        return {obs for (_, obs) in self.terminals}

    @property
    def deadlock_possible(self) -> bool:
        return self.outcomes["deadlock"] > 0

    def witness_for_output(self, output_str: str) -> Optional[Trace]:
        for key, trace in self.witnesses.items():
            if "".join(str(v) for v in key[0]) == output_str:
                return trace
        return None

    def summary(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.outcomes.items()))
        return (f"{self.runs} runs ({'complete' if self.complete else 'budget hit'}); "
                f"{len(self.terminals)} distinct terminals; outcomes: {kinds}")


def _freeze(value: Any) -> Any:
    """Best-effort hashable form of an observation."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    return value


def run_schedule(program: Program, schedule: list[int],
                 max_steps: int = 200_000) -> tuple[Trace, Any]:
    """Execute one run steered by ``schedule`` (then first-choice tail).

    Returns the trace and the frozen observation.  This is the replay
    entry point: feeding back ``trace.schedule()`` reproduces a run.
    """
    sched = Scheduler(FixedPolicy(schedule, tail=_FirstPolicy()),
                      raise_on_deadlock=False, raise_on_failure=False,
                      max_steps=max_steps)
    observe = program(sched)
    trace = sched.run()
    obs = _freeze(observe()) if observe is not None else None
    return trace, obs


def explore(program: Program,
            *,
            max_runs: int = 20_000,
            max_steps: int = 200_000,
            sample_limit: int = 16) -> ExplorationResult:
    """Depth-first enumeration of every schedule of ``program``.

    Parameters
    ----------
    max_runs:
        Budget on the number of complete executions; when exceeded the
        result has ``complete=False`` (an *under*-approximation — every
        reported behaviour is real, but some may be missing).
    max_steps:
        Per-run step budget (guards non-terminating programs).
    sample_limit:
        How many deadlock/failure traces to retain as samples.
    """
    result = ExplorationResult()
    prefix: list[int] = []

    while True:
        if result.runs >= max_runs:
            result.complete = False
            break
        trace, obs = run_schedule(program, prefix, max_steps=max_steps)
        result.runs += 1
        result.decisions += len(trace)
        result.outcomes[trace.outcome] += 1
        key = (tuple(trace.output), obs)
        if key not in result.terminals:
            result.terminals[key] = obs
            result.witnesses[key] = trace
        if trace.outcome == "deadlock" and len(result.deadlocks) < sample_limit:
            result.deadlocks.append(trace)
        if trace.outcome == "failed" and len(result.failures) < sample_limit:
            result.failures.append(trace)

        # backtrack: deepest decision with an untried alternative
        decisions = trace.decisions()
        d = len(decisions) - 1
        while d >= 0 and decisions[d][0] + 1 >= decisions[d][1]:
            d -= 1
        if d < 0:
            break
        prefix = [idx for idx, _ in decisions[:d]] + [decisions[d][0] + 1]

    return result
