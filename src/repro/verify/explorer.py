"""Systematic interleaving exploration (CHESS-style replay DFS).

Python generators cannot be snapshotted, so the explorer re-executes the
program from scratch for every interleaving, steering each run with a
:class:`~repro.core.policy.FixedPolicy` prefix and extending depth-first.
Because *all* kernel nondeterminism flows through policy decisions, the
decision tree is exactly the space of behaviours: enumerate the leaves
and you have enumerated every schedule (up to the budget).

The unit of exploration is a *program*: a callable that receives a fresh
:class:`~repro.core.scheduler.Scheduler`, creates all state (locks,
mailboxes, shared variables — they must be fresh per run!), spawns the
tasks, and optionally returns an *observation function* evaluated after
the run to capture final state.

>>> from repro.core import Emit
>>> def program(sched):
...     def t(c):
...         yield Emit(c)
...     sched.spawn(t, "a")
...     sched.spawn(t, "b")
>>> sorted(explore(program).output_strings())
['ab', 'ba']

Three optional *reductions* cut the tree without changing the answers
(see docs/ARCHITECTURE.md, "Explorer internals", for when each is sound):

* ``reduce={"sleep"}`` — dynamic partial-order reduction: sibling
  branches are explored only when a later step's access footprint
  conflicts with an earlier one, so commuting interleavings are visited
  once;
* ``reduce={"fingerprint"}`` — state deduplication: a run is cut short
  when it reconverges to a kernel state already expanded at the same
  depth;
* ``workers=N`` — the schedule tree is partitioned by first decision
  across ``N`` forked processes and the partial results merged.

``reduce=True`` (or ``"all"``) enables both reductions.  All three are
off by default: the naive enumeration is the ground truth the reductions
are tested against.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Union

from ..core.policy import FixedPolicy, SchedulingPolicy, Transition
from ..core.scheduler import Scheduler
from ..core.trace import Trace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.monitors import MonitorBus

__all__ = ["Program", "ExplorationResult", "ExplorationStats", "REDUCTIONS",
           "explore", "run_schedule"]

#: A program under exploration: sets up a fresh Scheduler, optionally
#: returns a zero-argument observation callable.
Program = Callable[[Scheduler], Optional[Callable[[], Any]]]

#: the reduction names accepted by :func:`explore`'s ``reduce`` argument
REDUCTIONS = ("sleep", "fingerprint")


class _FirstPolicy(SchedulingPolicy):
    """Always pick transition 0 — the DFS tail beyond the fixed prefix."""

    def choose(self, transitions: list[Transition]) -> int:
        return 0


@dataclass
class ExplorationStats:
    """Live/final instrumentation of one :func:`explore` call.

    All fields are cheap counters maintained inline by the exploration
    loops; ``elapsed_seconds``/``decisions_per_sec`` are stamped once by
    :func:`explore` when the search returns.  The same object is handed
    to the ``progress`` callback while the search is still running, so
    callbacks see monotonically growing counters.
    """

    #: complete executions so far (mirrors ``ExplorationResult.runs``)
    runs: int = 0
    #: scheduling decisions executed so far (the work measure)
    decisions: int = 0
    #: sibling branches the sleep-set/DPOR analysis never scheduled —
    #: enabled transitions abandoned as commuting when their node left
    #: the DFS stack
    sleep_prunes: int = 0
    #: runs cut short because a (depth, fingerprint) state had already
    #: been expanded
    fingerprint_hits: int = 0
    #: distinct (depth, fingerprint) states recorded
    fingerprint_states: int = 0
    #: deepest DFS frontier reached (longest executed path, in steps)
    max_frontier_depth: int = 0
    #: wall-clock duration of the whole explore() call
    elapsed_seconds: float = 0.0
    #: decisions / elapsed_seconds (0.0 when too fast to measure)
    decisions_per_sec: float = 0.0
    #: per-worker split when ``workers > 1`` took effect: one dict per
    #: first-decision subtree with its runs/decisions/prune counters
    workers: list = field(default_factory=list)

    def fold(self, other: "ExplorationStats") -> None:
        """Accumulate another (e.g. per-subtree) stats object."""
        self.runs += other.runs
        self.decisions += other.decisions
        self.sleep_prunes += other.sleep_prunes
        self.fingerprint_hits += other.fingerprint_hits
        self.fingerprint_states += other.fingerprint_states
        self.max_frontier_depth = max(self.max_frontier_depth,
                                      other.max_frontier_depth)
        self.workers.extend(other.workers)

    def as_dict(self) -> dict:
        """JSON-ready view (benchmarks embed this in BENCH_explorer.json)."""
        return {
            "runs": self.runs,
            "decisions": self.decisions,
            "sleep_prunes": self.sleep_prunes,
            "fingerprint_hits": self.fingerprint_hits,
            "fingerprint_states": self.fingerprint_states,
            "max_frontier_depth": self.max_frontier_depth,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "decisions_per_sec": round(self.decisions_per_sec, 1),
            "workers": list(self.workers),
        }


@dataclass
class ExplorationResult:
    """Everything learned from exploring a program's schedule space."""

    runs: int = 0
    complete: bool = True
    #: multiset of outcomes: done / deadlock / failed / budget / pruned
    outcomes: Counter = field(default_factory=Counter)
    #: distinct (output-tuple, observation) terminal results
    terminals: dict[tuple, Any] = field(default_factory=dict)
    #: one witness trace per distinct terminal
    witnesses: dict[tuple, Trace] = field(default_factory=dict)
    #: traces that ended in deadlock (bounded sample)
    deadlocks: list[Trace] = field(default_factory=list)
    #: traces that ended in task failure (bounded sample)
    failures: list[Trace] = field(default_factory=list)
    #: total scheduling decisions executed across all runs (work measure)
    decisions: int = 0
    #: runs cut short by the fingerprint reduction (subset of ``runs``)
    pruned_runs: int = 0
    #: search instrumentation (prune counts, frontier depth, throughput)
    stats: ExplorationStats = field(default_factory=ExplorationStats,
                                    compare=False)
    #: deduplicated hazards the monitor bus raised across all runs
    #: (only populated when explore() runs with ``monitors``)
    hazards: list = field(default_factory=list, compare=False)
    _hazard_seen: set = field(default_factory=set, repr=False,
                              compare=False)
    #: output-string → witness index, built lazily on first lookup
    _witness_index: dict = field(default_factory=dict, repr=False, compare=False)
    _indexed: int = field(default=-1, repr=False, compare=False)

    # -- recording --------------------------------------------------------
    def record_run(self, trace: Trace, obs: Any, sample_limit: int = 16) -> None:
        """Fold one executed run into the result."""
        self.runs += 1
        self.decisions += len(trace)
        self.stats.runs = self.runs
        self.stats.decisions = self.decisions
        if len(trace) > self.stats.max_frontier_depth:
            self.stats.max_frontier_depth = len(trace)
        self.outcomes[trace.outcome] += 1
        if trace.outcome == "pruned":
            # cut short by the fingerprint hook: no terminal reached —
            # the reconverged-to state was expanded by an earlier run
            self.pruned_runs += 1
            return
        key = (tuple(trace.output), obs)
        if key not in self.terminals:
            self.terminals[key] = obs
            self.witnesses[key] = trace
        if trace.outcome == "deadlock" and len(self.deadlocks) < sample_limit:
            self.deadlocks.append(trace)
        if trace.outcome == "failed" and len(self.failures) < sample_limit:
            self.failures.append(trace)

    def record_hazards(self, hazards: Iterable) -> None:
        """Fold one run's monitor-bus hazards in (deduped by pattern)."""
        for hz in hazards:
            if hz.key not in self._hazard_seen:
                self._hazard_seen.add(hz.key)
                self.hazards.append(hz)

    def merge(self, other: "ExplorationResult", sample_limit: int = 16) -> None:
        """Fold another (e.g. per-subtree) result into this one."""
        self.runs += other.runs
        self.decisions += other.decisions
        self.pruned_runs += other.pruned_runs
        self.stats.fold(other.stats)
        self.complete = self.complete and other.complete
        self.outcomes.update(other.outcomes)
        for key, obs in other.terminals.items():
            if key not in self.terminals:
                self.terminals[key] = obs
                self.witnesses[key] = other.witnesses[key]
        for t in other.deadlocks[:max(0, sample_limit - len(self.deadlocks))]:
            self.deadlocks.append(t)
        for t in other.failures[:max(0, sample_limit - len(self.failures))]:
            self.failures.append(t)
        self.record_hazards(other.hazards)

    # -- convenience views ------------------------------------------------
    def output_sets(self) -> set[tuple]:
        """Distinct observable-output tuples over all explored schedules."""
        return {key[0] for key in self.terminals}

    def output_strings(self) -> set[str]:
        """Outputs as concatenated strings — the paper's 'possibility' lists."""
        return {"".join(str(v) for v in out) for out in self.output_sets()}

    def observations(self) -> set[Any]:
        """Distinct post-run observation values (hashable observations only)."""
        return {obs for (_, obs) in self.terminals}

    @property
    def deadlock_possible(self) -> bool:
        return self.outcomes["deadlock"] > 0

    def hazard_counts(self) -> dict[str, int]:
        """Hazard kind → how many distinct patterns of it were seen."""
        counts: dict[str, int] = {}
        for hz in self.hazards:
            counts[hz.kind] = counts.get(hz.kind, 0) + 1
        return counts

    def witness_for_output(self, output_str: str) -> Optional[Trace]:
        if self._indexed != len(self.witnesses):
            # (re)build the index; keep the *first* witness per string,
            # matching the former linear scan's iteration order
            self._witness_index = {}
            for key, trace in self.witnesses.items():
                out = "".join(str(v) for v in key[0])
                self._witness_index.setdefault(out, trace)
            self._indexed = len(self.witnesses)
        return self._witness_index.get(output_str)

    def summary(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.outcomes.items()))
        return (f"{self.runs} runs ({'complete' if self.complete else 'budget hit'}); "
                f"{len(self.terminals)} distinct terminals; outcomes: {kinds}")


def _freeze(value: Any) -> Any:
    """Best-effort hashable form of an observation."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    return value


def run_schedule(program: Program, schedule: list[int],
                 max_steps: int = 200_000,
                 *,
                 record_enabled: bool = False,
                 step_hook: Optional[Callable[[Scheduler], bool]] = None,
                 monitors: Optional["MonitorBus"] = None,
                 ) -> tuple[Trace, Any]:
    """Execute one run steered by ``schedule`` (then first-choice tail).

    Returns the trace and the frozen observation.  This is the replay
    entry point: feeding back ``trace.schedule()`` reproduces a run.
    ``record_enabled``/``step_hook``/``monitors`` pass through to the
    scheduler (the reductions use the first two; ``monitors`` attaches
    a fresh :class:`repro.obs.MonitorBus` for hazard detection — plain
    replay leaves them all off).
    """
    sched = Scheduler(FixedPolicy(schedule, tail=_FirstPolicy()),
                      raise_on_deadlock=False, raise_on_failure=False,
                      max_steps=max_steps, record_enabled=record_enabled,
                      step_hook=step_hook, monitors=monitors)
    observe = program(sched)
    trace = sched.run()
    if trace.outcome == "pruned":
        # the run stopped mid-flight; the observation would see a
        # half-finished state that is not a terminal of the program
        return trace, None
    obs = _freeze(observe()) if observe is not None else None
    return trace, obs


def _normalize_reduce(reduce: Union[bool, str, Iterable[str], None]) -> frozenset:
    """Canonical form of the ``reduce`` argument: a frozenset of names."""
    if not reduce:
        return frozenset()
    if reduce is True:
        return frozenset(REDUCTIONS)
    if isinstance(reduce, str):
        # "sleep+fingerprint" / "sleep,fingerprint" spell a combination
        reduce = [p for p in reduce.replace(",", "+").split("+") if p]
    names = frozenset(reduce)
    unknown = names - set(REDUCTIONS) - {"all"}
    if unknown:
        raise ValueError(
            f"unknown reduction(s) {sorted(unknown)}; "
            f"valid: {REDUCTIONS + ('all',)}")
    if "all" in names:
        names = frozenset(REDUCTIONS)
    return names


def _normalize_monitors(monitors: Any) -> Optional[Callable]:
    """Canonical form of ``explore``'s ``monitors``: a per-run factory.

    ``True`` means a fresh default :class:`repro.obs.MonitorBus` per
    run; a callable is used as-is (call it with no arguments to get the
    bus for one run — buses are single-use, like schedulers).
    """
    if not monitors:
        return None
    if monitors is True:
        from ..obs.monitors import MonitorBus
        return MonitorBus
    if callable(monitors):
        return monitors
    raise TypeError(
        f"monitors must be True or a zero-argument bus factory, "
        f"got {monitors!r}")


def explore(program: Program,
            *,
            max_runs: int = 20_000,
            max_steps: int = 200_000,
            sample_limit: int = 16,
            reduce: Union[bool, str, Iterable[str], None] = (),
            workers: int = 0,
            monitors: Any = None,
            progress: Optional[Callable[[ExplorationStats], None]] = None,
            progress_every: int = 200,
            clock: Optional[Callable[[], float]] = None
            ) -> ExplorationResult:
    """Depth-first enumeration of every schedule of ``program``.

    Parameters
    ----------
    max_runs:
        Budget on the number of complete executions; when exceeded the
        result has ``complete=False`` (an *under*-approximation — every
        reported behaviour is real, but some may be missing).
    max_steps:
        Per-run step budget (guards non-terminating programs).
    sample_limit:
        How many deadlock/failure traces to retain as samples.
    reduce:
        Which reductions to apply: any subset of :data:`REDUCTIONS`
        (``"sleep"`` — partial-order reduction, ``"fingerprint"`` —
        state deduplication), a single name, ``"all"``/``True`` for
        both, a ``"+"``-joined combination (``"sleep+fingerprint"``), or
        empty (default) for the naive full enumeration.  The reductions
        preserve the terminal set, the observation set and the deadlock
        verdict; they change only how much work finding them takes
        (compare ``result.decisions``).
    workers:
        When > 1, partition the schedule tree by first decision over
        that many forked processes and merge the partial results.
        Falls back to sequential exploration where ``fork`` is
        unavailable.  Per-worker run budget is ``max_runs`` divided by
        the number of subtrees (rounded up).
    monitors:
        Hazard monitoring across all explored schedules: ``True``
        attaches a fresh default :class:`repro.obs.MonitorBus` to every
        run, a zero-argument callable supplies a custom bus per run.
        The deduplicated hazards land in ``result.hazards`` (see
        ``result.hazard_counts()``).  Monitoring is observation-only:
        runs/decisions/prune counts are identical with it on or off.
    progress:
        Optional callback invoked with the live :class:`ExplorationStats`
        every ``progress_every`` completed runs (sequential exploration
        only; forked workers cannot call back into the parent).  The
        callback must not mutate the stats object.
    clock:
        Time source for the wall-clock stats (default:
        :data:`repro.obs.profile.wall_clock`).  Tests inject a
        :class:`repro.obs.FakeClock` to make ``elapsed_seconds`` /
        ``decisions_per_sec`` deterministic; everything else about the
        exploration is already clock-free.

    The returned result carries ``result.stats`` — prune counters,
    frontier depth, elapsed wall time and decisions/sec.
    """
    reduce_set = _normalize_reduce(reduce)
    monitor_factory = _normalize_monitors(monitors)
    if clock is None:
        from ..obs.profile import wall_clock
        clock = wall_clock
    t0 = clock()
    result = None
    if workers and workers > 1:
        result = _explore_parallel(program, max_runs=max_runs,
                                   max_steps=max_steps,
                                   sample_limit=sample_limit,
                                   reduce_set=reduce_set, workers=workers,
                                   monitor_factory=monitor_factory)
    if result is None:
        result = _explore_seq(program, max_runs=max_runs, max_steps=max_steps,
                              sample_limit=sample_limit, reduce_set=reduce_set,
                              monitor_factory=monitor_factory,
                              progress=progress, progress_every=progress_every)
    elapsed = clock() - t0
    result.stats.elapsed_seconds = elapsed
    if elapsed > 0:
        result.stats.decisions_per_sec = result.decisions / elapsed
    return result


def _explore_seq(program: Program, *, max_runs: int, max_steps: int,
                 sample_limit: int, reduce_set: frozenset,
                 init_prefix: Iterable[int] = (), base: int = 0,
                 monitor_factory: Optional[Callable] = None,
                 progress: Optional[Callable[[ExplorationStats], None]] = None,
                 progress_every: int = 200,
                 ) -> ExplorationResult:
    """Sequential exploration of the subtree under ``init_prefix``.

    ``base`` is the number of leading decisions that are fixed (the
    parallel partitioner owns them); backtracking never rises above it.
    """
    if not reduce_set:
        return _explore_naive(program, max_runs=max_runs, max_steps=max_steps,
                              sample_limit=sample_limit,
                              init_prefix=init_prefix, base=base,
                              monitor_factory=monitor_factory,
                              progress=progress,
                              progress_every=progress_every)
    return _explore_reduced(program, max_runs=max_runs, max_steps=max_steps,
                            sample_limit=sample_limit,
                            use_sleep="sleep" in reduce_set,
                            use_fingerprint="fingerprint" in reduce_set,
                            init_prefix=init_prefix, base=base,
                            monitor_factory=monitor_factory,
                            progress=progress, progress_every=progress_every)


# ---------------------------------------------------------------------------
# naive full DFS (the ground truth)
# ---------------------------------------------------------------------------
def _explore_naive(program: Program, *, max_runs: int, max_steps: int,
                   sample_limit: int, init_prefix: Iterable[int] = (),
                   base: int = 0,
                   monitor_factory: Optional[Callable] = None,
                   progress: Optional[Callable] = None,
                   progress_every: int = 200) -> ExplorationResult:
    result = ExplorationResult()
    prefix: list[int] = list(init_prefix)

    while True:
        if result.runs >= max_runs:
            result.complete = False
            break
        bus = monitor_factory() if monitor_factory is not None else None
        trace, obs = run_schedule(program, prefix, max_steps=max_steps,
                                  monitors=bus)
        result.record_run(trace, obs, sample_limit)
        if bus is not None:
            result.record_hazards(bus.hazards)
        if progress is not None and result.runs % progress_every == 0:
            progress(result.stats)

        # backtrack: deepest decision with an untried alternative
        decisions = trace.decisions()
        d = len(decisions) - 1
        while d >= base and decisions[d][0] + 1 >= decisions[d][1]:
            d -= 1
        if d < base:
            break
        prefix = [idx for idx, _ in decisions[:d]] + [decisions[d][0] + 1]

    return result


# ---------------------------------------------------------------------------
# reduced DFS: sleep-set/DPOR pruning + state-fingerprint deduplication
# ---------------------------------------------------------------------------
@dataclass
class _Node:
    """One depth of the current DFS path.

    ``enabled`` is the replay-stable ``(ltid, kind, key)`` summary of the
    transitions available here; ``done`` holds indices already executed
    or scheduled, ``todo`` the backtrack set still awaiting exploration.
    """

    enabled: tuple
    done: set = field(default_factory=set)
    todo: list = field(default_factory=list)

    def add_index(self, i: int) -> None:
        if i not in self.done and i not in self.todo:
            self.todo.append(i)

    def add_task(self, ltid: int) -> bool:
        """Schedule every transition of ``ltid`` here; False if it has none.

        Whole-task granularity keeps intra-task nondeterminism (several
        deliverable messages, several choice options) together: those
        variants are never independent of each other.
        """
        hit = False
        for i, summary in enumerate(self.enabled):
            if summary[0] == ltid:
                hit = True
                self.add_index(i)
        return hit

    def add_everyone(self) -> None:
        for i in range(len(self.enabled)):
            self.add_index(i)


def _conflicts(fp_a: Optional[frozenset], fp_b: Optional[frozenset]) -> bool:
    """Do two step footprints touch a common location, one writing?

    ``None`` (unknown footprint) is conservatively treated as
    conflicting with everything.  Footprints hold 1–3 tokens, so the
    nested scan is cheaper than building sets.
    """
    if fp_a is None or fp_b is None:
        return True
    for dom_a, key_a, mode_a in fp_a:
        for dom_b, key_b, mode_b in fp_b:
            if dom_a == dom_b and key_a == key_b \
                    and ("w" == mode_a or "w" == mode_b):
                return True
    return False


def _analyze(events: list[TraceEvent], stack: list[_Node], base: int) -> None:
    """Seed backtrack sets from one executed trace (DPOR, Flanagan–
    Godefroid style adapted to replay exploration).

    For each step ``j``, find its *latest* conflicting predecessor
    ``i`` from a different task where task ``j`` can actually be
    scheduled: the two steps might yield different behaviour in the
    other order, so task ``j`` must also be tried at node ``i``.

    Two refinements over the textbook "last conflicting predecessor"
    scan, both needed for soundness (dropping either loses reachable
    behaviours — the regression fixture is the barging bridge in
    tests/test_verify_reductions_equiv.py):

    * a conflicting predecessor from ``j``'s *own* task does not end
      the scan — program order already fixes that pair, but a step
      behind it can still race with ``j`` without conflicting with the
      same-task step, so nothing downstream would ever re-seed it;
    * a conflicting predecessor where task ``j`` has *no* transition
      does not end the scan either.  Such a pair is dependent but not
      co-enabled (e.g. a Release racing a blocked task's acquire
      grant: the grant only exists once the release has happened), so
      the reversal the backtrack point stands for is unrealisable
      there.  Every enabled transition is scheduled at that node (the
      classical fallback) and the scan continues to the co-enabled
      race partner shielded behind it.
    """
    for j in range(base + 1, len(events)):
        ej = events[j]
        for i in range(j - 1, base - 1, -1):
            ei = events[i]
            if not _conflicts(ei.footprint, ej.footprint):
                continue
            if ei.task_ltid == ej.task_ltid:
                continue
            if stack[i].add_task(ej.task_ltid):
                break
            stack[i].add_everyone()


def _analyze_virtual(events: list[TraceEvent], stack: list[_Node], base: int,
                     future_pairs: Iterable[tuple]) -> None:
    """Conflict analysis for steps that were *not* executed.

    When the fingerprint reduction cuts a run short, the steps its
    subtree would have taken are known from the first visit's subtree
    summary.  Each such ``(ltid, footprint)`` pair is treated as a
    virtual step appended after the trace and analysed against the
    executed prefix, so the backtrack points the pruned subtree would
    have generated are not lost (the classic DPOR + state-caching
    interaction).
    """
    for ltid_v, fp_v in future_pairs:
        for i in range(len(events) - 1, base - 1, -1):
            ei = events[i]
            if not _conflicts(ei.footprint, fp_v):
                continue
            if ei.task_ltid == ltid_v:
                # program order fixes this pair; earlier steps can
                # still race with the virtual step (see _analyze)
                continue
            if stack[i].add_task(ltid_v):
                break
            stack[i].add_everyone()


def _sleep_prunes(nodes: Iterable[_Node]) -> int:
    """Enabled transitions a batch of retired nodes never scheduled.

    Called when nodes leave the DFS stack with an empty ``todo``: every
    enabled index not in ``done`` is a sibling branch the conflict
    analysis decided commutes with what was explored — a sleep-set prune.
    """
    return sum(max(0, len(n.enabled) - len(n.done)) for n in nodes)


def _explore_reduced(program: Program, *, max_runs: int, max_steps: int,
                     sample_limit: int, use_sleep: bool,
                     use_fingerprint: bool, init_prefix: Iterable[int] = (),
                     base: int = 0,
                     monitor_factory: Optional[Callable] = None,
                     progress: Optional[Callable] = None,
                     progress_every: int = 200) -> ExplorationResult:
    result = ExplorationResult()
    stats = result.stats
    prefix: list[int] = list(init_prefix)
    stack: list[_Node] = []
    #: (depth, Scheduler.fingerprint()) → set of (ltid, footprint) pairs
    #: executed in the subtree below that state (the summary feeds
    #: _analyze_virtual; with sleep off an empty set is stored but unused)
    summaries: dict = {}
    #: key of the state after k steps on the current path, index k-1
    path_keys: list = []

    while True:
        if result.runs >= max_runs:
            result.complete = False
            break

        hook = None
        run_keys: list = []
        if use_fingerprint:
            plen = len(prefix)

            def hook(sched: Scheduler, _plen: int = plen) -> bool:
                depth = len(sched.trace.events)
                if depth < _plen:
                    # still replaying the committed prefix (the prefix's
                    # last decision is the new branch; everything before
                    # it is this path's own history, not a reconvergence)
                    return True
                if sched.fingerprint_opaque():
                    # kernel-invisible user state in play: equal
                    # fingerprints would not imply equal states
                    return True
                key = (depth, sched.fingerprint())
                run_keys.append((depth, key))
                if key in summaries:
                    stats.fingerprint_hits += 1
                    return False
                summaries[key] = set()
                return True

        bus = monitor_factory() if monitor_factory is not None else None
        trace, obs = run_schedule(program, prefix, max_steps=max_steps,
                                  record_enabled=True, step_hook=hook,
                                  monitors=bus)
        result.record_run(trace, obs, sample_limit)
        if bus is not None:
            result.record_hazards(bus.hazards)
        if progress is not None and result.runs % progress_every == 0:
            stats.fingerprint_states = len(summaries)
            progress(stats)
        events = trace.events
        path = trace.schedule()

        # grow the node stack over this run's newly reached depths
        for d in range(len(stack), len(events)):
            e = events[d]
            node = _Node(enabled=e.enabled or ())
            node.done.add(e.chosen_index)
            if use_sleep:
                # branch on intra-task nondeterminism unconditionally;
                # cross-task branches come from conflict analysis below
                if e.enabled:
                    node.add_task(e.enabled[e.chosen_index][0])
            else:
                node.add_everyone()
            stack.append(node)

        if use_fingerprint and use_sleep:
            for depth, key in run_keys:
                idx = depth - 1
                while len(path_keys) <= idx:
                    path_keys.append(None)
                path_keys[idx] = key
            # every executed step belongs to the subtree of every state
            # above it on this path: fold it into their summaries
            ancestors: list = []
            for j, e in enumerate(events):
                pair = (e.task_ltid, e.footprint)
                for s in ancestors:
                    s.add(pair)
                k = path_keys[j] if j < len(path_keys) else None
                if k is not None:
                    ancestors.append(summaries[k])

        if use_sleep:
            _analyze(events, stack, base)
            if trace.outcome == "pruned" and run_keys:
                # replay the pruned subtree's conflicts from its summary
                future = tuple(summaries.get(run_keys[-1][1], ()))
                _analyze_virtual(events, stack, base, future)
                for i in range(len(events) - 1):
                    k = path_keys[i] if i < len(path_keys) else None
                    if k is not None:
                        summaries[k].update(future)

        # backtrack: deepest node with something left to try
        d = len(stack) - 1
        while d >= base and not stack[d].todo:
            d -= 1
        if d < base:
            # search exhausted: every node retires with an empty todo
            stats.sleep_prunes += _sleep_prunes(stack[base:])
            break
        node = stack[d]
        nxt = node.todo.pop()
        node.done.add(nxt)
        # nodes below d retire now (todo empty): tally their prunes
        stats.sleep_prunes += _sleep_prunes(stack[d + 1:])
        del stack[d + 1:]
        del path_keys[d:]
        prefix = path[:d] + [nxt]

    stats.fingerprint_states = len(summaries)
    return result


# ---------------------------------------------------------------------------
# parallel subtree exploration
# ---------------------------------------------------------------------------
#: fork-inherited work description for pool workers: program callables
#: close over arbitrary state and cannot be pickled, but a forked child
#: sees the parent's module globals as they were at fork time.
_WORKER_STATE: Optional[dict] = None


def _worker_subtree(first: int) -> ExplorationResult:
    st = _WORKER_STATE
    return _explore_seq(st["program"], max_runs=st["max_runs"],
                        max_steps=st["max_steps"],
                        sample_limit=st["sample_limit"],
                        reduce_set=st["reduce_set"],
                        monitor_factory=st["monitor_factory"],
                        init_prefix=[first], base=1)


def _root_fanout(program: Program, max_steps: int) -> int:
    """How many first decisions the schedule tree has (partition count)."""
    sched = Scheduler(FixedPolicy([], tail=_FirstPolicy()),
                      raise_on_deadlock=False, raise_on_failure=False,
                      max_steps=max_steps)
    program(sched)
    return len(sched.enabled_transitions())


def _explore_parallel(program: Program, *, max_runs: int, max_steps: int,
                      sample_limit: int, reduce_set: frozenset,
                      workers: int,
                      monitor_factory: Optional[Callable] = None,
                      ) -> Optional[ExplorationResult]:
    """Partition by first decision across forked workers; None = fall back."""
    global _WORKER_STATE
    import multiprocessing as mp

    try:
        ctx = mp.get_context("fork")
    except ValueError:
        return None
    fanout = _root_fanout(program, max_steps)
    if fanout <= 1:
        return None
    per_budget = -(-max_runs // fanout)  # ceil: subtree share of the budget
    _WORKER_STATE = {"program": program, "max_runs": per_budget,
                     "max_steps": max_steps, "sample_limit": sample_limit,
                     "reduce_set": reduce_set,
                     "monitor_factory": monitor_factory}
    try:
        with ctx.Pool(min(workers, fanout)) as pool:
            parts = pool.map(_worker_subtree, range(fanout))
    except (OSError, ValueError):
        return None  # fork/pipe unavailable in this environment
    finally:
        _WORKER_STATE = None

    result = ExplorationResult()
    for first, part in enumerate(parts):
        result.merge(part, sample_limit=sample_limit)
        result.stats.workers.append({
            "subtree": first,
            "runs": part.runs,
            "decisions": part.decisions,
            "sleep_prunes": part.stats.sleep_prunes,
            "fingerprint_hits": part.stats.fingerprint_hits,
            "complete": part.complete,
        })
    return result
