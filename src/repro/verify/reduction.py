"""Exploration-cost control: budgets, sampling and output-equivalence.

The explorer in :mod:`repro.verify.explorer` is exhaustive; its cost is
the number of schedule-tree leaves, which grows factorially with tasks
and preemption points.  This module provides the pragmatic reductions
the benchmark ablations measure:

* :func:`estimate_tree` — probe the branching structure cheaply (runs a
  handful of schedules and reports fan-out statistics) so callers can
  predict cost before committing to full exploration;
* :func:`sample_behaviours` — Monte-Carlo behaviour sampling with a
  seeded random policy: sound for finding behaviours (every sample is
  real), unsound for proving absence — the classic stress-testing
  trade-off the course demonstrates;
* :func:`explore_adaptive` — full DFS that degrades to sampling when
  the estimated cost exceeds the budget, mirroring how the paper's
  students "fall back into lower level misconceptions" when the state
  space exceeds what they can manage (misconceptions M6/S8: the U1
  uncertainty level).  The returned result is flagged with the mode
  used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.policy import RandomPolicy
from ..core.scheduler import Scheduler
from .explorer import ExplorationResult, Program, _freeze, explore

__all__ = ["TreeEstimate", "estimate_tree", "sample_behaviours",
           "explore_adaptive"]


@dataclass(frozen=True)
class TreeEstimate:
    """Cheap structural probe of a program's schedule tree."""

    probe_runs: int
    mean_depth: float
    mean_fanout: float
    max_fanout: int
    #: geometric-ish estimate of leaf count: prod of per-step mean fanout
    est_leaves: float

    def describe(self) -> str:
        return (f"~{self.est_leaves:.3g} schedules "
                f"(depth≈{self.mean_depth:.1f}, fanout≈{self.mean_fanout:.2f})")


def estimate_tree(program: Program, probes: int = 8, seed: int = 0,
                  max_steps: int = 200_000) -> TreeEstimate:
    """Run a few random schedules and extrapolate the tree size.

    The estimate multiplies the observed average fan-out at every depth
    — crude, but consistently within an order of magnitude on the
    problem suite, which is all the adaptive mode needs.
    """
    depths: list[int] = []
    fanouts: list[int] = []
    est_total = 0.0
    for p in range(probes):
        sched = Scheduler(RandomPolicy(seed + p), raise_on_deadlock=False,
                          raise_on_failure=False, max_steps=max_steps)
        program(sched)
        trace = sched.run()
        depths.append(len(trace))
        run_fan = [f for _, f in trace.decisions()]
        fanouts.extend(run_fan)
        est = 1.0
        for f in run_fan:
            est *= max(f, 1)
        est_total += est
    mean_depth = sum(depths) / max(len(depths), 1)
    mean_fanout = sum(fanouts) / max(len(fanouts), 1)
    return TreeEstimate(
        probe_runs=probes,
        mean_depth=mean_depth,
        mean_fanout=mean_fanout,
        max_fanout=max(fanouts, default=1),
        est_leaves=est_total / max(probes, 1),
    )


def sample_behaviours(program: Program, samples: int = 200, seed: int = 0,
                      max_steps: int = 200_000) -> ExplorationResult:
    """Monte-Carlo sampling of schedules (stress testing).

    Returns an :class:`ExplorationResult` with ``complete=False`` —
    behaviours found are real; behaviours not found may still exist.
    """
    result = ExplorationResult(complete=False)
    for s in range(samples):
        sched = Scheduler(RandomPolicy(seed + s), raise_on_deadlock=False,
                          raise_on_failure=False, max_steps=max_steps)
        observe = program(sched)
        trace = sched.run()
        obs = _freeze(observe()) if observe is not None else None
        result.record_run(trace, obs)
    return result


def explore_adaptive(program: Program, *, budget_runs: int = 5000,
                     probes: int = 6, seed: int = 0,
                     max_steps: int = 200_000,
                     estimate: "TreeEstimate | None" = None,
                     reduce: Any = (), workers: int = 0,
                     ) -> tuple[ExplorationResult, str]:
    """Exhaustive when affordable, sampling otherwise.

    ``estimate`` lets callers that already probed the tree (benchmark
    harnesses, repeated invocations on the same program) skip the
    probing pass entirely.  ``reduce``/``workers`` are forwarded to
    :func:`repro.verify.explore` when the exhaustive path is taken;
    note the budget check still compares against the *unreduced* leaf
    estimate, so enabling reductions only ever widens what counts as
    affordable in practice, never the other way around.

    Returns ``(result, mode)`` with ``mode in {"exhaustive", "sampled"}``.
    """
    est = estimate if estimate is not None else estimate_tree(
        program, probes=probes, seed=seed, max_steps=max_steps)
    if est.est_leaves <= budget_runs:
        res = explore(program, max_runs=budget_runs, max_steps=max_steps,
                      reduce=reduce, workers=workers)
        if res.complete:
            return res, "exhaustive"
        # estimate was optimistic; fall through to report what we have
        return res, "sampled"
    return sample_behaviours(program, samples=budget_runs, seed=seed,
                             max_steps=max_steps), "sampled"
