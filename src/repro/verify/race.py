"""Happens-before data-race detection over kernel traces.

Tasks annotate shared accesses by yielding
``Access(var, AccessKind.READ/WRITE)`` instead of a bare ``Pause``.  The
scheduler stamps every event with the task's vector clock, already merged
along all synchronization edges (lock release→acquire, send→deliver,
spawn, join).  Two annotated accesses to the same variable race iff

* they come from different tasks,
* at least one is a write, and
* their vector clocks are Lamport-concurrent (neither happened-before
  the other).

This is the textbook vector-clock detector (FastTrack without the
epoch optimization — trace sizes here are small).  Unlike the lockset
approach it reports no false positives for the given trace; like any
dynamic detector it only sees the accesses the trace performed, which is
why :func:`find_races_program` runs it across *explored* schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.effects import AccessKind
from ..core.trace import Trace, TraceEvent
from .explorer import Program, explore

__all__ = ["Race", "find_races", "find_races_program"]


@dataclass(frozen=True)
class Race:
    """A pair of unsynchronized conflicting accesses."""

    var: str
    first: TraceEvent
    second: TraceEvent

    def describe(self) -> str:
        return (f"race on {self.var!r}: "
                f"{self.first.task_name} {self.first.access_kind.value} @step {self.first.step} "
                f"|| {self.second.task_name} {self.second.access_kind.value} @step {self.second.step}")


def find_races(trace: Trace, max_races: int = 64) -> list[Race]:
    """All racing access pairs in one trace (bounded by ``max_races``)."""
    by_var: dict[str, list[TraceEvent]] = {}
    for event in trace.events:
        if event.access_var is not None and event.vclock is not None:
            by_var.setdefault(event.access_var, []).append(event)

    races: list[Race] = []
    for var, events in by_var.items():
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                if a.task_tid == b.task_tid:
                    continue
                if a.access_kind is AccessKind.READ and b.access_kind is AccessKind.READ:
                    continue
                if a.vclock.concurrent(b.vclock):
                    races.append(Race(var, a, b))
                    if len(races) >= max_races:
                        return races
    return races


def find_races_program(program: Program, *, max_runs: int = 2000,
                       **explore_kw: Any) -> Optional[Race]:
    """Hunt for a race across all (budgeted) schedules of a program.

    Returns the first race found, or None.  Because the detector is
    per-trace sound, any returned race is a real unsynchronized
    conflict in a feasible execution.
    """
    res = explore(program, max_runs=max_runs, **explore_kw)
    for trace in res.witnesses.values():
        races = find_races(trace, max_races=1)
        if races:
            return races[0]
    # also inspect sampled deadlock/failure traces — races often hide there
    for trace in (*res.deadlocks, *res.failures):
        races = find_races(trace, max_races=1)
        if races:
            return races[0]
    return None
