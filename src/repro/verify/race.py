"""Happens-before data-race detection over kernel traces.

Tasks annotate shared accesses by yielding
``Access(var, AccessKind.READ/WRITE)`` instead of a bare ``Pause``.  The
scheduler stamps every event with the task's vector clock, already merged
along all synchronization edges (lock release→acquire, send→deliver,
spawn, join).  Two annotated accesses to the same variable race iff

* they come from different tasks,
* at least one is a write, and
* their vector clocks are Lamport-concurrent (neither happened-before
  the other).

This is the textbook vector-clock detector (FastTrack without the
epoch optimization — trace sizes here are small).  Unlike the lockset
approach it reports no false positives for the given trace; like any
dynamic detector it only sees the accesses the trace performed, which is
why :func:`find_races_program` runs it across *explored* schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.effects import AccessKind
from ..core.trace import Trace, TraceEvent
from .explorer import Program, explore

__all__ = ["Race", "find_races", "find_races_program"]


@dataclass(frozen=True)
class Race:
    """A pair of unsynchronized conflicting accesses.

    ``first_locks``/``second_locks`` are the lock/monitor names each
    side held at its access (reconstructed from the event stream by
    :func:`repro.obs.monitors.trace_locksets`), so the report can say
    *what synchronization was missing*, not just which events conflict.
    """

    var: str
    first: TraceEvent
    second: TraceEvent
    first_locks: frozenset = frozenset()
    second_locks: frozenset = frozenset()

    @property
    def common_locks(self) -> frozenset:
        return self.first_locks & self.second_locks

    def missing_sync(self) -> str:
        """What synchronization the racing pair lacked."""
        if not self.first_locks and not self.second_locks:
            return "no locks held at either access"
        return (f"no common lock: {self.first.task_name} held "
                f"{sorted(self.first_locks) or 'none'}, "
                f"{self.second.task_name} held "
                f"{sorted(self.second_locks) or 'none'}")

    def describe(self) -> str:
        return (f"race on {self.var!r}: "
                f"{self.first.task_name} {self.first.access_kind.value} @step {self.first.step} "
                f"|| {self.second.task_name} {self.second.access_kind.value} @step {self.second.step} "
                f"[{self.missing_sync()}]")


def find_races(trace: Trace, max_races: int = 64) -> list[Race]:
    """All racing access pairs in one trace (bounded by ``max_races``)."""
    # lazy import: repro.obs.monitors imports nothing from verify, but
    # keeping it out of module scope avoids an import-time cycle via
    # the obs package's explain module
    from ..obs.monitors import trace_locksets

    by_var: dict[str, list[tuple[int, TraceEvent]]] = {}
    for idx, event in enumerate(trace.events):
        if event.access_var is not None and event.vclock is not None:
            by_var.setdefault(event.access_var, []).append((idx, event))

    locksets: Optional[dict] = None
    races: list[Race] = []
    for var, events in by_var.items():
        for i, (ia, a) in enumerate(events):
            for (ib, b) in events[i + 1:]:
                if a.task_tid == b.task_tid:
                    continue
                if a.access_kind is AccessKind.READ and b.access_kind is AccessKind.READ:
                    continue
                if a.vclock.concurrent(b.vclock):
                    if locksets is None:
                        locksets = trace_locksets(trace)
                    races.append(Race(
                        var, a, b,
                        first_locks=locksets.get(ia, frozenset()),
                        second_locks=locksets.get(ib, frozenset())))
                    if len(races) >= max_races:
                        return races
    return races


def find_races_program(program: Program, *, max_runs: int = 2000,
                       **explore_kw: Any) -> Optional[Race]:
    """Hunt for a race across all (budgeted) schedules of a program.

    Returns the first race found, or None.  Because the detector is
    per-trace sound, any returned race is a real unsynchronized
    conflict in a feasible execution.
    """
    res = explore(program, max_runs=max_runs, **explore_kw)
    for trace in res.witnesses.values():
        races = find_races(trace, max_races=1)
        if races:
            return races[0]
    # also inspect sampled deadlock/failure traces — races often hide there
    for trace in (*res.deadlocks, *res.failures):
        races = find_races(trace, max_races=1)
        if races:
            return races[0]
    return None
