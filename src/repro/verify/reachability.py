"""Reachability queries — the executable form of the paper's Test 1.

Each Test-1 question (Figures 6-7) has the shape:

    "Suppose <history> has happened.  Decide if <scenario> could happen
     immediately after.  Circle YES or NO."

Operationally that is an existential reachability question over the
program's schedule space: *does some execution embed the history events
followed by the scenario events?*  Programs log semantically meaningful
events with ``Emit`` (method entry/return, lock block, message
send/receive), the explorer enumerates all logs, and the query engine
searches for an embedding.

Verdicts:

* ``YES`` — a witness schedule exists (replayable evidence);
* ``NO`` — exploration was exhaustive and no embedding exists;
* ``UNKNOWN`` — budget exhausted without a witness (never happens for
  the paper's bridge instances, which explore completely).

A simulated student in :mod:`repro.misconceptions` answers the same
questions with the same engine but over a *mutated* program/semantics —
which is precisely the paper's model of a misconception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from .explorer import ExplorationResult, Program, explore

__all__ = ["Pattern", "matches", "embeds", "ScenarioQuestion", "Answer",
           "answer_question"]

#: A pattern is a literal value (equality) or a predicate over the event.
Pattern = Union[Any, Callable[[Any], bool]]


def matches(pattern: Pattern, event: Any) -> bool:
    """Structural match: callables are predicates, tuples match
    element-wise (so any component may itself be a predicate), anything
    else matches by equality."""
    if callable(pattern):
        return bool(pattern(event))
    if isinstance(pattern, tuple) and isinstance(event, tuple):
        return len(pattern) == len(event) and all(
            matches(p, e) for p, e in zip(pattern, event))
    return pattern == event


def embeds(log: Sequence[Any], history: Sequence[Pattern],
           scenario: Sequence[Pattern],
           forbidden: Sequence[Pattern] = (),
           forbidden_anywhere: Sequence[Pattern] = ()) -> bool:
    """Does ``log`` embed history ++ scenario as a subsequence, with no
    ``forbidden`` event between the end of the history embedding and the
    end of the scenario embedding, and no ``forbidden_anywhere`` event
    before the scenario completes?

    Full backtracking search over embeddings — logs here are short
    (tens of events), so exactness beats greediness.
    """
    all_patterns = list(history) + list(scenario)
    n_hist = len(history)

    def search(pat_idx: int, log_idx: int, cut: int) -> bool:
        if pat_idx == len(all_patterns):
            return True
        for i in range(log_idx, len(log)):
            event = log[i]
            # an anywhere-forbidden event kills the embedding even if it
            # would match the current pattern: it must not occur at all
            if any(matches(f, event) for f in forbidden_anywhere):
                return False
            is_match = matches(all_patterns[pat_idx], event)
            if not is_match:
                if pat_idx >= n_hist and any(matches(f, event)
                                             for f in forbidden):
                    return False
            else:
                new_cut = i + 1 if pat_idx == n_hist - 1 else cut
                if search(pat_idx + 1, i + 1, new_cut):
                    return True
                # also consider skipping this match, unless skipping it
                # violates a forbidden constraint
                if any(matches(f, event) for f in forbidden_anywhere):
                    return False
                if pat_idx >= n_hist and any(matches(f, event)
                                             for f in forbidden):
                    return False
        return False

    return search(0, 0, 0)


@dataclass(frozen=True)
class ScenarioQuestion:
    """One YES/NO item of a Test-1-style exam.

    Attributes
    ----------
    qid:
        Question label, e.g. ``"(m)"``.
    text:
        The natural-language prompt shown to (simulated) students.
    history:
        Event patterns that set the scene ("suppose ... has happened").
    scenario:
        Event patterns that must be reachable after the history.
    forbidden:
        Events that must *not* occur inside the scenario window — used
        for "X happens before Y" phrasings.
    forbidden_anywhere:
        Events that must not occur at any point from the start of the
        execution until the scenario completes — used for questions
        that pin down what has *not yet* happened in the history
        ("...and the bridge has not yet processed redCarA's message").
    expected:
        Ground-truth answer if externally known (used by tests; the
        engine recomputes it regardless).
    """

    qid: str
    text: str
    history: tuple = ()
    scenario: tuple = ()
    forbidden: tuple = ()
    forbidden_anywhere: tuple = ()
    expected: Optional[str] = None


@dataclass
class Answer:
    """Engine verdict for one question."""

    question: ScenarioQuestion
    verdict: str                      # "YES" | "NO" | "UNKNOWN"
    witness_schedule: Optional[list[int]] = None
    witness_log: Optional[tuple] = None
    runs: int = 0
    exhaustive: bool = True
    #: logs examined (for explanation rendering)
    considered: int = 0
    explanation: str = ""

    @property
    def yes(self) -> bool:
        return self.verdict == "YES"


def answer_question(program: Program, question: ScenarioQuestion,
                    *, exploration: Optional[ExplorationResult] = None,
                    max_runs: int = 20_000, **explore_kw: Any) -> Answer:
    """Answer one scenario question against a program.

    Pass a pre-computed ``exploration`` to amortize one exploration
    across a whole question sheet (the engine only re-matches logs).
    Extra keyword arguments (e.g. ``reduce="all"``, ``workers=4``) are
    forwarded to :func:`repro.verify.explore`; the reductions preserve
    the terminal set, so verdicts are unaffected — only the exploration
    cost changes.
    """
    res = exploration if exploration is not None else explore(
        program, max_runs=max_runs, **explore_kw)

    considered = 0
    for (out, _obs), witness in res.witnesses.items():
        considered += 1
        if embeds(out, question.history, question.scenario,
                  question.forbidden, question.forbidden_anywhere):
            return Answer(
                question=question, verdict="YES",
                witness_schedule=witness.schedule(), witness_log=out,
                runs=res.runs, exhaustive=res.complete, considered=considered,
                explanation=f"witness execution found after {considered} logs")
    verdict = "NO" if res.complete else "UNKNOWN"
    why = ("no execution embeds the scenario (exhaustive search of "
           f"{res.runs} schedules)") if res.complete else \
          f"no witness within budget ({res.runs} schedules) — inconclusive"
    return Answer(question=question, verdict=verdict, runs=res.runs,
                  exhaustive=res.complete, considered=considered,
                  explanation=why)
