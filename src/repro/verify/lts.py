"""Explicit-state model checking over guarded labeled transition systems.

The replay explorer (:mod:`repro.verify.explorer`) enumerates schedules
of generator programs — exact but exponential in trace length, because
generator frames cannot be hashed and so revisited states cannot be
merged.  For the paper's Test-1 questions over the single-lane bridge
(three cars, two methods each) the schedule tree is astronomically
larger than the *state* space, which is tiny.

:class:`LTS` therefore models such systems the classical way: a
hashable global state, guarded transition rules, and BFS over reachable
states.  Scenario questions ("could X happen after H?") become
reachability in the product of the LTS with the question's pattern
automaton — :func:`answer_question_lts` returns exact YES/NO verdicts
with witness event paths, in milliseconds.

The misconception engine reuses this directly: a misconception is a
rewrite of the rule set (e.g. FIFO-only delivery, lock span = method
span), and the mutated LTS answers the same questions differently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterator, Optional, Sequence

from .reachability import Pattern, ScenarioQuestion, matches

__all__ = ["Rule", "LTS", "LTSResult", "PathStep", "answer_question_lts",
           "LTSAnswer"]

State = Hashable


@dataclass(frozen=True)
class Rule:
    """One guarded transition rule.

    ``guard(state)`` says whether the rule is enabled; ``apply(state)``
    returns the successor (must be hashable); ``event(state)`` the
    observable label emitted (or None for silent steps).
    """

    name: str
    guard: Callable[[State], bool]
    apply: Callable[[State], State]
    event: Optional[Callable[[State], Any]] = None

    def fire(self, state: State) -> tuple[State, Any]:
        nxt = self.apply(state)
        label = self.event(state) if self.event is not None else None
        return nxt, label


@dataclass(frozen=True)
class PathStep:
    rule: str
    event: Any
    state: State


@dataclass
class LTSResult:
    """BFS summary: reachable states, deadlocks, event alphabet seen."""

    states: int = 0
    deadlocks: list[State] = field(default_factory=list)
    final_states: list[State] = field(default_factory=list)
    truncated: bool = False


class LTS:
    """A guarded transition system with a designated initial state.

    ``is_final(state)`` distinguishes graceful termination from
    deadlock: a state with no enabled rules is a deadlock unless final.
    """

    def __init__(self, initial: State, rules: Sequence[Rule],
                 is_final: Optional[Callable[[State], bool]] = None,
                 name: str = "lts"):
        self.initial = initial
        self.rules = list(rules)
        self.is_final = is_final or (lambda s: False)
        self.name = name

    # ------------------------------------------------------------------
    def enabled(self, state: State) -> list[Rule]:
        return [r for r in self.rules if r.guard(state)]

    def successors(self, state: State) -> Iterator[tuple[Rule, State, Any]]:
        for rule in self.enabled(state):
            nxt, label = rule.fire(state)
            yield rule, nxt, label

    # ------------------------------------------------------------------
    def explore(self, max_states: int = 1_000_000) -> LTSResult:
        """Full BFS; collects deadlocks and final states."""
        result = LTSResult()
        seen: set[State] = {self.initial}
        frontier: deque[State] = deque([self.initial])
        while frontier:
            if len(seen) > max_states:
                result.truncated = True
                break
            state = frontier.popleft()
            succ = list(self.successors(state))
            if not succ:
                if self.is_final(state):
                    result.final_states.append(state)
                else:
                    result.deadlocks.append(state)
                continue
            for _, nxt, _ in succ:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        result.states = len(seen)
        return result

    def find_path(self, accept: Callable[[State], bool],
                  max_states: int = 1_000_000) -> Optional[list[PathStep]]:
        """Shortest path (by transitions) to a state satisfying ``accept``."""
        if accept(self.initial):
            return []
        seen: set[State] = {self.initial}
        parent: dict[State, tuple[State, Rule, Any]] = {}
        frontier: deque[State] = deque([self.initial])
        while frontier and len(seen) <= max_states:
            state = frontier.popleft()
            for rule, nxt, label in self.successors(state):
                if nxt in seen:
                    continue
                seen.add(nxt)
                parent[nxt] = (state, rule, label)
                if accept(nxt):
                    return self._unwind(nxt, parent)
                frontier.append(nxt)
        return None

    @staticmethod
    def _unwind(state: State, parent: dict) -> list[PathStep]:
        path: list[PathStep] = []
        while state in parent:
            prev, rule, label = parent[state]
            path.append(PathStep(rule.name, label, state))
            state = prev
        path.reverse()
        return path

    # ------------------------------------------------------------------
    def check_invariant(self, invariant: Callable[[State], bool],
                        max_states: int = 1_000_000
                        ) -> Optional[list[PathStep]]:
        """None if the invariant holds everywhere reachable, else a
        shortest counterexample path."""
        return self.find_path(lambda s: not invariant(s),
                              max_states=max_states)

    def deadlock_trace(self, max_states: int = 1_000_000
                       ) -> Optional[list[PathStep]]:
        """A shortest path into a (non-final) deadlock, or None."""
        return self.find_path(
            lambda s: not self.enabled(s) and not self.is_final(s),
            max_states=max_states)


# ---------------------------------------------------------------------------
# scenario questions as product reachability
# ---------------------------------------------------------------------------

@dataclass
class LTSAnswer:
    """Exact verdict for a scenario question over an LTS."""

    question: ScenarioQuestion
    verdict: str                                # "YES" | "NO"
    witness: Optional[list[PathStep]] = None
    product_states: int = 0
    explanation: str = ""

    @property
    def yes(self) -> bool:
        return self.verdict == "YES"


def answer_question_lts(lts: LTS, question: ScenarioQuestion,
                        max_states: int = 2_000_000) -> LTSAnswer:
    """Answer "could <scenario> happen after <history>?" exactly.

    Product construction: track ``(lts_state, matched_count)`` where
    ``matched_count`` counts history+scenario patterns matched so far,
    in order.  Inside the scenario window (history fully matched), an
    event matching a ``forbidden`` pattern kills the branch unless that
    same event advances the match.  The scenario is reachable iff some
    product state has every pattern matched.
    """
    patterns: list[Pattern] = list(question.history) + list(question.scenario)
    n_hist = len(question.history)
    total = len(patterns)
    forbidden = list(question.forbidden)
    forbidden_anywhere = list(getattr(question, "forbidden_anywhere", ()))

    def advance(matched: int, label: Any) -> list[int]:
        """Possible successor match counters (branch dies → empty list).

        A label matching the current pattern may either advance the
        match or be skipped (some embeddings need the later occurrence)
        — unless skipping it would violate a forbidden constraint.
        A ``forbidden_anywhere`` event kills the branch even when it
        would advance the match: such an event must not occur at all,
        so a question whose scenario requires it is unsatisfiable.
        """
        if label is None:
            return [matched]
        if any(matches(f, label) for f in forbidden_anywhere):
            return []
        out: list[int] = []
        if matched < total and matches(patterns[matched], label):
            out.append(matched + 1)
        # the "skip" continuation: the label is treated as background
        if not (matched >= n_hist
                and any(matches(f, label) for f in forbidden)):
            out.append(matched)
        return out

    initial = (lts.initial, 0)
    if total == 0:
        return LTSAnswer(question, "YES", witness=[], product_states=1,
                         explanation="empty question")
    seen: set[tuple[State, int]] = {initial}
    parent: dict[tuple[State, int], tuple[tuple[State, int], Rule, Any]] = {}
    frontier: deque[tuple[State, int]] = deque([initial])
    accepted: Optional[tuple[State, int]] = None

    while frontier and len(seen) <= max_states and accepted is None:
        node = frontier.popleft()
        state, matched = node
        for rule, nxt, label in lts.successors(state):
            for new_matched in advance(matched, label):
                child = (nxt, new_matched)
                if child in seen:
                    continue
                seen.add(child)
                parent[child] = (node, rule, label)
                if new_matched == total:
                    accepted = child
                    break
                frontier.append(child)
            if accepted is not None:
                break

    if accepted is not None:
        # unwind the product path
        path: list[PathStep] = []
        node = accepted
        while node in parent:
            prev, rule, label = parent[node]
            path.append(PathStep(rule.name, label, node[0]))
            node = prev
        path.reverse()
        return LTSAnswer(question, "YES", witness=path,
                         product_states=len(seen),
                         explanation=f"witness path of {len(path)} steps")
    return LTSAnswer(question, "NO", product_states=len(seen),
                     explanation=f"unreachable over {len(seen)} product states")
