"""Table II — Test-1 performance, regenerated from a simulated cohort.

The paper's cells:

    group S (9):  SM 56.67 (1st)   MP 81.72 (2nd)   overall 138.39/200
    group D (7):  SM 76.14 (2nd)   MP 65.93 (1st)   overall 142.07/200
    all:          SM 65.19         MP 74.81
    sessions:     1st 60.71%  →  2nd 79.20%  (p = 0.005)

We assert the *shape*: who wins, roughly by how much, and whether the
session effect is significant — absolute points may drift with the
cohort sample but the orderings must hold.
"""

from repro.study import run_full_study

PAPER = {
    "S_sm": 56.67, "S_mp": 81.72, "D_sm": 76.14, "D_mp": 65.93,
    "all_sm": 65.19, "all_mp": 74.81,
    "session1": 60.71, "session2": 79.20,
}


def test_table2_reproduction(benchmark, study_2013):
    summary = benchmark(lambda: run_full_study(seed=2013).summary)

    # group sizes match the paper
    assert summary["S"]["n"] == 9
    assert summary["D"]["n"] == 7

    # shape: each group scores better on the section it took second
    assert summary["S"]["mp_mean"] > summary["S"]["sm_mean"]
    assert summary["D"]["sm_mean"] > summary["D"]["mp_mean"]

    # shape: message passing beats shared memory overall
    assert summary["all"]["mp_mean"] > summary["all"]["sm_mean"]

    # shape: session 2 beats session 1, significantly
    assert summary["all"]["session2_mean"] > summary["all"]["session1_mean"]
    assert summary["all"]["session_test"].pvalue < 0.05

    # magnitudes within a band of the paper's cells (±12 points)
    for key, cell in [("S_sm", summary["S"]["sm_mean"]),
                      ("S_mp", summary["S"]["mp_mean"]),
                      ("D_sm", summary["D"]["sm_mean"]),
                      ("D_mp", summary["D"]["mp_mean"]),
                      ("all_sm", summary["all"]["sm_mean"]),
                      ("all_mp", summary["all"]["mp_mean"]),
                      ("session1", summary["all"]["session1_mean"]),
                      ("session2", summary["all"]["session2_mean"])]:
        assert abs(cell - PAPER[key]) < 12.0, (key, cell, PAPER[key])


def test_table2_stable_across_cohorts(benchmark, study_2013):
    """Which orderings survive cohort resampling, and which don't.

    With n = 16 students the section gap (a few points in expectation)
    is within sampling noise, so MP > SM holds in *most* resampled
    cohorts but not all — exactly the reliability a replication of the
    paper's single-cohort study should expect.  The session-2 learning
    effect is much larger than the noise and must hold in every cohort.
    """
    trials = 3

    def sweep():
        mp_wins = session_wins = 0
        for seed in range(100, 100 + trials):
            summary = run_full_study(seed=seed).summary
            mp_wins += summary["all"]["mp_mean"] > summary["all"]["sm_mean"]
            session_wins += (summary["all"]["session2_mean"]
                             > summary["all"]["session1_mean"])
        return mp_wins, session_wins

    mp_wins, session_wins = benchmark(sweep)
    assert session_wins == trials           # robust effect
    assert mp_wins >= trials - 1            # majority-direction effect
