"""Cross-runtime performance benchmarks — the paper's comparison table.

Runs the full 6-problem × 3-runtime bench matrix via
:func:`repro.bench.run_bench` and writes ``BENCH_runtimes.json`` next
to this file: the regression baseline the CI ``bench-smoke`` job diffs
against (``repro bench --baseline``), and the numbers behind the
"compared for performance" discussion.

The matrix runs under :data:`BASE_WORKLOAD` rather than ``QUICK``:
enough operations per repetition that each cell measures steady-state
message throughput, not system spin-up (at ``ops=25`` an actor cell's
wall is mostly thread creation + teardown).  CI's ``bench-smoke``
passes the same workload flags so its throughput floors compare
like with like.

The acceptance bars are shape assertions plus generous non-regression
floors: shared CI machines jitter by integer factors, while a real
hot-path regression (accidental profiling in the ``None`` path, a lock
added to a mailbox pop) lands at an order of magnitude.
"""

import json
from pathlib import Path

import pytest

from repro.bench import Workload, make_baseline, run_bench
from repro.obs import Profiler

_RESULTS: dict = {}

#: the committed baseline's workload — mirrored by the CI bench-smoke
#: job's flags (``--workers 2 --ops 200 --warmup 1 --repetitions 3``)
BASE_WORKLOAD = Workload(workers=2, ops=200, warmup=1, repetitions=3)

#: the cluster bench's own workload — bigger still because the
#: distributed runtime amortizes per-message wire cost over pipelined
#: in-flight batches; tiny runs measure only connection warmup
CLUSTER_WORKLOAD = Workload(workers=4, ops=2000, warmup=1, repetitions=3)


@pytest.fixture(scope="module", autouse=True)
def write_bench_json():
    """Dump the regression baseline once the matrix has run."""
    yield
    if "result" in _RESULTS:
        result = _RESULTS["result"]
        if "cluster" in _RESULTS:
            result.cells.extend(_RESULTS["cluster"].cells)
        base = make_baseline(result)
        # extra keys ride along; compare_to_baseline only reads
        # "cells"/"tolerance"
        base["profiling_overhead"] = _RESULTS.get("profiling-overhead", {})
        base["workload"] = {
            "workers": BASE_WORKLOAD.workers,
            "ops": BASE_WORKLOAD.ops,
            "warmup": BASE_WORKLOAD.warmup,
            "repetitions": BASE_WORKLOAD.repetitions,
        }
        base["cluster_workload"] = {
            "workers": CLUSTER_WORKLOAD.workers,
            "ops": CLUSTER_WORKLOAD.ops,
            "repetitions": CLUSTER_WORKLOAD.repetitions,
        }
        out = Path(__file__).parent / "BENCH_runtimes.json"
        out.write_text(json.dumps(base, indent=2, sort_keys=True) + "\n")


def test_bench_full_runtime_matrix(benchmark):
    result = benchmark.pedantic(lambda: run_bench(workload=BASE_WORKLOAD),
                                rounds=1, iterations=1)
    _RESULTS["result"] = result
    assert len(result.cells) == 18           # 6 problems × 3 runtimes
    for cell in result.cells:
        assert cell["throughput_ops_per_s"] > 0, cell
        assert cell["wall_us"]["count"] == BASE_WORKLOAD.repetitions
        assert cell["wall_us"]["p50"] <= cell["wall_us"]["p95"] \
            <= cell["wall_us"]["p99"]
        assert cell["profile"]["counters"], cell["problem"]


def test_bench_actors_within_3x_of_coroutines():
    """The work-stealing dispatcher's acceptance bar: preemptive actors
    pay real threads, locks, and cross-thread handoffs that cooperative
    coroutines don't, but the hot path (lock-free enqueue, batched
    drains, worker-local LIFO scheduling) must keep that tax under 3×
    on the message-passing cells."""
    if "result" in _RESULTS:           # fresh same-machine numbers
        cells = {f"{c['problem']}.{c['runtime']}": c["throughput_ops_per_s"]
                 for c in _RESULTS["result"].cells}
    else:                              # standalone run: checked-in numbers
        baseline = json.loads(
            (Path(__file__).parent / "BENCH_runtimes.json").read_text())
        cells = {k: v["throughput_ops_per_s"]
                 for k, v in baseline["cells"].items()}
    for problem in ("pingpong", "sum_workers"):
        actors = cells[f"{problem}.actors"]
        coroutines = cells[f"{problem}.coroutines"]
        assert actors * 3 >= coroutines, (
            f"{problem}.actors {actors:,.0f} ops/s is more than 3x behind "
            f"{problem}.coroutines {coroutines:,.0f} ops/s")


@pytest.mark.cluster
def test_bench_cluster_matrix(benchmark):
    """The distributed cells: two socket-transport topologies (driver +
    worker subprocess over TCP) plus the loopback topology exercising
    the same-process fast path.  Gates: the bridge round trip stays
    under 10ms p95, every socket cell actually moved frames, and the
    fast path both fires and out-runs the wire."""
    from repro.cluster.bench import run_cluster_bench

    result = benchmark.pedantic(
        lambda: run_cluster_bench(workload=CLUSTER_WORKLOAD),
        rounds=1, iterations=1)
    _RESULTS["cluster"] = result
    cells = {f"{c['problem']}.{c['runtime']}": c for c in result.cells}
    assert set(cells) == {"pingpong.cluster", "pingpong.cluster-local",
                          "bridge.cluster"}
    for cell in result.cells:
        assert cell["throughput_ops_per_s"] > 0, cell
        assert cell["wall_us"]["count"] == CLUSTER_WORKLOAD.repetitions

    # socket cells: merged cross-process profile shows real deliveries
    for key in ("pingpong.cluster", "bridge.cluster"):
        counters = cells[key]["profile"]["counters"]
        assert counters.get("cluster.delivered", 0) > 0, key

    # bridge round trips (monitor-guarded resource across the wire, with
    # car/bridge traffic colocated via BridgeWorld) stay interactive
    assert cells["bridge.cluster"]["wall_us"]["p95"] < 10_000, \
        cells["bridge.cluster"]["wall_us"]

    # the zero-serialization fast path fired for every same-node tell...
    local = cells["pingpong.cluster-local"]
    counters = local["profile"]["counters"]
    assert counters.get("cluster.local_fastpath", 0) > 0, counters
    assert counters.get("cluster.sent", 0) == 0, counters
    # ...and colocated bridge traffic rides it too
    bridge_counters = cells["bridge.cluster"]["profile"]["counters"]
    assert bridge_counters.get("cluster.local_fastpath", 0) > 0, \
        bridge_counters
    # skipping serializer + framing + acks must show up as throughput
    assert local["throughput_ops_per_s"] > \
        cells["pingpong.cluster"]["throughput_ops_per_s"], (
            local["throughput_ops_per_s"],
            cells["pingpong.cluster"]["throughput_ops_per_s"])


def test_bench_profiling_overhead_stays_bounded(benchmark):
    """The profiled pingpong exchange must stay within a constant
    factor of the un-profiled one — the hooks are counter bumps and
    clock reads, not serialization points."""
    from repro.problems.pingpong import run_coroutine_pingpong

    import time

    def timed(profiler):
        t0 = time.perf_counter()
        run_coroutine_pingpong(rounds=2_000, profiler=profiler)
        return time.perf_counter() - t0

    timed(None)                              # warm caches
    off = benchmark.pedantic(lambda: min(timed(None) for _ in range(5)),
                             rounds=1, iterations=1)
    on = min(timed(Profiler()) for _ in range(5))
    _RESULTS["profiling-overhead"] = {
        "pingpong-coroutines-2000": {
            "unprofiled_s": round(off, 4),
            "profiled_s": round(on, 4),
            "overhead_factor": round(on / off, 2),
        }
    }
    assert on <= off * 10, (off, on)
