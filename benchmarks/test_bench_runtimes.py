"""Cross-runtime performance benchmarks — the paper's comparison table.

Runs the full 6-problem × 3-runtime bench matrix via
:func:`repro.bench.run_bench` under the quick workload and writes
``BENCH_runtimes.json`` next to this file: the regression baseline the
CI ``bench-smoke`` job diffs against (``repro bench --baseline``), and
the numbers behind the "compared for performance" discussion.

The acceptance bars are shape assertions plus generous non-regression
floors: shared CI machines jitter by integer factors, while a real
hot-path regression (accidental profiling in the ``None`` path, a lock
added to a mailbox pop) lands at an order of magnitude.
"""

import json
from pathlib import Path

import pytest

from repro.bench import QUICK, Workload, make_baseline, run_bench
from repro.obs import Profiler

_RESULTS: dict = {}

#: the cluster bench's own workload — bigger than QUICK because the
#: distributed runtime amortizes per-message wire cost over pipelined
#: in-flight batches; tiny runs measure only connection warmup
CLUSTER_WORKLOAD = Workload(workers=4, ops=2000, warmup=1, repetitions=3)


@pytest.fixture(scope="module", autouse=True)
def write_bench_json():
    """Dump the regression baseline once the matrix has run."""
    yield
    if "result" in _RESULTS:
        result = _RESULTS["result"]
        if "cluster" in _RESULTS:
            result.cells.extend(_RESULTS["cluster"].cells)
        base = make_baseline(result)
        # extra keys ride along; compare_to_baseline only reads
        # "cells"/"tolerance"
        base["profiling_overhead"] = _RESULTS.get("profiling-overhead", {})
        base["cluster_workload"] = {
            "workers": CLUSTER_WORKLOAD.workers,
            "ops": CLUSTER_WORKLOAD.ops,
            "repetitions": CLUSTER_WORKLOAD.repetitions,
        }
        out = Path(__file__).parent / "BENCH_runtimes.json"
        out.write_text(json.dumps(base, indent=2, sort_keys=True) + "\n")


def test_bench_full_runtime_matrix(benchmark):
    result = benchmark.pedantic(lambda: run_bench(workload=QUICK),
                                rounds=1, iterations=1)
    _RESULTS["result"] = result
    assert len(result.cells) == 18           # 6 problems × 3 runtimes
    for cell in result.cells:
        assert cell["throughput_ops_per_s"] > 0, cell
        assert cell["wall_us"]["count"] == QUICK.repetitions
        assert cell["wall_us"]["p50"] <= cell["wall_us"]["p95"] \
            <= cell["wall_us"]["p99"]
        assert cell["profile"]["counters"], cell["problem"]


@pytest.mark.cluster
def test_bench_cluster_beats_single_process_actors(benchmark):
    """The distributed runtime's reason to exist, measured: a two-node
    pingpong (driver + worker subprocess over TCP) must out-run the
    single-process actor runtime despite paying for serialization,
    framing, acks, and credit flow — because it gets a second
    interpreter, i.e. a second core the GIL can't serialize away."""
    from repro.cluster.bench import run_cluster_bench

    result = benchmark.pedantic(
        lambda: run_cluster_bench(workload=CLUSTER_WORKLOAD),
        rounds=1, iterations=1)
    _RESULTS["cluster"] = result
    cells = {c["problem"]: c for c in result.cells}
    assert set(cells) == {"pingpong", "bridge"}
    for cell in result.cells:
        assert cell["runtime"] == "cluster"
        assert cell["throughput_ops_per_s"] > 0, cell
        assert cell["wall_us"]["count"] == CLUSTER_WORKLOAD.repetitions
        # merged cross-process profile: both nodes contributed counters
        assert cell["profile"]["counters"].get("cluster.delivered", 0) > 0

    if "result" in _RESULTS:           # fresh same-machine number
        actors = next(c["throughput_ops_per_s"]
                      for c in _RESULTS["result"].cells
                      if c["problem"] == "pingpong"
                      and c["runtime"] == "actors")
    else:                              # standalone run: checked-in number
        baseline = json.loads(
            (Path(__file__).parent / "BENCH_runtimes.json").read_text())
        actors = baseline["cells"]["pingpong.actors"]["throughput_ops_per_s"]
    cluster = cells["pingpong"]["throughput_ops_per_s"]
    assert cluster > actors, (
        f"cluster pingpong {cluster:,.0f} ops/s did not beat "
        f"single-process actors {actors:,.0f} ops/s")


def test_bench_profiling_overhead_stays_bounded(benchmark):
    """The profiled pingpong exchange must stay within a constant
    factor of the un-profiled one — the hooks are counter bumps and
    clock reads, not serialization points."""
    from repro.problems.pingpong import run_coroutine_pingpong

    import time

    def timed(profiler):
        t0 = time.perf_counter()
        run_coroutine_pingpong(rounds=2_000, profiler=profiler)
        return time.perf_counter() - t0

    timed(None)                              # warm caches
    off = benchmark.pedantic(lambda: min(timed(None) for _ in range(5)),
                             rounds=1, iterations=1)
    on = min(timed(Profiler()) for _ in range(5))
    _RESULTS["profiling-overhead"] = {
        "pingpong-coroutines-2000": {
            "unprofiled_s": round(off, 4),
            "profiled_s": round(on, 4),
            "overhead_factor": round(on / off, 2),
        }
    }
    assert on <= off * 10, (off, on)
