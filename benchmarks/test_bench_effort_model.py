"""Test 2 — cost/benefit of implementing the same problem three ways.

The paper's Test 2 has students implement the single-lane bridge with
Java threads, Scala Actors and Python coroutines and compares the
costs.  Our effort model measures the reproduction's own three
implementations; the asserted shape is the course's qualitative
finding: cooperative code is the leanest, actor code trades locks for
protocol (more code, fewer synchronization points per line), threads
carry both locking and condition logic.
"""

from repro.study import bridge_effort, problem_effort


def test_bridge_effort_shape(benchmark):
    rows = benchmark(bridge_effort)
    by_model = {r.model: r for r in rows}

    # coroutines: the leanest solution (no locks, no protocol)
    assert by_model["coroutines"].loc <= by_model["threads"].loc
    assert by_model["coroutines"].loc < by_model["actors"].loc

    # actors: most code (explicit message protocol) ...
    assert by_model["actors"].loc > by_model["threads"].loc
    # ... but not proportionally more sync points
    assert by_model["actors"].sync_density <= \
        by_model["threads"].sync_density


def test_effort_across_problems(benchmark):
    def sweep():
        return {problem: problem_effort(problem)
                for problem in ("bridge", "barber", "party", "buffer")}
    table = benchmark(sweep)
    for problem, rows in table.items():
        by_model = {r.model: r for r in rows}
        assert set(by_model) == {"threads", "actors", "coroutines"}
        # actor solutions are consistently the longest: protocol costs code
        assert by_model["actors"].loc >= by_model["coroutines"].loc, problem


def test_all_measurements_nonempty(benchmark):
    rows = benchmark(lambda: problem_effort("philosophers"))
    for metrics in rows:
        assert metrics.loc > 5
        assert metrics.sync_ops > 0
