"""Course-artifact benchmarks beyond the numbered tables/figures:

* the week-3 state-diagram transformations (§IV.B) — generated monitor
  and message-passing code must behave like the specification;
* the §IV.C bug-study homework — every gallery bug manifests under
  exploration and disappears in the fix;
* Test 2 (§V) — the grading harness over the reference submission;
* the pair-programming phase (§V) — the cited no-challenge-difference
  prediction.
"""

from repro.core import RandomPolicy
from repro.pseudocode import compile_program
from repro.problems.bug_gallery import check_bug, gallery
from repro.study import (grade_submission, reference_submission,
                         run_pair_phase, sample_cohort)
from repro.uml import (bridge_state_machine, simulate,
                       to_monitor_pseudocode)


def test_state_machine_transformation(benchmark):
    machine = bridge_state_machine()
    source = to_monitor_pseudocode(machine) + """
PARA
  redEnter()
  redExit()
  blueEnter()
  blueExit()
ENDPARA
PRINT redCount + blueCount
"""
    runtime = compile_program(source)

    def run_stress():
        outs = set()
        for seed in range(10):
            result = runtime.run(RandomPolicy(seed))
            outs.add(result.output_text().strip())
        return outs

    outs = benchmark(run_stress)
    reference = simulate(machine, ["redEnter", "redExit", "blueEnter",
                                   "blueExit"])
    assert outs == {str(sum(reference.values()))}


def test_bug_gallery_sweep(benchmark):
    def sweep():
        return {spec.bug_id: check_bug(spec, max_runs=20_000)
                for spec in gallery()}
    reports = benchmark(sweep)
    for bug_id, report in reports.items():
        assert report["buggy_manifests"], bug_id
        assert not report["fixed_manifests"], bug_id


def test_test2_grading(benchmark):
    grade = benchmark(lambda: grade_submission(reference_submission(),
                                               crossings=2, runs=2))
    assert grade.total == 100.0


def test_pair_programming_phase(benchmark):
    members = sample_cohort(16, seed=2013)
    report = benchmark(lambda: run_pair_phase(members, seed=77))
    assert not report.challenge.significant       # the paper's prediction
    assert len(report.outcomes) == 16
