"""Model performance — the course's "investigate the efficiency of
these implementations" exercise (§I), run on our three runtimes.

GIL caveat (DESIGN.md §6, banded in the reproduction prompt): CPython
serializes bytecode, so the *threads* rows measure synchronization and
scheduling overhead, not parallel speedup — which is exactly what the
comparison below exposes: cooperative coroutines beat threads and
actors on pure coordination workloads because they pay no kernel
context switches or lock contention.
"""

import pytest

from repro.problems import bounded_buffer
from repro.problems.thread_pool_arith import fib, run_arith_lab

ITEMS = 400


def test_buffer_throughput_threads(benchmark):
    result = benchmark(lambda: bounded_buffer.run_threads_buffer(
        capacity=32, producers=2, consumers=2, items_each=ITEMS // 2))
    assert len(result) == ITEMS


def test_buffer_throughput_actors(benchmark):
    result = benchmark(lambda: bounded_buffer.run_actor_buffer(
        capacity=32, producers=2, consumers=2, items_each=ITEMS // 2))
    assert len(result) == ITEMS


def test_buffer_throughput_coroutines(benchmark):
    result = benchmark(lambda: bounded_buffer.run_coroutine_buffer(
        capacity=32, producers=2, consumers=2, items_each=ITEMS // 2))
    assert len(result) == ITEMS


def test_buffer_throughput_asyncio(benchmark):
    """The same cooperative tasks on asyncio's production event loop."""
    import asyncio

    from repro.coroutines import CoChannel, gather_generators

    def run():
        chan = CoChannel(capacity=32)
        out = []

        def producer(pid):
            for k in range(ITEMS // 2):
                yield from chan.put((pid, k))

        def consumer():
            for _ in range(ITEMS // 2):
                out.append((yield from chan.get()))
        asyncio.run(gather_generators(
            lambda: producer(0), lambda: producer(1),
            consumer, consumer))
        return out

    assert len(benchmark(run)) == ITEMS


@pytest.mark.parametrize("workers", [1, 4], ids=["pool1", "pool4"])
def test_cpu_bound_pool_scaling(benchmark, workers):
    """The week-1 arithmetic lab: under the GIL, adding workers to a
    CPU-bound pure-Python pool does NOT speed it up — the number the
    course has students explain."""
    from repro.threads import ThreadPool

    def run():
        with ThreadPool(workers) as pool:
            futures = [pool.submit(fib, 1500) for _ in range(16)]
            return sum(f.result() % 997 for f in futures)
    assert benchmark(run) >= 0


def test_arith_lab_gil_shape(benchmark):
    """4 workers must NOT be dramatically faster than 1 on CPU-bound
    work (allowing generous noise); checksum identical."""
    rows = benchmark(lambda: run_arith_lab(tasks=16, workload=1200,
                                           pool_sizes=(1, 4)))
    t1 = next(r for r in rows if r["workers"] == 1)
    t4 = next(r for r in rows if r["workers"] == 4)
    assert t4["checksum"] == t1["checksum"]
    assert t4["elapsed_s"] > t1["elapsed_s"] * 0.4   # no real speedup


def test_pingpong_latency_actors_vs_coroutines(benchmark):
    """Message round-trip cost, cooperative scheduler."""
    from repro.coroutines import CoChannel, CoScheduler

    def run():
        ping, pong = CoChannel(1), CoChannel(1)

        def player_a():
            for i in range(200):
                yield from ping.put(i)
                yield from pong.get()

        def player_b():
            for _ in range(200):
                value = yield from ping.get()
                yield from pong.put(value)
        sched = CoScheduler()
        sched.spawn(player_a)
        sched.spawn(player_b)
        sched.run()
        return sched.steps
    assert benchmark(run) > 400
