"""Ablations of the design decisions DESIGN.md §5 calls out.

1. statement-boundary elision (the interpreter's partial-order
   reduction): schedule-space size with vs without;
2. mailbox delivery policy: which exam answers flip between the
   paper's ARBITRARY semantics, per-sender FIFO, and the M5 world;
3. U1 capacity threshold: the score knee as working capacity shrinks;
4. matched vs random grouping: prior-score balance;
5. adaptive exploration: reusing a precomputed tree estimate, and the
   explorer reductions' effect on the exhaustive path.
"""

import random

import pytest

from repro.misconceptions import SimulatedStudent
from repro.problems.single_lane_bridge import MPFlags, mp_bridge_lts
from repro.study import (matched_split, question_bank, sample_cohort,
                         split_balance)
from repro.verify import answer_question_lts, explore


# ---------------------------------------------------------------------------
# 1. boundary elision (the interpreter's POR)
# ---------------------------------------------------------------------------

FIG4A = """
x = 10
DEFINE changeX(diff)
  EXC_ACC
    x = x + diff
  END_EXC_ACC
ENDDEF
PARA
  changeX(1)
  changeX(-2)
ENDPARA
PRINTLN x
"""


def _explore_fig4a(elide: bool):
    from repro.pseudocode import compile_program
    runtime = compile_program(FIG4A)
    if not elide:
        # force a boundary before every statement (disable the reduction)
        original = runtime._needs_boundary
        runtime._needs_boundary = lambda stmt: True
    return explore(runtime.make_program(), max_runs=200_000)


def test_ablation_boundary_elision(benchmark):
    reduced = benchmark(lambda: _explore_fig4a(elide=True))
    full = _explore_fig4a(elide=False)
    # identical verdicts ...
    assert reduced.output_strings() == full.output_strings() == {"9\n"}
    assert reduced.complete and full.complete
    # ... at a fraction of the cost (paper figure: ~36x here)
    assert full.runs / reduced.runs > 5, (full.runs, reduced.runs)


# ---------------------------------------------------------------------------
# 2. delivery-policy ablation
# ---------------------------------------------------------------------------

def test_ablation_delivery_policy(benchmark):
    from repro.verify import ScenarioQuestion
    A, B = "redCarA", "redCarB"
    question = ScenarioQuestion(
        qid="overtake", text="",
        history=((A, "send", "redEnter"), (B, "send", "redEnter")),
        scenario=(("bridge", "handle", B, "redEnter"),),
        forbidden_anywhere=(("bridge", "handle", A, "redEnter"),))

    def verdicts():
        return {policy: answer_question_lts(
            mp_bridge_lts(flags=MPFlags(delivery=policy)), question).verdict
            for policy in ("arbitrary", "per-sender", "fifo")}

    result = benchmark(verdicts)
    # different senders may overtake under arbitrary AND per-sender
    # (the Erlang guarantee is per-sender only); never under global FIFO
    assert result == {"arbitrary": "YES", "per-sender": "YES",
                      "fifo": "NO"}


def test_ablation_fifo_world_is_degenerate(benchmark):
    """The M5 world is not just stricter — it deadlocks (head-of-line
    blocking at the bridge), evidence that the misconception describes
    an unimplementable semantics for this protocol."""
    correct = benchmark(lambda: mp_bridge_lts().explore())
    fifo = mp_bridge_lts(flags=MPFlags(delivery="fifo")).explore()
    assert not correct.deadlocks
    assert fifo.deadlocks


# ---------------------------------------------------------------------------
# 3. U1 capacity knee
# ---------------------------------------------------------------------------

def test_ablation_capacity_knee(benchmark):
    items = [i for i in question_bank() if i.section == "sm"]

    def score_at(capacity: int) -> float:
        scores = []
        for seed in range(8):
            student = SimulatedStudent(f"u1-{seed}", frozenset({"S8"}),
                                       skill=1.0, capacity=capacity,
                                       seed=seed)
            answers = student.answer_section(items)
            scores.append(100 * sum(a.correct for a in answers)
                          / len(answers))
        return sum(scores) / len(scores)

    curve = benchmark(lambda: {c: score_at(c)
                               for c in (50, 400, 2000, 10**6)})
    # the knee: a huge capacity answers everything right; a tiny one
    # degrades measurably
    assert curve[10**6] == 100.0
    assert curve[50] < curve[10**6]
    assert curve[50] <= curve[400] + 1e-9


# ---------------------------------------------------------------------------
# 4. matched vs random grouping
# ---------------------------------------------------------------------------

def test_ablation_adaptive_estimate_reuse(benchmark):
    """`explore_adaptive` with a precomputed `TreeEstimate` skips the
    probing pass; a deliberately huge estimate forces the sampling mode
    without ever probing or exploring exhaustively."""
    from repro.problems.bounded_buffer import buffer_program
    from repro.verify import TreeEstimate, estimate_tree, explore_adaptive

    program = buffer_program(capacity=1, producers=1, consumers=1,
                             items_each=1)
    est = estimate_tree(program, probes=4)

    result, mode = benchmark(lambda: explore_adaptive(
        program, budget_runs=2_000, estimate=est))
    assert mode == "exhaustive" and result.complete

    # reductions thread through the exhaustive path unchanged
    reduced, mode_r = explore_adaptive(program, budget_runs=2_000,
                                       estimate=est, reduce="all")
    assert mode_r == "exhaustive"
    assert reduced.output_strings() == result.output_strings()
    assert reduced.decisions < result.decisions

    # a pathological precomputed estimate is trusted, not re-probed
    huge = TreeEstimate(probe_runs=0, mean_depth=10.0, mean_fanout=10.0,
                        max_fanout=10, est_leaves=1e9)
    sampled, mode_s = explore_adaptive(program, budget_runs=50,
                                       estimate=huge)
    assert mode_s == "sampled" and not sampled.complete


def test_ablation_matched_vs_random_grouping(benchmark):
    def gaps():
        matched, randomized = [], []
        for seed in range(15):
            members = sample_cohort(16, seed=2013)
            a, b = matched_split(members, sizes=(9, 7), seed=seed)
            matched.append(split_balance(a, b)["gap"])
            members = sample_cohort(16, seed=2013)
            rng = random.Random(seed)
            shuffled = list(members)
            rng.shuffle(shuffled)
            randomized.append(
                split_balance(shuffled[:9], shuffled[9:])["gap"])
        return (sum(matched) / len(matched),
                sum(randomized) / len(randomized))

    matched_mean, random_mean = benchmark(gaps)
    assert matched_mean < random_mean
