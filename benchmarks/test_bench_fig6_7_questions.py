"""Figures 6-7 — the Test-1 sample questions, answered exactly.

Regenerates both sample questions over the bridge models and checks the
verdicts, plus the misconception flips the paper's Table III implies
for them; the benchmark measures the product-automaton model checking.
"""

from repro.problems.single_lane_bridge import (MPFlags, SMFlags,
                                               mp_bridge_lts, sm_bridge_lts)
from repro.verify import ScenarioQuestion, answer_question_lts

A, B, BL = "redCarA", "redCarB", "blueCarA"

FIG6_M = ScenarioQuestion(
    qid="fig6(m)",
    text="redCarB returns from redEnter, then calls redExit and blocks "
         "on the EXC_ACC marker",
    history=((A, "call", "redEnter"), (B, "call", "redEnter")),
    scenario=((B, "return", "redEnter"), (B, "call", "redExit"),
              (B, "acquire", "redExit")),
    forbidden=((A, "return", "redEnter"),))

FIG7_M = ScenarioQuestion(
    qid="fig7(m)",
    text="redCarB receives succeedEnter, sends redExit, receives "
         "MESSAGE.succeedExit(2)",
    history=((A, "send", "redEnter"), (B, "send", "redEnter")),
    scenario=((B, "recv", "succeedEnter"), (B, "send", "redExit"),
              (B, "recv", ("succeedExit", 2))))


def test_fig6_item_m_shared_memory(benchmark):
    lts = sm_bridge_lts()
    answer = benchmark(lambda: answer_question_lts(lts, FIG6_M))
    assert answer.verdict == "YES"
    assert answer.witness is not None


def test_fig6_s7_student_disagrees(benchmark):
    """Under S7 ('lock held until method return') redCarB cannot even
    return from redEnter while redCarA sits inside the call."""
    question = ScenarioQuestion(
        qid="fig6-s7",
        text="B returns from redEnter while A holds it and never waits",
        history=((A, "acquire", "redEnter"), (B, "call", "redEnter")),
        scenario=((B, "return", "redEnter"),),
        forbidden_anywhere=((A, "return", "redEnter"), (A, "wait")))
    correct = answer_question_lts(sm_bridge_lts(), question)
    mutated_lts = sm_bridge_lts(flags=SMFlags(lock_span_method=True))
    student = benchmark(lambda: answer_question_lts(mutated_lts, question))
    assert correct.verdict == "YES"
    assert student.verdict == "NO"


def test_fig7_item_m_message_passing(benchmark):
    lts = mp_bridge_lts()
    answer = benchmark(lambda: answer_question_lts(lts, FIG7_M))
    assert answer.verdict == "YES"


def test_fig7_m5_student_disagrees(benchmark):
    """Table III scenario 1 (different senders, same receiver): the M5
    student's FIFO world forbids redCarB's message overtaking
    redCarA's."""
    question = ScenarioQuestion(
        qid="fig7-m5", text="B handled before A though A sent first",
        history=((A, "send", "redEnter"), (B, "send", "redEnter")),
        scenario=(("bridge", "handle", B, "redEnter"),),
        forbidden_anywhere=(("bridge", "handle", A, "redEnter"),))
    fifo_lts = mp_bridge_lts(flags=MPFlags(delivery="fifo"))
    student = benchmark(lambda: answer_question_lts(fifo_lts, question))
    assert answer_question_lts(mp_bridge_lts(), question).verdict == "YES"
    assert student.verdict == "NO"


def test_fig7_scenario3_same_sender_different_receivers(benchmark):
    """Table III scenario 3: acknowledgements from the same sender (the
    bridge) to different receivers may arrive out of send order."""
    question = ScenarioQuestion(
        qid="fig7-sc3", text="B's ack overtakes A's earlier ack",
        history=(("bridge", "handle", A, "redEnter"),
                 ("bridge", "handle", B, "redEnter")),
        scenario=((B, "recv", "succeedEnter"),),
        forbidden_anywhere=((A, "recv", "succeedEnter"),))
    lts = mp_bridge_lts()
    answer = benchmark(lambda: answer_question_lts(lts, question))
    assert answer.verdict == "YES"
    fifo = mp_bridge_lts(flags=MPFlags(delivery="fifo"))
    assert answer_question_lts(fifo, question).verdict == "NO"
