"""Kernel micro-benchmarks — the substrate's own cost profile.

Not a paper table; included because every paper number above is
computed *through* this kernel, so its throughput bounds what the
exhaustive checks can afford (the guides' rule: no optimization claims
without measurement).  Asserted shapes: scheduling is strictly
replayable, and the explorer's cost scales with schedules × depth.
"""

from repro.core import (Acquire, Emit, Mailbox, Pause, RandomPolicy,
                        Receive, Release, Scheduler, Send, SimLock)
from repro.verify import explore


def test_scheduler_step_throughput(benchmark):
    """Raw steps/second: one task, many pauses."""
    def run():
        sched = Scheduler()

        def spinner():
            for _ in range(5_000):
                yield Pause()
        sched.spawn(spinner)
        return len(sched.run())
    steps = benchmark(run)
    assert steps == 5_001


def test_lock_handoff_throughput(benchmark):
    """Contended acquire/release ping-pong between two tasks."""
    def run():
        sched = Scheduler()
        lock = SimLock("L")

        def worker(tag):
            for _ in range(1_000):
                yield Acquire(lock)
                yield Release(lock)
        sched.spawn(worker, "a")
        sched.spawn(worker, "b")
        return len(sched.run())
    assert benchmark(run) > 4_000


def test_message_throughput(benchmark):
    """Send/receive round trips through a kernel mailbox."""
    def run():
        sched = Scheduler(RandomPolicy(1))
        box = Mailbox("box")

        def producer():
            for i in range(1_000):
                yield Send(box, i)

        def consumer():
            for _ in range(1_000):
                yield Receive(box)
        sched.spawn(producer)
        sched.spawn(consumer)
        return len(sched.run())
    assert benchmark(run) > 2_000


def test_exploration_cost_scales_with_leaves(benchmark):
    """explore() on a 2-task emitter: cost ∝ schedules; exactness held."""
    def program(sched):
        def t(tag):
            for k in range(2):
                yield Emit((tag, k))
        sched.spawn(t, "a")
        sched.spawn(t, "b")

    res = benchmark(lambda: explore(program))
    assert res.complete
    assert len(res.output_strings()) == 6   # C(4,2) orders
