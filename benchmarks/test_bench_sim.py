"""Simulation-harness benchmarks — schedules/sec and reduction ratio.

Three measurements, written to ``BENCH_sim.json`` next to this file so
the numbers can be compared across PRs (same gating pattern as
``BENCH_explorer.json``):

* ``tiny_complete`` — a minimal 2-node world whose schedule space the
  DFS enumerates to completion: the end-to-end cost of total coverage;
* ``eviction_reduction`` — a bounded exploration of the eviction
  scenario naively vs with the fingerprint reduction: the reduction
  ratio (runs cut short because they reconverged to an
  already-expanded world state) is the headline number;
* ``seeded_run`` — one seeded random schedule of the 3-node
  crash/rejoin world: the `repro sim run` hot path.

Every measurement also asserts the determinism contract (two explores
⇒ identical runs/decisions/terminals) and that fixed code raises no
hazards — a perf tracker that also guards the monitors' signal.
"""

import json
import time
from pathlib import Path

import pytest

from repro.sim import SimWorld, explore_world, run_world
from repro.sim.scenarios import SCENARIOS, Sink
from repro.sim.world import sim_config

_RESULTS: dict = {}


def _timed_explore(factory, **kw):
    t0 = time.perf_counter()
    res = explore_world(factory, **kw)
    return res, time.perf_counter() - t0


def _record(name: str, label: str, res, seconds: float) -> None:
    _RESULTS.setdefault(name, {})[label] = {
        "runs": res.runs,
        "decisions": res.decisions,
        "pruned_runs": res.pruned_runs,
        "complete": res.complete,
        "terminals": len(res.terminals),
        "schedules_per_sec": round(res.runs / seconds, 1)
        if seconds else 0.0,
        "reduction_ratio": round(res.pruned_runs / res.runs, 4)
        if res.runs else 0.0,
        "wall_seconds": round(seconds, 4),
        "stats": res.stats.as_dict(),
    }


@pytest.fixture(scope="module", autouse=True)
def write_bench_json():
    """Dump everything the module measured once all benchmarks ran."""
    yield
    out = Path(__file__).parent / "BENCH_sim.json"
    out.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def _tiny(bus):
    """Two nodes, two messages, no timer deadlines inside the horizon:
    small enough that naive DFS completes the whole schedule space."""
    cfg = sim_config(heartbeat_interval=60.0, suspect_after=120.0,
                     down_after=240.0, retry_timeout=4.0)
    w = SimWorld(("a", "b"), config=cfg, bus=bus, horizon=3.0)
    w.connect_all()
    w.spawn("b", Sink, name="sink")
    w.send("a", "b/sink", "t1", "t2", label="client")
    return w


def test_bench_tiny_world_complete_enumeration(benchmark):
    res, seconds = benchmark.pedantic(
        lambda: _timed_explore(_tiny, budget=200, max_runs=100_000),
        rounds=1, iterations=1)
    _record("tiny_complete", "fingerprint", res, seconds)
    assert res.complete, "the tiny world must be fully enumerable"
    assert not res.hazards
    again, _ = _timed_explore(_tiny, budget=200, max_runs=100_000)
    assert (res.runs, res.decisions) == (again.runs, again.decisions)
    assert set(res.terminals) == set(again.terminals)


def test_bench_eviction_reduction_ratio(benchmark):
    sc = SCENARIOS["eviction"]
    naive, naive_s = _timed_explore(sc.factory(0), budget=sc.budget,
                                    max_runs=600, reduce=())
    reduced, reduced_s = benchmark.pedantic(
        lambda: _timed_explore(sc.factory(0), budget=sc.budget,
                               max_runs=600),
        rounds=1, iterations=1)
    _record("eviction_reduction", "naive", naive, naive_s)
    _record("eviction_reduction", "fingerprint", reduced, reduced_s)
    assert naive.pruned_runs == 0
    assert reduced.pruned_runs > 0, \
        "fingerprint reduction must prune reconverged cluster schedules"
    assert not naive.hazards and not reduced.hazards
    assert set(reduced.terminals) == set(naive.terminals)


def test_bench_seeded_crash_rejoin_run(benchmark):
    sc = SCENARIOS["crash_rejoin"]

    def one_run():
        t0 = time.perf_counter()
        run = run_world(sc.factory(0), seed=0, budget=sc.budget)
        return run, time.perf_counter() - t0

    run, seconds = benchmark.pedantic(one_run, rounds=1, iterations=1)
    _RESULTS.setdefault("seeded_run", {})["crash_rejoin"] = {
        "decisions": run.world.decisions,
        "outcome": run.outcome,
        "digest": run.digest(),
        "decisions_per_sec": round(run.world.decisions / seconds, 1)
        if seconds else 0.0,
        "wall_seconds": round(seconds, 4),
    }
    assert run.hazards == []
    assert run.digest() == run_world(sc.factory(0), seed=0,
                                     budget=sc.budget).digest()
