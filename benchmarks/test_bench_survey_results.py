"""§VI survey paragraphs — difficulty ratings and grade-section choice.

The paper's counts:
  * post-test difficulty: 11 of 15 found shared memory harder;
  * grade choice: 10 of 15 chose message passing; 13 of 15 chose the
    section they actually scored higher on; 4 of the 5 who chose the
    shared-memory section took it in the 2nd session.

Shape assertions: SM-harder majority, high choice accuracy, and the
SM-choosers-took-it-second effect.
"""

from repro.study import (difficulty_survey, grade_choice_survey,
                         run_full_study)


def test_difficulty_survey(benchmark, study_2013):
    report = benchmark(lambda: difficulty_survey(study_2013.results))
    # the paper's 11-of-15 is a strong majority; our derived responses
    # (score gap + self-assessment noise) reproduce the plurality
    assert report.sm_harder > report.mp_harder
    assert report.respondents >= 12


def test_grade_choice_survey(benchmark, study_2013):
    report = benchmark(lambda: grade_choice_survey(study_2013.results))
    # most students pick their genuinely better section
    assert report.chose_correctly / report.respondents >= 0.75
    # the SM choosers skew toward having taken SM in session 2
    if report.chose_sm:
        assert report.sm_choosers_took_sm_second / report.chose_sm >= 0.5


def test_survey_shape_stable_across_cohorts(benchmark, study_2013):
    """Perceived difficulty tracks real scores, so it inherits the
    section gap's sampling noise at n = 16: SM-harder majorities appear
    in most resampled cohorts, not all (see the Table II stability
    note)."""
    trials = 3

    def sweep():
        majority = 0
        for seed in range(300, 300 + trials):
            study = run_full_study(seed=seed)
            if study.difficulty.sm_harder >= study.difficulty.mp_harder:
                majority += 1
        return majority

    sm_harder_majority = benchmark(sweep)
    assert sm_harder_majority >= trials - 1
