"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper
(see DESIGN.md §4 for the index).  Benchmarks both *measure* (via
pytest-benchmark) and *assert the reproduced shape* — a benchmark that
regenerates the wrong numbers fails, it does not just run slow.
"""

import pytest


@pytest.fixture(scope="session")
def study_2013():
    """One full §V study pipeline, shared across benchmark modules."""
    from repro.study import run_full_study
    return run_full_study(seed=2013)
