"""Table I — the misconception hierarchy, regenerated."""

from repro.misconceptions import CATALOG, LEVELS
from repro.study import table1


def test_table1_reproduction(benchmark):
    rows, text = benchmark(table1)
    # the paper's exact hierarchy
    assert [(r["code"], r["category"]) for r in rows] == [
        ("D1", "Description"), ("T1", "Terminology"), ("C1", "Concurrency"),
        ("I1", "Implementation"), ("I2", "Implementation"),
        ("U1", "Uncertainty")]
    assert "TABLE I" in text


def test_every_catalog_entry_maps_into_table1(benchmark):
    codes = {row.code for row in LEVELS}

    def check():
        return all(m.level in codes for m in CATALOG)
    assert benchmark(check)
