"""Monitor-bus overhead benchmarks.

Measures kernel event throughput (events/sec over full runs of the
bounded buffer) with no bus attached, a bus with zero detectors, one
detector, and the full shipped set, and writes ``BENCH_obs.json`` next
to this file so the numbers can be compared across PRs.

The acceptance bar mirrors the metrics benchmark: the un-instrumented
path pays nothing beyond an ``is None`` test, and even the full
detector set must stay within a generous constant factor — a real
regression (quadratic view bookkeeping, per-event allocation blowups)
shows up as an order of magnitude, not tens of percent.
"""

import json
import time
from pathlib import Path
from statistics import median

import pytest

from repro.core import RandomPolicy, Scheduler
from repro.obs import DeadlockDetector, MonitorBus
from repro.problems.bounded_buffer import buffer_program

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def write_bench_json():
    """Dump everything the module measured once all benchmarks ran."""
    yield
    out = Path(__file__).parent / "BENCH_obs.json"
    out.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def _run_once(program, bus):
    sched = Scheduler(RandomPolicy(7), raise_on_deadlock=False,
                      raise_on_failure=False, monitors=bus)
    program(sched)
    return sched.run()


def _median_rate(program, bus_factory, repeats=150):
    """Median events/sec across repeated full runs (fresh bus each —
    the MonitorBus is single-use like the Scheduler)."""
    rates = []
    for _ in range(repeats):
        bus = bus_factory()
        t0 = time.perf_counter()
        trace = _run_once(program, bus)
        elapsed = time.perf_counter() - t0
        rates.append(len(trace.events) / elapsed)
    return median(rates)


def test_bench_monitor_bus_overhead(benchmark):
    program = buffer_program()
    _run_once(program, None)   # warm caches
    no_bus = benchmark.pedantic(
        lambda: _median_rate(program, lambda: None), rounds=1, iterations=1)
    zero = _median_rate(program, lambda: MonitorBus([]))
    one = _median_rate(program, lambda: MonitorBus([DeadlockDetector()]))
    full = _median_rate(program, MonitorBus)
    _RESULTS["monitor-bus-overhead"] = {
        "buffer-2p2c": {
            "events_per_sec_no_bus": round(no_bus),
            "events_per_sec_0_detectors": round(zero),
            "events_per_sec_1_detector": round(one),
            "events_per_sec_all_detectors": round(full),
            "all_over_no_bus": round(no_bus / full, 3),
        }
    }
    # non-regression bars (generous: shared CI machines jitter, and a
    # real hot-path regression lands at 10x+, not tens of percent)
    assert zero * 4 >= no_bus, (no_bus, zero)
    assert one * 6 >= no_bus, (no_bus, one)
    assert full * 10 >= no_bus, (no_bus, full)


def test_bench_telemetry_overhead(benchmark):
    """Always-on telemetry must be nearly free on the cluster hot path.

    Two-node loopback pingpong (the ``pingpong.cluster`` topology
    without the socket, so the wire cost cannot mask the instrumentation
    cost) with TelemetryAgents attached vs bare, repetitions
    interleaved A/B so machine drift hits both arms equally.  The gate
    is the ISSUE-7 acceptance bar: agent-on throughput stays within 5%
    of agent-off.
    """
    import threading

    from repro.cluster.bench import BENCH_CONFIG, Echo, Pinger
    from repro.cluster.node import ClusterNode
    from repro.cluster.transport import LoopbackHub
    from repro.obs.profile import Profiler
    from repro.obs.telemetry import TelemetryAgent

    rounds, inflight, reps = 3000, 32, 7

    def build(telemetry):
        hub = LoopbackHub()
        a = ClusterNode("driver", hub.join("driver"),
                        config=BENCH_CONFIG, workers=2,
                        profiler=Profiler())
        b = ClusterNode("worker", hub.join("worker"),
                        config=BENCH_CONFIG, workers=2,
                        profiler=Profiler())
        agents = []
        if telemetry:
            agents = [TelemetryAgent(interval=0.1).attach(n)
                      for n in (a, b)]
        a.connect("worker")
        b.connect("driver")
        b.spawn(Echo, name="echo")
        done = threading.Event()
        pinger = a.spawn(Pinger, a.ref("worker/echo"), inflight, done,
                         name="pinger")
        return a, b, pinger, done, agents

    def one_rep(pinger, done):
        done.clear()
        t0 = time.perf_counter()
        pinger.tell(("start", rounds))
        assert done.wait(120), "pingpong repetition stalled"
        return rounds / (time.perf_counter() - t0)

    bare = build(telemetry=False)
    instrumented = build(telemetry=True)
    try:
        one_rep(bare[2], bare[3])                    # warm both arms
        one_rep(instrumented[2], instrumented[3])

        def measure():
            off_rates, on_rates = [], []
            for _ in range(reps):                    # interleaved arms
                off_rates.append(one_rep(bare[2], bare[3]))
                on_rates.append(one_rep(instrumented[2], instrumented[3]))
            return median(off_rates), median(on_rates)

        off, on = benchmark.pedantic(measure, rounds=1, iterations=1)

        # the instrumented arm really measured telemetry: frames
        # shipped both ways and the recorders saw the storm
        driver_agent = instrumented[4][0]
        assert set(driver_agent.aggregator.nodes()) == \
            {"driver", "worker"}
        assert len(driver_agent.recorder) > 0
        frames = driver_agent.aggregator.snapshot()[
            "nodes"]["worker"]["frames"]
        assert frames > 0
    finally:
        for topo in (bare, instrumented):
            topo[0].close()
            topo[1].close()

    _RESULTS["telemetry-overhead"] = {
        "pingpong.cluster-loopback": {
            "ops_per_sec_agent_off": round(off),
            "ops_per_sec_agent_on": round(on),
            "on_over_off": round(on / off, 4),
            "worker_frames_seen": frames,
        }
    }
    assert on >= off * 0.95, (off, on)


def test_bench_tracer_overhead(benchmark):
    """Active causal tracing must stay within 10% of tracer-off.

    Same interleaved A/B loopback pingpong as the telemetry gate, but
    the instrumented arm carries a :class:`CausalTracer` through both
    nodes and stamps a fresh request context before each repetition, so
    the storm propagates ids across the wire, the mailboxes and the
    executor.  What keeps this bounded is the tracer's *per-request hop
    budget* (``DEFAULT_HOP_BUDGET``, the OpenTelemetry span-limit
    idea): each request traces its first few hundred handoffs at full
    fidelity — far more than any sane request needs for critical-path
    analysis — then the chain self-terminates and the remaining storm
    runs at attached-idle cost.  The gate is the ISSUE-8 acceptance
    bar: tracer-on throughput stays within 10% of tracer-off, *by
    design* for any request shape, not just this workload.  (The
    tracing-*off* arm pays only ``is None`` tests and is additionally
    covered by the zero-allocation test in ``tests/test_obs_causal``.)
    """
    import threading

    from repro.cluster.bench import BENCH_CONFIG, Echo, Pinger
    from repro.cluster.node import ClusterNode
    from repro.cluster.transport import LoopbackHub
    from repro.obs.causal import CausalTracer, clear_context

    rounds, inflight, reps = 3000, 32, 7

    def build(tracer):
        hub = LoopbackHub()
        a = ClusterNode("driver", hub.join("driver"),
                        config=BENCH_CONFIG, workers=2, tracer=tracer)
        b = ClusterNode("worker", hub.join("worker"),
                        config=BENCH_CONFIG, workers=2, tracer=tracer)
        a.connect("worker")
        b.connect("driver")
        b.spawn(Echo, name="echo")
        done = threading.Event()
        pinger = a.spawn(Pinger, a.ref("worker/echo"), inflight, done,
                         name="pinger")
        return a, b, pinger, done

    def one_rep(pinger, done, tracer):
        done.clear()
        if tracer is not None:
            tracer.start_request("pingpong")
        t0 = time.perf_counter()
        pinger.tell(("start", rounds))
        try:
            assert done.wait(120), "pingpong repetition stalled"
        finally:
            if tracer is not None:
                clear_context()
        return rounds / (time.perf_counter() - t0)

    # bounded so a quarter-million spans don't become the benchmark
    tracer = CausalTracer(capacity=200_000)
    bare = build(tracer=None)
    traced = build(tracer=tracer)
    try:
        one_rep(bare[2], bare[3], None)              # warm both arms
        one_rep(traced[2], traced[3], tracer)

        def measure():
            off_rates, on_rates = [], []
            for _ in range(reps):                    # interleaved arms
                off_rates.append(one_rep(bare[2], bare[3], None))
                on_rates.append(one_rep(traced[2], traced[3], tracer))
            return median(off_rates), median(on_rates)

        off, on = benchmark.pedantic(measure, rounds=1, iterations=1)

        # the traced arm really traced: spans crossed the loopback wire
        segments = {s[3] for s in tracer.spans()}
        assert "network" in segments and "handler" in segments, segments
    finally:
        bare[0].close()
        bare[1].close()
        traced[0].close()
        traced[1].close()

    _RESULTS["tracer-overhead"] = {
        "pingpong.cluster-loopback": {
            "ops_per_sec_tracer_off": round(off),
            "ops_per_sec_tracer_on": round(on),
            "on_over_off": round(on / off, 4),
            "spans_recorded": len(tracer),
        }
    }
    assert on >= off * 0.90, (off, on)


def test_bench_protocol_overhead(benchmark):
    """Online protocol conformance must stay within 10% of monitors-off.

    Interleaved A/B loopback pingpong again, but the instrumented arm
    attaches a :class:`ProtocolMonitor` to both nodes.  The monitor's
    ``wants_message_kinds`` flag makes the nodes classify every payload
    and stamp the kind token into their cluster events — the full
    conformance tax, not just the automaton step.  The echoed payloads
    are ints, so the ``INT*`` session type conforms forever and the
    automaton advances on every single delivery (the worst case: no
    early alphabet filtering).  The gate is the ISSUE-9 acceptance bar:
    monitors-on throughput stays at or above 0.90x monitors-off.
    """
    import threading

    from repro.cluster.bench import BENCH_CONFIG, Echo, Pinger
    from repro.cluster.node import ClusterNode
    from repro.cluster.transport import LoopbackHub
    from repro.obs.monitors import MonitorBus
    from repro.obs.protocol import Protocol, ProtocolMonitor

    rounds, inflight, reps = 3000, 32, 7

    def build(monitored):
        hub = LoopbackHub()
        buses = []

        def bus():
            if not monitored:
                return None
            # one bus per node (dedup only matters across a shared
            # link, and the bench wants the per-node hot-path tax)
            b = MonitorBus([ProtocolMonitor([Protocol("pingflow",
                                                      "INT*")])])
            buses.append(b)
            return b

        a = ClusterNode("driver", hub.join("driver"),
                        config=BENCH_CONFIG, workers=2, monitors=bus())
        b = ClusterNode("worker", hub.join("worker"),
                        config=BENCH_CONFIG, workers=2, monitors=bus())
        a.connect("worker")
        b.connect("driver")
        b.spawn(Echo, name="echo")
        done = threading.Event()
        pinger = a.spawn(Pinger, a.ref("worker/echo"), inflight, done,
                         name="pinger")
        return a, b, pinger, done, buses

    def one_rep(pinger, done):
        done.clear()
        t0 = time.perf_counter()
        pinger.tell(("start", rounds))
        assert done.wait(120), "pingpong repetition stalled"
        return rounds / (time.perf_counter() - t0)

    bare = build(monitored=False)
    monitored = build(monitored=True)
    try:
        one_rep(bare[2], bare[3])                    # warm both arms
        one_rep(monitored[2], monitored[3])

        def measure():
            off_rates, on_rates = [], []
            for _ in range(reps):                    # interleaved arms
                off_rates.append(one_rep(bare[2], bare[3]))
                on_rates.append(one_rep(monitored[2], monitored[3]))
            return median(off_rates), median(on_rates)

        off, on = benchmark.pedantic(measure, rounds=1, iterations=1)

        # the monitored arm really checked: every automaton advanced
        # through the storm and the conforming stream raised nothing
        monitors = [d for bus in monitored[4] for d in bus.detectors
                    if isinstance(d, ProtocolMonitor)]
        assert monitors and all(m._machines[0].moved for m in monitors)
        assert all(not m.counts() for m in monitors)
        assert all(not bus.hazards for bus in monitored[4])
    finally:
        for topo in (bare, monitored):
            topo[0].close()
            topo[1].close()

    _RESULTS["protocol-overhead"] = {
        "pingpong.cluster-loopback": {
            "ops_per_sec_monitors_off": round(off),
            "ops_per_sec_monitors_on": round(on),
            "on_over_off": round(on / off, 4),
        }
    }
    assert on >= off * 0.90, (off, on)


def test_bench_monitored_exploration_matches(benchmark):
    """Monitored exploration does the same search — identical run and
    decision counts — while collecting hazards; record its cost."""
    from repro.verify import explore

    program = buffer_program(capacity=1, producers=1, consumers=1,
                             items_each=2)
    t0 = time.perf_counter()
    off = explore(program, reduce="all")
    off_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    on = benchmark.pedantic(
        lambda: explore(program, reduce="all", monitors=True),
        rounds=1, iterations=1)
    on_s = time.perf_counter() - t0
    _RESULTS["monitored-exploration"] = {
        "buffer-1p1c-2items": {
            "runs": on.runs,
            "decisions": on.decisions,
            "hazard_kinds": sorted(on.hazard_counts()),
            "monitors_off_s": round(off_s, 4),
            "monitors_on_s": round(on_s, 4),
        }
    }
    assert on.runs == off.runs
    assert on.decisions == off.decisions
    assert dict(on.outcomes) == dict(off.outcomes)
