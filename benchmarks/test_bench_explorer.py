"""Explorer-reduction benchmarks — the perf trajectory tracker.

Measures the cost of exploring the kernel (bounded-buffer) and
single-lane-bridge programs naively versus with the sleep-set/DPOR +
state-fingerprint reductions, asserts the ISSUE's >=5x decision cut on
naive-completable sizes, and writes ``BENCH_explorer.json`` next to
this file so the numbers can be compared across PRs.

The paper-scale bridge (2 red + 1 blue car) is the headline: naive DFS
cannot finish it within a 20k-run budget, while the combined
reductions complete the whole schedule space in a few hundred runs.
"""

import json
import time
from pathlib import Path

import pytest

from repro.problems.bounded_buffer import buffer_program
from repro.problems.single_lane_bridge import bridge_program
from repro.verify import explore

TWO_CARS = (("redCarA", "red"), ("blueCarA", "blue"))

_RESULTS: dict = {}


def _timed(program, **kw):
    t0 = time.perf_counter()
    res = explore(program, **kw)
    return res, time.perf_counter() - t0


def _record(name: str, label: str, res, seconds: float) -> None:
    _RESULTS.setdefault(name, {})[label] = {
        "runs": res.runs,
        "decisions": res.decisions,
        "pruned_runs": res.pruned_runs,
        "complete": res.complete,
        "terminals": len(res.terminals),
        "wall_seconds": round(seconds, 4),
        "stats": res.stats.as_dict(),
    }


@pytest.fixture(scope="module", autouse=True)
def write_bench_json():
    """Dump everything the module measured once all benchmarks ran."""
    yield
    out = Path(__file__).parent / "BENCH_explorer.json"
    out.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def _compare(name: str, program, benchmark) -> None:
    naive, naive_s = _timed(program)
    reduced, reduced_s = (benchmark.pedantic(
        lambda: _timed(program, reduce="all"), rounds=1, iterations=1)
        if benchmark is not None else _timed(program, reduce="all"))
    _record(name, "naive", naive, naive_s)
    _record(name, "reduced", reduced, reduced_s)
    # identical answers ...
    assert naive.complete and reduced.complete
    assert reduced.output_strings() == naive.output_strings()
    assert reduced.deadlock_possible == naive.deadlock_possible
    assert set(reduced.observations()) == set(naive.observations())
    # ... for at least 5x fewer scheduler decisions (the acceptance bar)
    assert naive.decisions >= 5 * reduced.decisions, \
        (name, naive.decisions, reduced.decisions)


def test_bench_kernel_buffer_reduction(benchmark):
    """Bounded-buffer kernel program, naive-completable size (43x here)."""
    _compare("buffer-1p1c-2items",
             buffer_program(capacity=1, producers=1, consumers=1,
                            items_each=2), benchmark)


def test_bench_bridge_reduction(benchmark):
    """Two-car bridge, naive-completable (18x here)."""
    _compare("bridge-2car", bridge_program(cars=TWO_CARS), benchmark)


def test_bench_bridge_paper_scale(benchmark):
    """The paper's 3-car instance: reductions finish a space naive
    exploration cannot, at a small fraction of the per-run work."""
    program = bridge_program()
    naive, naive_s = _timed(program, max_runs=20_000)
    reduced, reduced_s = benchmark.pedantic(
        lambda: _timed(program, reduce="all"), rounds=1, iterations=1)
    _record("bridge-3car", "naive-capped-20k", naive, naive_s)
    _record("bridge-3car", "reduced", reduced, reduced_s)
    assert not naive.complete          # naive blows the budget ...
    assert reduced.complete            # ... reductions finish the space
    assert len(reduced.terminals) == 14
    assert not reduced.deadlock_possible
    # even the *capped* naive prefix costs >5x the entire reduced search
    assert naive.decisions >= 5 * reduced.decisions


def test_bench_buffer_paper_scale(benchmark):
    """Homework-2 scale (2 producers, 1 consumer): naive needs ~700k
    decisions; the reductions need under 1k."""
    program = buffer_program(capacity=2, producers=2, consumers=1,
                             items_each=1)
    naive, naive_s = _timed(program, max_runs=100_000)
    reduced, reduced_s = benchmark.pedantic(
        lambda: _timed(program, reduce="all"), rounds=1, iterations=1)
    _record("buffer-2p1c", "naive", naive, naive_s)
    _record("buffer-2p1c", "reduced", reduced, reduced_s)
    assert naive.complete and reduced.complete
    assert reduced.output_strings() == naive.output_strings()
    assert set(reduced.observations()) == set(naive.observations())
    assert naive.decisions >= 5 * reduced.decisions


def test_bench_metrics_overhead(benchmark):
    """Instrumentation cost of Scheduler(metrics=...).

    The acceptance bar is on the *disabled* path: attaching no metrics
    must cost no more than 5% over the seed scheduler (the hot path
    only gains `if self.metrics is not None` checks).  Timings compare
    medians over repeated full runs of the bounded buffer; the enabled
    path is recorded for the JSON but unconstrained (it does real
    work).
    """
    from statistics import median

    from repro.core import RandomPolicy, Scheduler
    from repro.obs import KernelMetrics

    program = buffer_program()

    def run_once(metrics):
        sched = Scheduler(RandomPolicy(7), raise_on_deadlock=False,
                          raise_on_failure=False, metrics=metrics)
        program(sched)
        return sched.run()

    def time_runs(metrics_factory, repeats=400):
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_once(metrics_factory())
            samples.append(time.perf_counter() - t0)
        return median(samples)

    run_once(None)  # warm caches
    disabled = benchmark.pedantic(lambda: time_runs(lambda: None),
                                  rounds=1, iterations=1)
    enabled = time_runs(KernelMetrics)
    _RESULTS["metrics-overhead"] = {
        "buffer-2p2c": {
            "disabled_median_s": round(disabled, 6),
            "enabled_median_s": round(enabled, 6),
            "enabled_over_disabled": round(enabled / disabled, 3),
        }
    }
    # generous multiple of the 5% bar: wall-clock medians on shared CI
    # machines jitter, and a real regression (work on the disabled
    # path) shows up as 2x+, not tens of percent
    assert enabled < disabled * 3, (disabled, enabled)
