"""Figures 1-5 — every pseudocode example in the paper, regenerated.

For each figure: execute the program (or exhaustively enumerate its
outputs) and assert the result matches the figure's stated output /
"Output possibility" list exactly.  The benchmark measures the cost of
the full enumeration.
"""

import pytest

from repro.pseudocode import compile_program, interpret, possible_outputs

FIG3A = 'PARA\nPRINT "hello "\nPRINT "world "\nENDPARA'
FIG3B = """
DEFINE print()
  PRINT "hi "
  PRINT "there "
ENDDEF
PARA
  print()
ENDPARA
"""
FIG3C = """
DEFINE print()
  PRINT "hi "
  PRINT "there "
ENDDEF
PARA
  print()
  PRINT "world "
ENDPARA
"""
FIG4A = """
x = 10
DEFINE changeX(diff)
  EXC_ACC
    x = x + diff
  END_EXC_ACC
ENDDEF
PARA
  changeX(1)
  changeX(-2)
ENDPARA
PRINTLN x
"""
FIG4B = """
x = 10
DEFINE changeX(diff)
  EXC_ACC
    WHILE x + diff < 0
      WAIT()
    ENDWHILE
    x = x + diff
    NOTIFY()
  END_EXC_ACC
ENDDEF
PARA
  changeX(-11)
  changeX(1)
ENDPARA
PRINTLN x
"""
FIG5 = """
CLASS Receiver
  DEFINE receive()
    ON_RECEIVING
      MESSAGE.h(var)
        PRINT var
      MESSAGE.w(var)
        PRINTLN var
  ENDDEF
ENDCLASS
m1 = MESSAGE.h("hello ")
m2 = MESSAGE.w("world")
r1 = new Receiver()
r1.receive()
Send(m1).To(r1)
Send(m2).To(r1)
"""


def test_fig1_assignments(benchmark):
    source = ('total = 0\nname = "John Smith"\ncondition = True\n'
              'height = 3.3')
    result = benchmark(lambda: interpret(source))
    assert result.globals == {"total": 0, "name": "John Smith",
                              "condition": True, "height": 3.3}


def test_fig2_conditional(benchmark):
    source = """
testScore = 88
IF testScore >= 90 THEN
  PRINTLN "A"
ELSE IF testScore >= 80 THEN
  PRINTLN "B"
ELSE IF testScore >= 70 THEN
  PRINTLN "C"
ELSE
  PRINTLN "F"
ENDIF
"""
    result = benchmark(lambda: interpret(source))
    assert result.output_tokens() == ["B"]


@pytest.mark.parametrize("name,source,expected", [
    ("fig3a", FIG3A, {"hello world", "world hello"}),
    ("fig3b", FIG3B, {"hi there"}),
    ("fig3c", FIG3C, {"hi there world", "hi world there",
                      "world hi there"}),
], ids=["fig3a", "fig3b", "fig3c"])
def test_fig3_para_possibilities(benchmark, name, source, expected):
    runtime = compile_program(source)
    outputs = benchmark(lambda: possible_outputs(runtime))
    assert outputs == expected


def test_fig4a_exc_acc(benchmark):
    runtime = compile_program(FIG4A)
    outputs = benchmark(lambda: possible_outputs(runtime, max_runs=100_000))
    assert outputs == {"9"}


def test_fig4b_wait_notify(benchmark):
    runtime = compile_program(FIG4B)
    outputs = benchmark(lambda: possible_outputs(runtime, max_runs=100_000))
    assert outputs == {"0"}


def test_fig5_message_passing(benchmark):
    runtime = compile_program(FIG5)
    outputs = benchmark(lambda: possible_outputs(runtime))
    assert outputs == {"hello world", "world hello"}
