"""Table III — misconception counts from graded Test-1 answers.

The paper's counts (of 16 students):

    M1=6 M2=1 M3=7 M4=7 M5=6 M6=7      (message passing)
    S1=3 S2=1 S3=2 S4=4 S5=9 S6=1 S7=10 S8=2   (shared memory)

We assert the qualitative structure: the dominant misconceptions (S5,
S7 in shared memory; M3/M4/M5 in message passing) dominate the
measured counts too, rare ones stay rare, and measured-vs-paper
counts correlate positively.  Every *semantic* misconception must also
demonstrably flip at least one exam question (the mechanism behind the
counts).
"""

from scipy import stats

from repro.misconceptions import CATALOG, answer_delta
from repro.study import question_bank, run_full_study, table3


def test_table3_reproduction(benchmark, study_2013):
    data = benchmark(lambda: table3(run_full_study(seed=2013).results)[0])

    measured = {mid: row["measured"] for mid, row in data.items()}
    paper = {mid: row["paper"] for mid, row in data.items()}

    # dominant SM misconceptions dominate
    sm = {k: v for k, v in measured.items() if k.startswith("S")}
    top_two = sorted(sm, key=sm.get, reverse=True)[:2]
    assert set(top_two) <= {"S5", "S7", "S4"}
    # rare ones stay rare
    assert measured["S6"] <= 3
    assert measured["S2"] <= 3
    # positive rank correlation with the paper's column
    mids = sorted(measured)
    rho = stats.spearmanr([measured[m] for m in mids],
                          [paper[m] for m in mids]).statistic
    assert rho > 0.4


def test_semantic_misconceptions_flip_questions(benchmark):
    bank = question_bank()
    sm_questions = [i.question for i in bank if i.section == "sm"]
    mp_questions = [i.question for i in bank if i.section == "mp"]

    def all_deltas():
        out = {}
        for mid in ("S5", "S6", "S7"):
            out[mid] = answer_delta("sm", [mid], sm_questions)
        for mid in ("M3", "M4", "M5"):
            out[mid] = answer_delta("mp", [mid], mp_questions)
        return out

    deltas = benchmark(all_deltas)
    for mid, flips in deltas.items():
        assert flips, f"{mid} flips no exam question"


def test_catalog_matches_paper_exactly(benchmark):
    expected = {"M1": 6, "M2": 1, "M3": 7, "M4": 7, "M5": 6, "M6": 7,
                "S1": 3, "S2": 1, "S3": 2, "S4": 4, "S5": 9, "S6": 1,
                "S7": 10, "S8": 2}
    counts = benchmark(lambda: {m.mid: m.paper_count for m in CATALOG})
    assert counts == expected
