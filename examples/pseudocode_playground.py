#!/usr/bin/env python
"""Run every pseudocode example from the paper's Figures 1-5 and show
the exhaustively-computed output possibilities next to the figure's own
"Output possibility" lists.

Run:  python examples/pseudocode_playground.py
"""

from repro.pseudocode import interpret, possible_outputs

FIGURES = [
    ("Figure 1 — assignments (simple statements are atomic)", """
total = 0
name = "John Smith"
condition = True
height = 3.3
PRINT total
""", {"0"}),

    ("Figure 2 — conditional, testScore = 88", """
testScore = 88
IF testScore >= 90 THEN
  PRINTLN "A"
ELSE IF testScore >= 80 THEN
  PRINTLN "B"
ELSE IF testScore >= 70 THEN
  PRINTLN "C"
ELSE
  PRINTLN "F"
ENDIF
""", {"B"}),

    ("Figure 3a — PARA with two simple statements", """
PARA
  PRINT "hello "
  PRINT "world "
ENDPARA
""", {"hello world", "world hello"}),

    ("Figure 3b — function body runs sequentially", """
DEFINE print()
  PRINT "hi "
  PRINT "there "
ENDDEF
PARA
  print()
ENDPARA
""", {"hi there"}),

    ("Figure 3c — function interleaves with a simple statement", """
DEFINE print()
  PRINT "hi "
  PRINT "there "
ENDDEF
PARA
  print()
  PRINT "world "
ENDPARA
""", {"hi there world", "hi world there", "world hi there"}),

    ("Figure 4a — EXC_ACC protects the update", """
x = 10
DEFINE changeX(diff)
  EXC_ACC
    x = x + diff
  END_EXC_ACC
ENDDEF
PARA
  changeX(1)
  changeX(-2)
ENDPARA
PRINTLN x
""", {"9"}),

    ("Figure 4b — WAIT/NOTIFY conditional synchronization", """
x = 10
DEFINE changeX(diff)
  EXC_ACC
    WHILE x + diff < 0
      WAIT()
    ENDWHILE
    x = x + diff
    NOTIFY()
  END_EXC_ACC
ENDDEF
PARA
  changeX(-11)
  changeX(1)
ENDPARA
PRINTLN x
""", {"0"}),

    ("Figure 5 — asynchronous message passing", """
CLASS Receiver
  DEFINE receive()
    ON_RECEIVING
      MESSAGE.h(var)
        PRINT var
      MESSAGE.w(var)
        PRINTLN var
  ENDDEF
ENDCLASS
m1 = MESSAGE.h("hello ")
m2 = MESSAGE.w("world")
r1 = new Receiver()
r1.receive()
Send(m1).To(r1)
Send(m2).To(r1)
""", {"hello world", "world hello"}),
]


def main() -> None:
    for title, source, expected in FIGURES:
        print(f"== {title} ==")
        computed = possible_outputs(source, max_runs=200_000)
        for i, output in enumerate(sorted(computed), start=1):
            print(f"  possibility {i}: {output}")
        status = "matches the figure" if computed == expected \
            else f"MISMATCH (figure says {sorted(expected)})"
        print(f"  -> {status}\n")

    print("== bonus: one concrete run of Figure 5 under round-robin ==")
    result = interpret(FIGURES[-1][1])
    print("  output:", result.output_text().strip())


if __name__ == "__main__":
    main()
