#!/usr/bin/env python
"""The single-lane bridge, distributed: cars sharded across two nodes.

The paper's bridge problem (§III) with the arbiter and the traffic
split over a *cluster*: the bridge actor lives on the ``west`` node
together with the westbound cars, while the eastbound cars live on the
``east`` node and negotiate every crossing over the wire — enter/go/
exit round trips riding the reliable TELL path with acks, retries, and
credit-based backpressure underneath.

Two transports, same program:

  python examples/cluster_bridge.py             # in-process loopback
  python examples/cluster_bridge.py --socket    # real worker subprocess
  python examples/cluster_bridge.py --socket --trace-out bridge_trace.json

At the end both nodes' profiler snapshots merge into one report
(counters sum across nodes, histograms stay per-node), and with
``--trace-out`` the per-node event logs merge into a single Chrome
trace — open it in chrome://tracing or Perfetto and the send→receive
flow arrows draw each crossing's hop between the two processes.
"""

import argparse
import json
import sys
import threading
import time

from repro.cluster import (
    ClusterConfig,
    ClusterNode,
    LoopbackHub,
    PickleSerializer,
    SocketTransport,
    format_merged_profile,
    merge_chrome_traces,
    merge_profiles,
)
from repro.cluster.bench import BENCH_CONFIG, Car, ClusterBridge, spawn_worker
from repro.obs import Profiler

CARS_PER_SIDE = 4
CROSSINGS = 200                  # total, across every car


def run(socket_mode: bool, trace_out: str | None) -> None:
    trace = trace_out is not None
    profiler = Profiler()
    config = BENCH_CONFIG if socket_mode else ClusterConfig()

    if socket_mode:
        # a real second interpreter: the worker subprocess hosts the
        # bridge; this process hosts every car
        proc, port = spawn_worker(name="west", extra=["--trace"] if trace
                                  else None)
        east = ClusterNode("east", SocketTransport("east", listen=False),
                           serializer=PickleSerializer(), config=config,
                           profiler=profiler, trace=trace)
        east.connect("west", ("127.0.0.1", port))
        bridge = east.spawn_remote("west", "cluster-bridge", "bridge")
        west = None
    else:
        hub = LoopbackHub()
        west = ClusterNode("west", hub.join("west"), config=config,
                           profiler=profiler, trace=trace)
        east = ClusterNode("east", hub.join("east"), config=config,
                           profiler=Profiler(), trace=trace)
        west.connect("east")
        east.connect("west")
        west.spawn(ClusterBridge, name="bridge")
        bridge = east.ref("west/bridge")
        proc = None

    done = threading.Event()
    pending_lock = threading.Lock()
    pending = {"cars": 0}

    def car_done() -> None:
        with pending_lock:
            pending["cars"] -= 1
            if pending["cars"] == 0:
                done.set()

    cars = []
    # westbound cars sit beside the arbiter (local tells); eastbound
    # cars are remote — every crossing is a cross-node conversation
    for i in range(CARS_PER_SIDE):
        if west is not None:
            cars.append(west.spawn(Car, west.ref("west/bridge"),
                                   "westbound", car_done,
                                   name=f"wcar-{i}"))
        cars.append(east.spawn(Car, bridge, "eastbound", car_done,
                               name=f"ecar-{i}"))

    pending["cars"] = len(cars)
    per_car = CROSSINGS // len(cars) + 1
    total = per_car * len(cars)
    t0 = time.perf_counter()
    for car in cars:
        car.tell(("start", per_car))
    if not done.wait(60):
        print("bridge run timed out", file=sys.stderr)
        raise SystemExit(1)
    dt = time.perf_counter() - t0
    print(f"{total} crossings by {len(cars)} cars on 2 nodes "
          f"in {dt:.2f}s ({total / dt:,.0f} crossings/s)\n")

    # ---- merged cross-node profile -----------------------------------
    if socket_mode:
        status = east.status_of("west", profile=True, trace=trace,
                                timeout=10.0)
        snapshots = {"east": profiler.snapshot(),
                     "west": status.get("profile") or {}}
        node_events = {"east": east.trace_events or [],
                       "west": status.get("trace") or []}
    else:
        snapshots = {"east": east.profiler.snapshot(),
                     "west": west.profiler.snapshot()}
        node_events = {"east": east.trace_events or [],
                       "west": west.trace_events or []}
    print(format_merged_profile(merge_profiles(snapshots)))

    if trace_out:
        merged = merge_chrome_traces(node_events)
        with open(trace_out, "w") as fh:
            json.dump(merged, fh, sort_keys=True)
        n = len(merged["traceEvents"])
        print(f"\nwrote {trace_out} ({n} Chrome trace events — load in "
              f"chrome://tracing)")

    east.close()
    if west is not None:
        west.close()
    if proc is not None:
        proc.terminate()
        proc.wait(timeout=10)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--socket", action="store_true",
                    help="run the bridge node as a real worker "
                         "subprocess over TCP (default: in-process "
                         "loopback)")
    ap.add_argument("--trace-out", default=None,
                    help="write the merged two-node Chrome trace here")
    args = ap.parse_args()
    run(args.socket, args.trace_out)


if __name__ == "__main__":
    main()
