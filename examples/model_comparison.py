#!/usr/bin/env python
"""Compare the three programming models on the same problems —
the course's "costs and benefits" exercise (§I: students "investigate
the efficiency of these implementations" and assess ease of
programming).

Three comparisons:
  1. correctness under stress (all models solve each problem, audited);
  2. throughput on a producer/consumer workload (GIL caveat printed);
  3. structural effort metrics of the implementations themselves.

Run:  python examples/model_comparison.py
"""

import time

from repro.problems import bounded_buffer, sleeping_barber
from repro.study import problem_effort


def correctness_sweep() -> None:
    print("== 1. every model solves every problem (audited) ==")
    jobs = [
        ("bounded buffer", [
            ("threads", lambda: bounded_buffer.run_threads_buffer()),
            ("actors", lambda: bounded_buffer.run_actor_buffer()),
            ("coroutines", lambda: bounded_buffer.run_coroutine_buffer())]),
        ("sleeping barber", [
            ("threads", lambda: sleeping_barber.run_threads_barber()),
            ("actors", lambda: sleeping_barber.run_actor_barber()),
            ("coroutines", lambda: sleeping_barber.run_coroutine_barber())]),
    ]
    for problem, runners in jobs:
        line = ", ".join(f"{name} ok" for name, run in runners
                         if run() is not None)
        print(f"  {problem}: {line}")


def throughput() -> None:
    print("\n== 2. producer/consumer throughput ==")
    print("  (CPython GIL: threads show blocking structure, not "
          "parallel speedup — see EXPERIMENTS.md)")
    items = 4000

    def timed(label, fn):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        print(f"  {label:<12} {items / elapsed:>12,.0f} items/s")

    timed("threads", lambda: bounded_buffer.run_threads_buffer(
        capacity=64, producers=2, consumers=2, items_each=items // 2))
    timed("actors", lambda: bounded_buffer.run_actor_buffer(
        capacity=64, producers=2, consumers=2, items_each=items // 2))
    timed("coroutines", lambda: bounded_buffer.run_coroutine_buffer(
        capacity=64, producers=2, consumers=2, items_each=items // 2))


def effort() -> None:
    print("\n== 3. implementation effort (Test-2 cost/benefit) ==")
    for problem in ("bridge", "barber", "buffer"):
        print(f"  {problem}:")
        for metrics in problem_effort(problem):
            print(f"    {metrics.describe()}")


if __name__ == "__main__":
    correctness_sweep()
    throughput()
    effort()
