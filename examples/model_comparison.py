#!/usr/bin/env python
"""Compare the three programming models on the same problems —
the course's "costs and benefits" exercise (§I: students "investigate
the efficiency of these implementations" and assess ease of
programming).

Three comparisons:
  1. correctness under stress (all models solve each problem, audited);
  2. throughput on a producer/consumer workload (GIL caveat printed);
  3. structural effort metrics of the implementations themselves.

Run:  python examples/model_comparison.py
"""

from repro.bench import Workload, run_bench
from repro.problems import bounded_buffer, sleeping_barber
from repro.study import problem_effort


def correctness_sweep() -> None:
    print("== 1. every model solves every problem (audited) ==")
    jobs = [
        ("bounded buffer", [
            ("threads", lambda: bounded_buffer.run_threads_buffer()),
            ("actors", lambda: bounded_buffer.run_actor_buffer()),
            ("coroutines", lambda: bounded_buffer.run_coroutine_buffer())]),
        ("sleeping barber", [
            ("threads", lambda: sleeping_barber.run_threads_barber()),
            ("actors", lambda: sleeping_barber.run_actor_barber()),
            ("coroutines", lambda: sleeping_barber.run_coroutine_barber())]),
    ]
    for problem, runners in jobs:
        line = ", ".join(f"{name} ok" for name, run in runners
                         if run() is not None)
        print(f"  {problem}: {line}")


def throughput() -> None:
    print("\n== 2. producer/consumer throughput ==")
    print("  (CPython GIL: threads show blocking structure, not "
          "parallel speedup — see EXPERIMENTS.md)")
    # the bench harness supplies warmup, repetitions and percentiles;
    # `python -m repro bench` runs the full 6-problem matrix
    result = run_bench(problems=["bounded_buffer"],
                       workload=Workload(workers=4, ops=1000, warmup=1,
                                         repetitions=3))
    for cell in result.cells:
        wall = cell["wall_us"]
        print(f"  {cell['runtime']:<12} "
              f"{cell['throughput_ops_per_s']:>12,.0f} items/s   "
              f"p95 {wall['p95'] / 1000:.2f} ms")


def effort() -> None:
    print("\n== 3. implementation effort (Test-2 cost/benefit) ==")
    for problem in ("bridge", "barber", "buffer"):
        print(f"  {problem}:")
        for metrics in problem_effort(problem):
            print(f"    {metrics.describe()}")


if __name__ == "__main__":
    correctness_sweep()
    throughput()
    effort()
