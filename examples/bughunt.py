#!/usr/bin/env python
"""Bug hunting with the verification toolkit — the course's §IV.C
concepts (race conditions, deadlock, fairness) as executable checks.

Shows, for each classic failure mode:
  * a buggy program,
  * the tool that finds the bug with a replayable counterexample,
  * the fixed program passing the same check.

Run:  python examples/bughunt.py
"""

from repro.core import (Access, AccessKind, Acquire, Pause, Release,
                        SimLock)
from repro.problems.dining_philosophers import philosophers_program
from repro.verify import (check_deadlock_free, explore,
                          find_races_program, run_schedule)


def hunt_the_race() -> None:
    print("== race condition: read-modify-write on a shared counter ==")

    def racy(sched):
        state = {"balance": 100}

        def withdraw(amount):
            yield Access("balance", AccessKind.READ)
            current = state["balance"]
            yield Access("balance", AccessKind.WRITE)
            state["balance"] = current - amount
        sched.spawn(withdraw, 30, name="atm-1")
        sched.spawn(withdraw, 50, name="atm-2")
        return lambda: state["balance"]

    race = find_races_program(racy)
    print("  detector:", race.describe())
    outcomes = sorted(explore(racy).observations())
    print(f"  reachable balances: {outcomes} "
          f"(anything but 20 lost a withdrawal)")

    def fixed(sched):
        lock = SimLock("balance")
        state = {"balance": 100}

        def withdraw(amount):
            yield Acquire(lock)
            state["balance"] -= amount
            yield Release(lock)
        sched.spawn(withdraw, 30, name="atm-1")
        sched.spawn(withdraw, 50, name="atm-2")
        return lambda: state["balance"]

    print("  fixed:", sorted(explore(fixed).observations()),
          "and detector:", find_races_program(fixed))


def hunt_the_deadlock() -> None:
    print("\n== deadlock: dining philosophers ==")
    report = check_deadlock_free(philosophers_program(3, 1, "naive"),
                                 max_runs=30_000)
    print(f"  naive (grab left, grab right): deadlock-free = {report.holds}")
    print(f"  counterexample: {report.detail}")
    trace, _ = run_schedule(philosophers_program(3, 1, "naive"),
                            report.counterexample)
    print("  replayed tail of the fatal schedule:")
    for line in trace.render(last=4).splitlines():
        print("   ", line)

    report = check_deadlock_free(philosophers_program(3, 1, "waiter"),
                                 max_runs=60_000)
    print(f"  waiter strategy: deadlock-free = {report.holds} "
          f"({'proved' if report.exhaustive else 'within budget'}, "
          f"{report.exploration.runs} schedules)")


def watch_fairness() -> None:
    print("\n== fairness: starvation gaps under a fair scheduler ==")
    from repro.core import RoundRobinPolicy, Scheduler
    from repro.verify import fairness_report

    def worker(tag):
        for _ in range(30):
            yield Pause()
    sched = Scheduler(RoundRobinPolicy())
    for tag in ("A", "B", "C"):
        sched.spawn(worker, tag, name=tag)
    report = fairness_report(sched.run())
    for name, row in sorted(report.items()):
        print(f"  task {name}: {row['steps']} steps, "
              f"max starvation gap {row['max_gap']}")


if __name__ == "__main__":
    hunt_the_race()
    hunt_the_deadlock()
    watch_fairness()
