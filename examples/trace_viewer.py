#!/usr/bin/env python
"""Trace viewer tour — instrument a run, export it, read the numbers.

1. run a problem with kernel metrics attached and print the report;
2. export the trace as Chrome `trace_event` JSON (open the file in
   chrome://tracing or https://ui.perfetto.dev — task lanes, message
   flow arrows, mailbox depth counters);
3. stream the same run as JSONL and as the full vector-clocked listing;
4. explore the schedule space and read the reduction statistics.

Run:  python examples/trace_viewer.py [outdir]
"""

import json
import sys
from pathlib import Path

from repro.core import RandomPolicy, Scheduler
from repro.obs import KernelMetrics
from repro.problems import kernel_program
from repro.verify import explore


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")

    # ------------------------------------------------------------------
    # 1. one instrumented run (message passing: ping/pong round trips)
    # ------------------------------------------------------------------
    print("== 1. kernel metrics ==")
    metrics = KernelMetrics()
    sched = Scheduler(RandomPolicy(7), raise_on_deadlock=False,
                      metrics=metrics)
    kernel_program("pingpong", rounds=3)(sched)
    trace = sched.run()
    print(f"outcome: {trace.outcome}, output: {trace.output_str()!r}")
    print(metrics.format())

    # ------------------------------------------------------------------
    # 2. Chrome trace_event export (the visual artifact)
    # ------------------------------------------------------------------
    print("\n== 2. chrome trace ==")
    chrome_path = outdir / "pingpong_trace.json"
    chrome_path.write_text(json.dumps(trace.to_chrome_trace(),
                                      sort_keys=True))
    flows = sum(1 for e in trace.events if e.msg_seq is not None)
    print(f"wrote {chrome_path} — open it in chrome://tracing or "
          f"https://ui.perfetto.dev")
    print(f"({len(trace.events)} step slices, {flows} message flow arrows)")

    # ------------------------------------------------------------------
    # 3. the same run as text: JSONL stream + vector-clocked listing
    # ------------------------------------------------------------------
    print("\n== 3. jsonl + listing ==")
    jsonl_path = outdir / "pingpong_trace.jsonl"
    jsonl_path.write_text(trace.to_jsonl())
    print(f"wrote {jsonl_path}; first record:")
    print("  " + trace.to_jsonl().split("\n", 1)[0])
    print("last 4 events, vector clocks on:")
    for line in trace.format(limit=4).splitlines():
        print("  " + line)

    # ------------------------------------------------------------------
    # 4. exploration statistics (what the reductions saved)
    # ------------------------------------------------------------------
    print("\n== 4. explorer stats ==")
    result = explore(kernel_program("bridge_2car"),
                     reduce="sleep+fingerprint")
    print(f"2-car bridge, reduced: {result.summary()}")
    print(json.dumps(result.stats.as_dict(), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
