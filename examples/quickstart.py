#!/usr/bin/env python
"""Quickstart — the three layers of the library in five minutes.

1. run concurrent tasks on the deterministic kernel;
2. *prove* things about them with the explorer;
3. execute the paper's pseudocode notation directly.

Run:  python examples/quickstart.py
"""

from repro.core import (Access, AccessKind, Acquire, Emit, Release,
                        Scheduler, SimLock)
from repro.pseudocode import possible_outputs
from repro.verify import explore, find_races_program


def main() -> None:
    # ------------------------------------------------------------------
    # 1. a concurrent program as generator tasks
    # ------------------------------------------------------------------
    print("== 1. kernel tasks ==")
    sched = Scheduler()

    def greeter(text):
        yield Emit(text)

    sched.spawn(greeter, "hello ")
    sched.spawn(greeter, "world")
    trace = sched.run()
    print("one run:", trace.output_str())

    # ------------------------------------------------------------------
    # 2. exhaustive exploration: find the lost-update race, then fix it
    # ------------------------------------------------------------------
    print("\n== 2. model checking ==")

    def racy(sched):
        state = {"x": 0}

        def increment(name):
            yield Access("x", AccessKind.READ)
            value = state["x"]
            yield Access("x", AccessKind.WRITE)
            state["x"] = value + 1
        sched.spawn(increment, "a")
        sched.spawn(increment, "b")
        return lambda: state["x"]

    result = explore(racy)
    print("racy increments can end at:", sorted(result.observations()),
          "<- 1 is the lost update")
    race = find_races_program(racy)
    print("race detector says:", race.describe())

    def fixed(sched):
        lock = SimLock("counter-lock")
        state = {"x": 0}

        def increment(name):
            yield Acquire(lock)
            state["x"] += 1
            yield Release(lock)
        sched.spawn(increment, "a")
        sched.spawn(increment, "b")
        return lambda: state["x"]

    print("locked increments always end at:",
          sorted(explore(fixed).observations()))

    # ------------------------------------------------------------------
    # 3. the paper's pseudocode, executed
    # ------------------------------------------------------------------
    print("\n== 3. pseudocode (paper Figure 4) ==")
    outputs = possible_outputs("""
x = 10
DEFINE changeX(diff)
  EXC_ACC
    WHILE x + diff < 0
      WAIT()
    ENDWHILE
    x = x + diff
    NOTIFY()
  END_EXC_ACC
ENDDEF
PARA
  changeX(-11)
  changeX(1)
ENDPARA
PRINTLN x
""")
    print("every possible output of Figure 4's program:", outputs)


if __name__ == "__main__":
    main()
