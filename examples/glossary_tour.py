#!/usr/bin/env python
"""The executable glossary — conclusion 3 of the paper.

"A standard glossary of well-defined terminology is essential."  Here
every definition comes with a running demonstration, and terminology
misconceptions (the T-level of Table I) are listed next to the term
they misread.

Run:  python examples/glossary_tour.py
"""

from repro.misconceptions import by_id
from repro.study.glossary import GLOSSARY, demonstrate


def main() -> None:
    for entry in GLOSSARY:
        print(f"== {entry.name} ==")
        print(f"  {entry.definition}")
        if entry.misread_by:
            for mid in entry.misread_by:
                m = by_id(mid)
                print(f"  misread by {mid} [{m.level}]: "
                      f"{m.description[:64]}")
        evidence = demonstrate(entry.name)
        for key, value in evidence.items():
            rendered = str(value)
            if len(rendered) > 70:
                rendered = rendered[:67] + "..."
            print(f"  demo: {key} = {rendered}")
        print()


if __name__ == "__main__":
    main()
