#!/usr/bin/env python
"""Week 3 of the course: UML modelling of concurrent systems.

* define the single-lane bridge as a guarded state machine;
* apply the paper's two transformations — to a monitor implementation
  and to a message-passing implementation — emitting runnable
  pseudocode;
* execute the generated code and verify it against the reference
  semantics;
* render a Test-1 witness as the sequence diagram a student would
  draw, and recover the class diagram of the message-passing design.

Run:  python examples/uml_modeling.py
"""

from repro.core import RandomPolicy
from repro.pseudocode import compile_program, parse
from repro.problems.single_lane_bridge import MP_PSEUDOCODE, mp_bridge_lts
from repro.uml import (bridge_state_machine, diagram_from_path,
                       extract_class_model, render_boxes, simulate,
                       to_message_pseudocode, to_monitor_pseudocode)
from repro.verify import ScenarioQuestion, answer_question_lts


def transformations() -> None:
    machine = bridge_state_machine()
    print("== state machine ==")
    print(f"  variables: {machine.variables}")
    for t in machine.transitions:
        print(f"  {t.event}: [{t.guard}] / {'; '.join(t.effects)}")

    print("\n== transformation 1: monitors (generated pseudocode) ==")
    monitor_src = to_monitor_pseudocode(machine)
    print("\n".join("  " + line
                    for line in monitor_src.splitlines()[:12]) + "\n  ...")

    # execute the generated code concurrently, check against reference
    program = monitor_src + """
PARA
  redEnter()
  redExit()
  blueEnter()
  blueExit()
ENDPARA
PRINT redCount + blueCount
"""
    runtime = compile_program(program)
    results = {runtime.run(RandomPolicy(seed)).output_text().strip()
               for seed in range(10)}
    reference = simulate(machine, ["redEnter", "redExit", "blueEnter",
                                   "blueExit"])
    print(f"  10 random schedules all print: {results} "
          f"(reference total: {sum(reference.values())})")

    print("\n== transformation 2: message passing ==")
    message_src = to_message_pseudocode(machine)
    print("\n".join("  " + line
                    for line in message_src.splitlines()[:8]) + "\n  ...")
    parsed = parse(message_src)
    print(f"  generated class: {list(parsed.classes)} with "
          f"{len(parsed.classes['Bridge'].methods['start'].body[0].arms)} "
          f"message arms")


def sequence_diagram() -> None:
    print("\n== sequence diagram from a model-checker witness ==")
    question = ScenarioQuestion(
        qid="first-exit", text="redCarA is the first car to exit",
        scenario=(("redCarA", "recv", ("succeedExit", 1)),))
    answer = answer_question_lts(mp_bridge_lts(), question)
    diagram = diagram_from_path(answer.witness,
                                participants=["redCarA", "bridge"])
    print(diagram.render())


def class_diagram() -> None:
    print("\n== class diagram recovered from the MP bridge pseudocode ==")
    model = extract_class_model(parse(MP_PSEUDOCODE))
    print(render_boxes(model))


if __name__ == "__main__":
    transformations()
    sequence_diagram()
    class_diagram()
