#!/usr/bin/env python
"""Profile the single-lane bridge on all three real runtimes.

The bridge is the paper's running example; this script runs it on
threads, actors, and coroutines with a :class:`repro.obs.Profiler`
attached to each runtime's own primitives, then prints what the wall
clock can't show: where the time went *inside* each runtime — lock
contention and monitor waits for threads, mailbox latency and queue
depth for actors, resume latency and ready-queue residency for
coroutines.

Also exports a Chrome trace of the bench repetitions
(``runtime_showdown_trace.json`` — open in chrome://tracing or
https://ui.perfetto.dev).

Run:  python examples/runtime_showdown.py
"""

import json
from pathlib import Path

from repro.bench import Workload, run_bench

#: the per-runtime signals worth calling out next to the wall clock
HIGHLIGHTS = {
    "threads": ("lock.acquires", "lock.contended", "lock.wait_us",
                "monitor.waits", "monitor.wait_us"),
    "actors": ("mailbox.depth_max", "mailbox.latency_us",
               "mailbox.processed"),
    "coroutines": ("coro.resumes", "coro.resume_us", "coro.ready_wait_us"),
}


def main() -> None:
    workload = Workload(workers=4, ops=50, warmup=1, repetitions=5)
    print("== the bridge, raced on the three real runtimes ==")
    print(f"   ({workload.workers} cars x {workload.ops} crossings, "
          f"{workload.repetitions} repetitions; CPython GIL: threads "
          "show blocking structure, not parallel speedup)\n")
    result = run_bench(problems=["bridge"], workload=workload)

    print(result.markdown())
    for cell in result.cells:
        runtime = cell["runtime"]
        profile = cell["profile"]
        print(f"\n-- inside the {runtime} runtime --")
        if not any(name in profile["counters"] or name in profile["gauges"]
                   or name in profile["histograms"]
                   for name in HIGHLIGHTS[runtime]):
            print("   (no contention observed this run)")
        for name in HIGHLIGHTS[runtime]:
            if name in profile["counters"]:
                print(f"   {name:<22} {profile['counters'][name]}")
            elif name in profile["gauges"]:
                print(f"   {name:<22} {profile['gauges'][name]:.0f}")
            elif name in profile["histograms"]:
                h = profile["histograms"][name]
                print(f"   {name:<22} n={h['count']} p50={h['p50']:.1f}us "
                      f"p95={h['p95']:.1f}us p99={h['p99']:.1f}us")

    out = Path(__file__).parent / "runtime_showdown_trace.json"
    out.write_text(json.dumps(result.chrome_trace(), sort_keys=True))
    print(f"\nwrote {out}")
    print("open in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
