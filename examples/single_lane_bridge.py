#!/usr/bin/env python
"""The single-lane bridge — the paper's Test-1 problem, end to end.

* runs the bridge in all three course models (threads, actors,
  coroutines) with a safety audit;
* model-checks both exam forms (shared memory / message passing);
* answers the paper's Figure 6 and Figure 7 sample questions exactly,
  then shows how two misconceptions change the answers.

Run:  python examples/single_lane_bridge.py
"""

from repro.problems.single_lane_bridge import (MPFlags, SMFlags,
                                               bridge_invariant,
                                               mp_bridge_lts,
                                               run_actor_bridge,
                                               run_coroutine_bridge,
                                               run_threads_bridge,
                                               sm_bridge_lts)
from repro.verify import ScenarioQuestion, answer_question_lts

A, B, BL = "redCarA", "redCarB", "blueCarA"


def run_three_models() -> None:
    print("== the bridge in three models ==")
    for name, runner in [("threads   ", run_threads_bridge),
                         ("actors    ", run_actor_bridge),
                         ("coroutines", run_coroutine_bridge)]:
        log = runner(crossings=3)
        crossings = sum(1 for e in log if e[1] == "exit-bridge")
        print(f"  {name}: {crossings} safe crossings, audit passed")


def model_check() -> None:
    print("\n== exhaustive model checking ==")
    sm = sm_bridge_lts()
    result = sm.explore()
    print(f"  shared-memory model: {result.states} states, "
          f"{len(result.deadlocks)} deadlocks")
    print("  one-direction invariant:",
          "holds" if sm.check_invariant(bridge_invariant) is None
          else "VIOLATED")
    mp = mp_bridge_lts()
    print(f"  message-passing model: {mp.explore().states} states")


def figure6_question() -> None:
    print("\n== Figure 6 question (m), shared memory ==")
    q = ScenarioQuestion(
        qid="(m)",
        text="redCarB returns from redEnter, then calls redExit and "
             "blocks on the EXC_ACC marker — before redCarA returns.",
        history=((A, "call", "redEnter"), (B, "call", "redEnter")),
        scenario=((B, "return", "redEnter"), (B, "call", "redExit"),
                  (B, "acquire", "redExit")),
        forbidden=((A, "return", "redEnter"),))
    answer = answer_question_lts(sm_bridge_lts(), q)
    print(f"  correct semantics: {answer.verdict} ({answer.explanation})")
    for step in (answer.witness or [])[:6]:
        print(f"    {step.event}")

    s7 = sm_bridge_lts(flags=SMFlags(lock_span_method=True))
    q_s7 = ScenarioQuestion(
        qid="(m-s7)", text="B returns from redEnter while A is inside",
        history=((A, "acquire", "redEnter"), (B, "call", "redEnter")),
        scenario=((B, "return", "redEnter"),),
        forbidden_anywhere=((A, "return", "redEnter"), (A, "wait")))
    print("  a student holding S7 (lock = whole method) answers:",
          answer_question_lts(s7, q_s7).verdict,
          "(correct:", answer_question_lts(sm_bridge_lts(), q_s7).verdict
          + ")")


def figure7_question() -> None:
    print("\n== Figure 7 question (m), message passing ==")
    q = ScenarioQuestion(
        qid="(m)",
        text="redCarB receives succeedEnter, sends redExit, and receives "
             "MESSAGE.succeedExit(2).",
        history=((A, "send", "redEnter"), (B, "send", "redEnter")),
        scenario=((B, "recv", "succeedEnter"), (B, "send", "redExit"),
                  (B, "recv", ("succeedExit", 2))))
    answer = answer_question_lts(mp_bridge_lts(), q)
    print(f"  correct semantics: {answer.verdict}")

    q_order = ScenarioQuestion(
        qid="(order)",
        text="the bridge handles redCarB's message before redCarA's, "
             "although redCarA sent first",
        history=((A, "send", "redEnter"), (B, "send", "redEnter")),
        scenario=(("bridge", "handle", B, "redEnter"),),
        forbidden_anywhere=(("bridge", "handle", A, "redEnter"),))
    correct = answer_question_lts(mp_bridge_lts(), q_order).verdict
    m5 = answer_question_lts(
        mp_bridge_lts(flags=MPFlags(delivery="fifo")), q_order).verdict
    print(f"  message overtaking: correct={correct}, "
          f"a student holding M5 (FIFO world) says {m5}")


if __name__ == "__main__":
    run_three_models()
    model_check()
    figure6_question()
    figure7_question()
