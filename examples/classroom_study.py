#!/usr/bin/env python
"""Reproduce the paper's §V-§VI study end to end.

Samples a 16-student cohort calibrated to Table III, splits it into the
S/D groups with equivalent prior performance, administers the
two-session Test 1 in opposite section orders, grades it with the
model-checking engine, and prints the regenerated Tables I-III and the
survey findings next to the paper's published numbers.

Run:  python examples/classroom_study.py
"""

from repro.study import run_full_study

PAPER = {
    "S": {"sm": 56.67, "mp": 81.72, "total": 138.39},
    "D": {"sm": 76.14, "mp": 65.93, "total": 142.07},
    "all": {"sm": 65.19, "mp": 74.81,
            "session1": 60.71, "session2": 79.20, "session_p": 0.005},
}


def main() -> None:
    study = run_full_study(seed=2013)
    print(study.render())

    print("\n" + "=" * 64)
    print("PAPER vs REPRODUCTION (Table II cells)")
    print("=" * 64)
    summary = study.summary
    rows = [
        ("S shared-memory mean", PAPER["S"]["sm"], summary["S"]["sm_mean"]),
        ("S message-passing mean", PAPER["S"]["mp"], summary["S"]["mp_mean"]),
        ("D shared-memory mean", PAPER["D"]["sm"], summary["D"]["sm_mean"]),
        ("D message-passing mean", PAPER["D"]["mp"], summary["D"]["mp_mean"]),
        ("all shared-memory", PAPER["all"]["sm"], summary["all"]["sm_mean"]),
        ("all message-passing", PAPER["all"]["mp"],
         summary["all"]["mp_mean"]),
        ("session 1 mean", PAPER["all"]["session1"],
         summary["all"]["session1_mean"]),
        ("session 2 mean", PAPER["all"]["session2"],
         summary["all"]["session2_mean"]),
    ]
    for label, paper, measured in rows:
        print(f"  {label:<26} paper {paper:>6.2f}   measured "
              f"{measured:>6.2f}")
    session_test = summary["all"]["session_test"]
    print(f"  session effect p-value     paper {PAPER['all']['session_p']:.3f}"
          f"    measured {session_test.pvalue:.4f}")

    print("\nShape checks the paper's conclusions rest on:")
    checks = [
        ("message passing scored higher than shared memory",
         summary["all"]["mp_mean"] > summary["all"]["sm_mean"]),
        ("each group did better on its second section",
         summary["S"]["mp_mean"] > summary["S"]["sm_mean"]
         and summary["D"]["sm_mean"] > summary["D"]["mp_mean"]),
        ("session-2 learning effect significant (p < 0.05)",
         session_test.pvalue < 0.05),
        ("students report shared memory harder",
         study.difficulty.sm_harder > study.difficulty.mp_harder),
        ("most students chose their better section for the grade",
         study.choice.chose_correctly / study.choice.respondents > 0.75),
    ]
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")


if __name__ == "__main__":
    main()
