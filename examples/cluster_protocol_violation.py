#!/usr/bin/env python
"""A session-type violation crossing real sockets, caught live.

The client node pins a conversation contract on its wire traffic:

    boot = INIT -> WORK*        (checked at the send point)

and talks to a worker actor hosted in a *real subprocess* over the
socket transport.  The conforming prefix is silent; the moment the
client re-sends ``INIT`` mid-session the conformance pump flags a
``protocol-violation`` hazard, the attached telemetry agent treats it
as an incident, and a flight-recorder postmortem bundle lands on disk
— the same artifact ``repro postmortem`` inspects.

    python examples/cluster_protocol_violation.py
    python examples/cluster_protocol_violation.py --out my-artifacts

Exits non-zero if the violation is not caught or the bundle is not
written, so CI can use it as a cross-process smoke test.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.cluster import (
    ClusterConfig,
    ClusterNode,
    PickleSerializer,
    SocketTransport,
    cluster_bus,
)
from repro.cluster.bench import spawn_worker
from repro.obs import Protocol
from repro.obs.telemetry import TelemetryAgent

BOOT = Protocol("boot", "INIT -> WORK*", parties=("worker",), at="send")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="cluster-artifacts",
                    help="directory for the postmortem bundle")
    args = ap.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    proc, port = spawn_worker(name="svc")
    bus = cluster_bus(protocols=[BOOT])
    client = ClusterNode("client",
                         SocketTransport("client", listen=False),
                         serializer=PickleSerializer(),
                         config=ClusterConfig(telemetry_interval=0.2),
                         monitors=bus)
    agent = TelemetryAgent(postmortem_dir=str(out)).attach(client)
    try:
        client.connect("svc", ("127.0.0.1", port))
        worker = client.spawn_remote("svc", "cluster-echo", "worker")

        worker.tell(("init", 0))           # the conforming prefix...
        for k in range(5):
            worker.tell(("work", k))
        client.drain()
        if bus.hazards:
            print("unexpected hazards on the conforming prefix:",
                  bus.hazards, file=sys.stderr)
            return 1
        print("conforming prefix: 6 messages over the socket, silent")

        worker.tell(("init", 99))          # ...then INIT mid-session
        client.drain()

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not agent.postmortems:
            time.sleep(0.05)

        flagged = [h for h in bus.hazards
                   if h.kind == "protocol-violation"]
        if not flagged:
            print("the violation went unflagged", file=sys.stderr)
            return 1
        hz = flagged[0]
        print(f"flagged: [{hz.severity}] {hz.subject}: {hz.message}")

        bundles = sorted(out.glob("pm-*.json"))
        pm = next((json.loads(b.read_text()) for b in bundles
                   if "protocol" in b.read_text()), None)
        if pm is None:
            print("no protocol postmortem bundle written",
                  file=sys.stderr)
            return 1
        print(f"postmortem bundle: kind={pm['kind']} "
              f"subject={pm['detail']['subject']} "
              f"({len(bundles)} bundle(s) in {out})")
        return 0
    finally:
        client.close()
        proc.terminate()
        proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
