"""Counterexample explanation: minimization, critical pair, reports, CLI."""

import pytest

from repro.obs import (explain_program, find_critical_pair, html_report,
                       minimize_schedule)
from repro.problems.bug_gallery import gallery
from repro.verify import explore
from repro.verify.explorer import run_schedule


def _spec(bug_id):
    return next(s for s in gallery() if s.bug_id == bug_id)


def _is_deadlock(trace, observation):
    return trace.outcome == "deadlock"


class TestMinimization:
    def test_minimized_schedule_still_reproduces(self):
        program = _spec("deadlock-lock-ordering").buggy
        res = explore(program, max_runs=5000)
        witness = res.deadlocks[0].schedule()
        schedule, trace, observation, replays = minimize_schedule(
            program, witness, _is_deadlock)
        assert trace.outcome == "deadlock"
        # the contract: every candidate was re-executed, so the result
        # replays to the violation from scratch
        replayed, _ = run_schedule(program, schedule)
        assert replayed.outcome == "deadlock"
        assert replayed.schedule() == trace.schedule()

    def test_minimized_no_longer_than_witness(self):
        for bug_id in ("deadlock-lock-ordering", "liveness-lost-wakeup"):
            program = _spec(bug_id).buggy
            res = explore(program, max_runs=5000)
            witness = res.deadlocks[0].schedule()
            schedule, _, _, replays = minimize_schedule(
                program, witness, _is_deadlock)
            assert len(schedule) <= len(witness), bug_id
            assert replays >= 1

    def test_non_reproducing_input_rejected(self):
        program = _spec("deadlock-lock-ordering").buggy
        done, _ = run_schedule(program, [0] * 64)
        assert done.outcome == "done"   # round-robin completes fine
        with pytest.raises(ValueError):
            minimize_schedule(program, done.schedule(), _is_deadlock)


class TestCriticalPair:
    def test_transfer_critical_pair_is_the_second_acquire(self):
        program = _spec("deadlock-lock-ordering").buggy
        explanation = explain_program(program)
        assert explanation is not None and explanation.kind == "deadlock"
        critical = explanation.critical
        assert critical is not None
        assert critical.alternative_outcome == "done"
        # the racing pair: both tasks trying the same second lock
        assert "acquire" in critical.chosen.effect_repr
        assert critical.chosen.task_name != critical.alternative.task_name

    def test_critical_pair_alternative_is_feasible(self):
        program = _spec("deadlock-lock-ordering").buggy
        explanation = explain_program(program)
        critical = explanation.critical
        # replaying the prefix with the alternative index avoids the bug
        alt = list(explanation.schedule)
        alt[critical.step] = explanation.critical.alternative.chosen_index
        trace, _ = run_schedule(program, alt[:critical.step + 1])
        assert trace.outcome == "done"

    def test_find_critical_pair_none_when_forced(self):
        def forced(sched):
            def solo():
                yield from iter(())
            sched.spawn(solo, name="solo")
            return lambda: None

        trace, _ = run_schedule(forced, [])
        pair, replays = find_critical_pair(
            forced, trace, lambda t, o: True)
        assert pair is None


class TestExplainProgram:
    def test_explains_the_bridge_bug(self):
        from repro.problems import kernel_program
        explanation = explain_program(kernel_program("bridge_bug"),
                                      max_runs=5000)
        assert explanation is not None
        assert len(explanation.schedule) <= len(
            explanation.original_schedule)
        narrative = explanation.narrative()
        assert "critical decision" in narrative
        assert "BridgeCollision" in narrative
        assert any(h.kind == "task-failure" for h in explanation.hazards)

    def test_narrative_names_the_critical_transition_pair(self):
        explanation = explain_program(_spec("deadlock-lock-ordering").buggy)
        narrative = explanation.narrative()
        assert "instead of" in narrative
        assert "a-to-b" in narrative and "b-to-a" in narrative

    def test_refuted_misconceptions_resolved_from_catalog(self):
        from repro.problems import kernel_program
        explanation = explain_program(kernel_program("bridge_bug"),
                                      max_runs=5000)
        from repro.misconceptions.catalog import refuted_by
        mids = set(explanation.refuted_misconceptions())
        # the minimal run re-enters the monitor past a sleeping waiter
        assert mids <= {"M3", "M5", "S6"}
        for hazard in explanation.hazards:
            for mis in refuted_by(hazard.kind):
                assert mis.mid in mids

    def test_none_on_a_safe_program(self):
        def safe(sched):
            def worker():
                yield from iter(())
            sched.spawn(worker, name="w")
            return lambda: "ok"

        assert explain_program(safe, max_runs=100) is None


class TestHtmlReport:
    def test_report_is_self_contained_and_complete(self):
        explanation = explain_program(_spec("deadlock-lock-ordering").buggy)
        html = html_report(explanation, title="transfer deadlock")
        assert html.lstrip().lower().startswith("<!doctype html>")
        assert "transfer deadlock" in html
        assert "a-to-b" in html and "b-to-a" in html
        assert 'class="critical"' in html
        assert "circular wait" in html
        assert "<script" not in html   # static: no JS needed


class TestCli:
    def test_monitor_command_flags_gallery_bug(self, capsys):
        from repro.cli import main
        assert main(["monitor", "bug:deadlock-lock-ordering",
                     "--explore"]) == 1
        out = capsys.readouterr().out
        assert "deadlock" in out and "circular wait" in out

    def test_monitor_command_clean_problem(self, capsys):
        from repro.cli import main
        assert main(["monitor", "bridge_2car", "--explore"]) == 0
        assert "bridge_2car" in capsys.readouterr().out

    def test_monitor_command_json(self, capsys):
        import json

        from repro.cli import main
        assert main(["monitor", "bug:deadlock-lock-ordering",
                     "--explore", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["flagged"]
        assert any(h["kind"] == "deadlock" for h in payload["hazards"])

    def test_monitor_unknown_problem(self, capsys):
        from repro.cli import main
        assert main(["monitor", "nope"]) == 2

    def test_explain_command_to_stdout(self, capsys):
        from repro.cli import main
        assert main(["explain", "bug:deadlock-lock-ordering",
                     "--out", "-"]) == 1
        out = capsys.readouterr().out
        assert "minimized schedule" in out
        assert "critical decision" in out

    def test_explain_command_html_to_file(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "report.html"
        assert main(["explain", "bug:deadlock-lock-ordering",
                     "--html", "--out", str(out)]) == 1
        assert out.read_text().lstrip().lower().startswith(
            "<!doctype html>")
        assert "wrote" in capsys.readouterr().err

    def test_explain_command_safe_problem(self, capsys):
        from repro.cli import main
        assert main(["explain", "pingpong", "--max-runs", "2000"]) == 0
        assert "no violation" in capsys.readouterr().out

    def test_trace_command_stdout(self, capsys):
        import json

        from repro.cli import main
        assert main(["trace", "pingpong", "--out", "-",
                     "--format", "jsonl"]) == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines() if ln]
        assert all(json.loads(ln) is not None for ln in lines)

    def test_stats_command_out_file(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "stats.txt"
        assert main(["stats", "pingpong", "--out", str(out)]) == 0
        assert "problem : pingpong" in out.read_text()

    def test_run_command_monitor_flag(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "prog.pseudo"
        path.write_text('PRINT "hi"')
        assert main(["run", str(path), "--monitor"]) == 0
        assert "hi" in capsys.readouterr().out
