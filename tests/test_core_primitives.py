"""Locks, semaphores, barriers and monitors on the simulation kernel."""

import pytest

from repro.core import (Acquire, DeadlockError, Emit, IllegalEffectError,
                        Notify, Pause, Release, RandomPolicy, Scheduler,
                        SimBarrier, SimLock, SimMonitor, SimSemaphore,
                        TaskFailed, Wait, locked, run_tasks, synchronized,
                        wait_while)
from repro.verify import check_mutual_exclusion, explore


class TestSimLock:
    def test_mutual_exclusion_under_all_schedules(self):
        def program(sched):
            lock = SimLock("L")

            def worker(name):
                yield Acquire(lock)
                yield Emit(("enter", name))
                yield Pause("inside")
                yield Emit(("exit", name))
                yield Release(lock)
            sched.spawn(worker, "a")
            sched.spawn(worker, "b")
        res = explore(program)
        assert res.complete
        for trace in res.witnesses.values():
            assert check_mutual_exclusion(trace) is None

    def test_reentrant_acquire(self):
        lock = SimLock("L")

        def worker():
            yield Acquire(lock)
            yield Acquire(lock)
            yield Release(lock)
            assert lock.held
            yield Release(lock)
            assert not lock.held
        run_tasks(worker)

    def test_non_reentrant_self_deadlock(self):
        lock = SimLock("L", reentrant=False)

        def worker():
            yield Acquire(lock)
            yield Acquire(lock)
        with pytest.raises(DeadlockError):
            run_tasks(worker)

    def test_release_without_ownership_is_error(self):
        lock = SimLock("L")

        def thief():
            yield Release(lock)
        with pytest.raises(TaskFailed) as err:
            run_tasks(thief)
        assert isinstance(err.value.original, IllegalEffectError)

    def test_locked_helper_releases_on_exception(self):
        lock = SimLock("L")

        def body():
            yield Pause()
            raise RuntimeError("inside critical section")

        def worker():
            yield from locked(lock, body())
        s = Scheduler(raise_on_failure=False)
        s.spawn(worker)
        s.run()
        assert not lock.held


class TestSimSemaphore:
    def test_permits_bound_concurrency(self):
        def program(sched):
            sem = SimSemaphore(2, "sem")
            state = {"inside": 0, "max_inside": 0}

            def worker(i):
                yield Acquire(sem)
                state["inside"] += 1
                state["max_inside"] = max(state["max_inside"],
                                          state["inside"])
                yield Pause("in section")
                state["inside"] -= 1
                yield Release(sem)
            for i in range(3):
                sched.spawn(worker, i)
            return lambda: state["max_inside"]
        res = explore(program, max_runs=50_000)
        assert res.complete
        assert max(res.observations()) == 2

    def test_zero_permit_semaphore_blocks_until_release(self):
        sem = SimSemaphore(0, "sem")

        def releaser():
            yield Pause()
            yield Release(sem)

        def taker():
            yield Acquire(sem)
            yield Emit("got it")
        trace = run_tasks(taker, releaser)
        assert trace.output == ["got it"]

    def test_negative_permits_rejected(self):
        with pytest.raises(ValueError):
            SimSemaphore(-1)


class TestSimBarrier:
    def test_all_parties_cross_together(self):
        barrier = SimBarrier(3, "b")

        def worker(i):
            yield Emit(("before", i))
            yield from barrier.wait_gen()
            yield Emit(("after", i))
        trace = run_tasks(*(lambda i=i: worker(i) for i in range(3)))
        befores = [i for tag, i in trace.output if tag == "before"]
        first_after = next(idx for idx, (tag, _) in enumerate(trace.output)
                           if tag == "after")
        assert len(befores) == 3
        # every "before" precedes every "after"
        assert all(tag == "before" for tag, _ in trace.output[:first_after])

    def test_barrier_is_cyclic(self):
        barrier = SimBarrier(2, "b")

        def worker(i):
            for round_no in range(2):
                yield from barrier.wait_gen()
                yield Emit((i, round_no))
        run_tasks(lambda: worker(0), lambda: worker(1))
        assert barrier.generation == 2

    def test_insufficient_parties_deadlocks(self):
        barrier = SimBarrier(2, "b")

        def lonely():
            yield from barrier.wait_gen()
        with pytest.raises(DeadlockError):
            run_tasks(lonely)


class TestSimMonitor:
    def test_figure4_wait_notify(self):
        """The paper's Figure 4: changeX(-11) must wait for changeX(1)."""
        def program(sched):
            mon = SimMonitor("M")
            state = {"x": 10}

            def change(diff):
                yield Acquire(mon)
                while state["x"] + diff < 0:
                    yield Wait(mon)
                state["x"] += diff
                yield Notify(mon, all=True)
                yield Release(mon)
            sched.spawn(change, -11)
            sched.spawn(change, 1)
            return lambda: state["x"]
        res = explore(program)
        assert res.complete
        assert res.observations() == {0}

    def test_wait_outside_monitor_is_error(self):
        mon = SimMonitor("M")

        def bad():
            yield Wait(mon)
        with pytest.raises(TaskFailed):
            run_tasks(bad)

    def test_notify_without_ownership_is_error(self):
        mon = SimMonitor("M")

        def bad():
            yield Notify(mon)
        with pytest.raises(TaskFailed):
            run_tasks(bad)

    def test_wait_releases_full_reentrancy_depth(self):
        mon = SimMonitor("M")
        state = {"flag": False}

        def waiter():
            yield Acquire(mon)
            yield Acquire(mon)          # depth 2
            while not state["flag"]:
                yield Wait(mon)
            # woken: depth must be restored to 2
            yield Release(mon)
            yield Release(mon)
            yield Emit("done")

        def setter():
            yield Acquire(mon)          # possible only if wait stripped depth
            state["flag"] = True
            yield Notify(mon, all=True)
            yield Release(mon)
        trace = run_tasks(waiter, setter)
        assert trace.output == ["done"]

    def test_notify_one_wakes_fifo(self):
        mon = SimMonitor("M")
        state = {"go": 0}

        def waiter(i):
            yield Acquire(mon)
            while state["go"] <= i:
                yield Wait(mon)
            yield Emit(i)
            yield Release(mon)

        def notifier():
            for _ in range(2):
                yield Acquire(mon)
                state["go"] += 10
                yield Notify(mon, all=False)
                yield Release(mon)
        trace = run_tasks(lambda: waiter(0), lambda: waiter(1), notifier)
        assert sorted(trace.output) == [0, 1]

    def test_synchronized_helper(self):
        mon = SimMonitor("M")

        def body():
            yield Emit("inside")

        def worker():
            yield from synchronized(mon, body())
        assert run_tasks(worker).output == ["inside"]

    def test_wait_while_rechecks_predicate(self):
        """Mesa semantics: barging means the guard must be re-checked."""
        def program(sched):
            mon = SimMonitor("M")
            state = {"tokens": 1}

            def taker(name):
                yield Acquire(mon)
                yield from wait_while(mon, lambda: state["tokens"] == 0)
                state["tokens"] -= 1
                yield Emit(("took", name))
                yield Release(mon)

            def giver():
                yield Acquire(mon)
                state["tokens"] += 1
                yield Notify(mon, all=True)
                yield Release(mon)
            sched.spawn(taker, "a")
            sched.spawn(taker, "b")
            sched.spawn(giver)
            return lambda: state["tokens"]
        res = explore(program)
        assert res.complete
        # two tokens total, two takers: always exactly zero left
        assert res.observations() == {0}
