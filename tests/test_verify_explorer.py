"""The replay-DFS explorer: exactness, budgets, replay."""

from repro.core import Choice, Emit, Pause, Scheduler
from repro.verify import explore, run_schedule


def _emitters(*tags):
    def program(sched):
        for tag in tags:
            def t(tag=tag):
                yield Emit(tag)
            sched.spawn(t, name=tag)
    return program


class TestExactEnumeration:
    def test_two_tasks_two_outputs(self):
        res = explore(_emitters("a", "b"))
        assert res.complete
        assert res.output_strings() == {"ab", "ba"}

    def test_three_tasks_six_permutations(self):
        res = explore(_emitters("a", "b", "c"))
        assert res.complete
        assert len(res.output_strings()) == 6

    def test_run_count_equals_leaves(self):
        # each task takes 2 scheduler steps (the Emit and the final
        # resume), so the step-level tree has C(4,2) = 6 leaves even
        # though only 2 distinct outputs exist
        res = explore(_emitters("a", "b"))
        assert res.runs == 6
        assert len(res.output_strings()) == 2

    def test_single_task_single_run(self):
        res = explore(_emitters("only"))
        assert res.runs == 1
        assert res.complete

    def test_choice_fanout_explored(self):
        def program(sched):
            def chooser():
                first = yield Choice([1, 2])
                second = yield Choice([10, 20])
                yield Emit(first + second)
            sched.spawn(chooser)
        res = explore(program)
        assert res.output_strings() == {"11", "21", "12", "22"}


class TestBudgets:
    def test_budget_marks_incomplete(self):
        res = explore(_emitters("a", "b", "c", "d"), max_runs=3)
        assert not res.complete
        assert res.runs == 3

    def test_partial_results_are_real(self):
        full = explore(_emitters("a", "b", "c"))
        partial = explore(_emitters("a", "b", "c"), max_runs=2)
        assert partial.output_strings() <= full.output_strings()


class TestOutcomeClassification:
    def test_deadlock_counted_not_raised(self):
        from repro.core import Acquire, Pause, Release, SimLock

        def program(sched):
            l1, l2 = SimLock("l1"), SimLock("l2")

            def ab():
                yield Acquire(l1)
                yield Pause()
                yield Acquire(l2)
                yield Release(l2)
                yield Release(l1)

            def ba():
                yield Acquire(l2)
                yield Pause()
                yield Acquire(l1)
                yield Release(l1)
                yield Release(l2)
            sched.spawn(ab, name="ab")
            sched.spawn(ba, name="ba")
        res = explore(program)
        assert res.complete
        assert res.outcomes["deadlock"] > 0
        assert res.outcomes["done"] > 0
        assert res.deadlocks  # witness traces retained

    def test_failures_sampled(self):
        def program(sched):
            def bad():
                yield Pause()
                raise ValueError("nope")
            sched.spawn(bad)
        res = explore(program)
        assert res.outcomes["failed"] == res.runs
        assert res.failures


class TestObservations:
    def test_observation_function_called_per_run(self):
        def program(sched):
            state = {"n": 0}

            def worker():
                state["n"] += 1
                yield Pause()
            sched.spawn(worker)
            return lambda: state["n"]
        res = explore(program)
        assert res.observations() == {1}

    def test_dict_observations_frozen_hashable(self):
        def program(sched):
            def worker():
                yield Pause()
            sched.spawn(worker)
            return lambda: {"key": [1, 2], "nested": {"a": 1}}
        res = explore(program)
        assert len(res.terminals) == 1

    def test_witness_for_output(self):
        res = explore(_emitters("a", "b"))
        witness = res.witness_for_output("ba")
        assert witness is not None
        trace, _ = run_schedule(_emitters("a", "b"), witness.schedule())
        assert trace.output_str() == "ba"


class TestRunSchedule:
    def test_empty_schedule_uses_first_choice_tail(self):
        trace, obs = run_schedule(_emitters("a", "b"), [])
        assert trace.outcome == "done"
        assert len(trace.output) == 2

    def test_schedule_steers_run(self):
        full = explore(_emitters("a", "b"))
        for (out, _), witness in full.witnesses.items():
            trace, _ = run_schedule(_emitters("a", "b"), witness.schedule())
            assert tuple(trace.output) == out

    def test_summary_renders(self):
        res = explore(_emitters("a", "b"))
        assert "6 runs" in res.summary()
        assert "complete" in res.summary()
        assert "2 distinct terminals" in res.summary()
