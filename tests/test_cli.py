"""CLI contract tests — exit codes and ``--json`` payloads.

The CLI is scripting surface: CI jobs and the study pipeline shell out
to it, so its exit-code conventions are load-bearing — 0 success,
1 violation/hazard/regression found, 2 bad arguments — and the
``--json`` payloads must stay parseable.  Everything runs in-process
through ``repro.cli.main(argv)``.
"""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    """Invoke the CLI in-process; return (exit code, stdout, stderr)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------

BENCH_FAST = ("--workers", "1", "--ops", "3", "--warmup", "0",
              "--repetitions", "1")


def test_bench_success_prints_table(capsys):
    code, out, err = run_cli(
        capsys, "bench", "--problems", "pingpong",
        "--runtimes", "coroutines", *BENCH_FAST)
    assert code == 0
    assert out.splitlines()[0].startswith("| problem |")
    assert "| pingpong |" in out
    assert "bench: pingpong on coroutines" in err


def test_bench_json_payload_is_schema_stable(capsys):
    code, out, _ = run_cli(
        capsys, "bench", "--problems", "pingpong,sum_workers",
        "--runtimes", "coroutines,threads", "--json", *BENCH_FAST)
    assert code == 0
    payload = json.loads(out)
    assert payload["schema"] == 1
    assert payload["regressions"] == []
    assert len(payload["cells"]) == 4
    for cell in payload["cells"]:
        assert {"problem", "runtime", "wall_us", "throughput_ops_per_s",
                "profile"} <= set(cell)


def test_bench_unknown_problem_exits_2(capsys):
    code, _, err = run_cli(capsys, "bench", "--problems", "nope",
                           *BENCH_FAST)
    assert code == 2
    assert "unknown bench problem" in err
    assert "known problems:" in err


def test_bench_unknown_runtime_exits_2(capsys):
    code, _, err = run_cli(capsys, "bench", "--runtimes", "fibers",
                           "--problems", "pingpong", *BENCH_FAST)
    assert code == 2
    assert "unknown runtime" in err


def test_bench_regression_gate_exits_1(capsys, tmp_path):
    baseline = tmp_path / "BENCH_runtimes.json"
    baseline.write_text(json.dumps({
        "schema": 1, "tolerance": 0.5,
        "cells": {"pingpong.coroutines":
                  {"throughput_ops_per_s": 1e12, "wall_us_p95": 0.001}},
    }))
    code, _, err = run_cli(
        capsys, "bench", "--problems", "pingpong",
        "--runtimes", "coroutines", "--baseline", str(baseline),
        *BENCH_FAST)
    assert code == 1
    assert "REGRESSION: pingpong.coroutines" in err


def test_bench_passing_gate_and_update_baseline(capsys, tmp_path):
    baseline = tmp_path / "BENCH_runtimes.json"
    baseline.write_text(json.dumps({
        "schema": 1, "tolerance": 0.8,
        "cells": {"pingpong.coroutines":
                  {"throughput_ops_per_s": 0.001, "wall_us_p95": 1e12}},
    }))
    code, _, _ = run_cli(
        capsys, "bench", "--problems", "pingpong",
        "--runtimes", "coroutines", "--baseline", str(baseline),
        *BENCH_FAST)
    assert code == 0
    code, _, err = run_cli(
        capsys, "bench", "--problems", "pingpong",
        "--runtimes", "coroutines", "--baseline", str(baseline),
        "--update-baseline", *BENCH_FAST)
    assert code == 0
    assert "updated baseline" in err
    updated = json.loads(baseline.read_text())
    assert updated["tolerance"] == 0.8       # tolerance survives rewrite
    assert updated["cells"]["pingpong.coroutines"][
        "throughput_ops_per_s"] > 0.001


def test_bench_trace_dir_writes_chrome_trace(capsys, tmp_path):
    code, _, err = run_cli(
        capsys, "bench", "--problems", "pingpong",
        "--runtimes", "coroutines", "--trace-dir", str(tmp_path),
        *BENCH_FAST)
    assert code == 0
    trace = json.loads((tmp_path / "bench_trace.json").read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])
    assert "bench_trace.json" in err


def test_bench_report_writes_detail_to_file(capsys, tmp_path):
    out_file = tmp_path / "report.md"
    code, _, _ = run_cli(
        capsys, "bench", "--problems", "pingpong",
        "--runtimes", "coroutines", "--report", "--out", str(out_file),
        *BENCH_FAST)
    assert code == 0
    text = out_file.read_text()
    assert "### pingpong on coroutines" in text


# ---------------------------------------------------------------------------
# monitor
# ---------------------------------------------------------------------------

def test_monitor_clean_problem_exits_0(capsys):
    # pingpong emits an info-severity witness hazard (async-send), which
    # must not flag the run — only error/warning severities exit 1
    code, out, _ = run_cli(capsys, "monitor", "pingpong", "--seed", "7")
    assert code == 0
    assert "pingpong: 1 run, outcome done" in out


def test_monitor_hazard_found_exits_1_with_json(capsys):
    # the bug-gallery deadlock variant trips the deadlock detector on
    # exploration
    code, out, _ = run_cli(capsys, "monitor", "bug:deadlock-lock-ordering",
                           "--explore", "--max-runs", "2000", "--json")
    assert code == 1
    payload = json.loads(out)
    assert payload["flagged"] is True
    assert any(h["severity"] in ("error", "warning")
               for h in payload["hazards"])


def test_monitor_unknown_problem_exits_2(capsys):
    code, _, err = run_cli(capsys, "monitor", "no-such-problem")
    assert code == 2
    assert "unknown problem" in err


# ---------------------------------------------------------------------------
# explain
# ---------------------------------------------------------------------------

def test_explain_no_violation_exits_0(capsys):
    code, out, _ = run_cli(capsys, "explain", "pingpong",
                           "--max-runs", "2000")
    assert code == 0
    assert "no violation found" in out


def test_explain_violation_exits_1(capsys):
    code, out, _ = run_cli(capsys, "explain", "bug:deadlock-lock-ordering",
                           "--max-runs", "2000")
    assert code == 1
    assert out     # narrative on stdout


def test_explain_unknown_problem_exits_2(capsys):
    code, _, err = run_cli(capsys, "explain", "no-such-problem")
    assert code == 2
    assert "unknown problem" in err


# ---------------------------------------------------------------------------
# top
# ---------------------------------------------------------------------------

TOP_FAST = ("--demo", "--once", "--interval", "0.4")


def test_top_demo_renders_dashboard(capsys):
    code, out, _ = run_cli(capsys, "top", *TOP_FAST)
    assert code == 0
    lines = out.splitlines()
    assert lines[0].startswith("repro top — 2 node(s)")
    assert "NODE" in lines[1] and "OPS/S" in lines[1]
    assert any(ln.startswith("alpha") for ln in lines)
    assert any(ln.startswith("beta") for ln in lines)
    assert "\x1b[" not in out                 # not a tty: plain text


def test_top_demo_json_snapshot(capsys):
    code, out, _ = run_cli(capsys, "top", *TOP_FAST, "--json")
    assert code == 0
    snap = json.loads(out)
    assert set(snap["nodes"]) == {"alpha", "beta"}
    for node in snap["nodes"].values():
        assert {"rates", "gauges", "hists", "frames", "lost"} <= set(node)
    # demo burns nothing: every tracked (slo, node) pair stays quiet
    assert [a for a in snap["alerts"] if a["state"] == "firing"] == []


def test_top_without_target_exits_2(capsys):
    code, _, err = run_cli(capsys, "top", "--once")
    assert code == 2
    assert "--connect" in err and "--demo" in err


def test_top_rejects_bad_address(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["top", "--connect", "nope", "--once"])
    assert exc.value.code == 2


# ---------------------------------------------------------------------------
# postmortem
# ---------------------------------------------------------------------------

def _bundle(kind="actor-failure", node="b"):
    return {"v": 1, "seq": 1, "kind": kind, "node": node, "ts": 12.0,
            "detail": {"actor": "bomb"},
            "alerts": [{"slo": "error-rate", "node": node,
                        "state": "firing"}],
            "telemetry": {"nodes": {}},
            "events": {"a": 3, "b": 5},
            "trace": {"traceEvents": [], "displayTimeUnit": "ms"},
            "narrative": f"POSTMORTEM: {kind}\n  node '{node}': ..."}


def test_postmortem_empty_dir_exits_1(capsys, tmp_path):
    code, out, _ = run_cli(capsys, "postmortem", "--dir", str(tmp_path))
    assert code == 1
    assert "no postmortem bundles" in out


def test_postmortem_lists_bundles(capsys, tmp_path):
    (tmp_path / "pm-001-actor-failure.json").write_text(
        json.dumps(_bundle()))
    (tmp_path / "pm-002-peer-down.json").write_text(
        json.dumps(_bundle(kind="peer-down")))
    code, out, _ = run_cli(capsys, "postmortem", "--dir", str(tmp_path))
    assert code == 0
    lines = out.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("pm-001-actor-failure.json: actor-failure")
    assert "8 flight event(s) from 2 node(s)" in lines[0]
    assert "1 firing alert(s)" in lines[0]


def test_postmortem_latest_prints_narrative_and_trace(capsys, tmp_path):
    (tmp_path / "pm-001-actor-failure.json").write_text(
        json.dumps(_bundle()))
    (tmp_path / "pm-002-peer-down.json").write_text(
        json.dumps(_bundle(kind="peer-down")))
    trace_out = tmp_path / "merged.json"
    code, out, err = run_cli(
        capsys, "postmortem", "--dir", str(tmp_path), "latest",
        "--trace-out", str(trace_out))
    assert code == 0
    assert out.startswith("POSTMORTEM: peer-down")   # latest = pm-002
    assert "merged.json" in err
    assert json.loads(trace_out.read_text())["displayTimeUnit"] == "ms"


def test_postmortem_json_roundtrip(capsys, tmp_path):
    (tmp_path / "pm-001-actor-failure.json").write_text(
        json.dumps(_bundle()))
    code, out, _ = run_cli(capsys, "postmortem", "--dir", str(tmp_path),
                           "pm-001-actor-failure.json", "--json")
    assert code == 0
    assert json.loads(out)["kind"] == "actor-failure"


def test_postmortem_missing_bundle_exits_1(capsys, tmp_path):
    code, _, err = run_cli(capsys, "postmortem", "--dir", str(tmp_path),
                           "pm-042-ghost.json")
    assert code == 1
    assert "cannot read" in err


# ---------------------------------------------------------------------------
# argparse-level bad arguments
# ---------------------------------------------------------------------------

def test_unknown_subcommand_exits_2(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["frobnicate"])
    assert exc.value.code == 2


def test_bench_rejects_non_integer_workload(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["bench", "--workers", "many"])
    assert exc.value.code == 2
