"""Question-bank calibration properties: every question is ground-
truthed against the correct model, discriminators discriminate, and the
Figure 6/7 items match the paper's setup."""

from repro.misconceptions.semantics import mutated_lts
from repro.study.questions import (ground_truth, mp_questions,
                                   question_bank, sm_questions)
from repro.verify import answer_question_lts


class TestBankIntegrity:
    def test_qids_unique(self):
        bank = question_bank()
        ids = [item.qid for item in bank]
        assert len(ids) == len(set(ids))

    def test_ground_truth_is_idempotent(self):
        item = sm_questions()[0]
        once = ground_truth(item)
        twice = ground_truth(once)
        assert once.answer == twice.answer
        assert once.size == twice.size

    def test_categories_cover_noise_hooks(self):
        from repro.misconceptions import CATALOG
        bank = question_bank()
        categories = {(i.section, i.category) for i in bank}
        for m in CATALOG:
            if m.kind != "noise":
                continue
            assert any((m.section, c) in categories for c in m.affects), \
                f"{m.mid} affects {m.affects} but no question has it"

    def test_raw_builders_match_bank(self):
        assert len(sm_questions()) + len(mp_questions()) == \
            len(question_bank())


class TestDiscriminationMatrix:
    """Each semantic misconception's answer vector differs from the
    correct one, and differs from the other misconceptions' vectors —
    the property that makes Table III's grading identifiable."""

    def _vector(self, section, mids):
        model = mutated_lts(section, mids)
        return tuple(
            answer_question_lts(model, item.question).verdict
            for item in question_bank() if item.section == section)

    def test_sm_vectors_distinct(self):
        correct = self._vector("sm", ())
        vectors = {mid: self._vector("sm", (mid,))
                   for mid in ("S5", "S6", "S7")}
        for mid, vector in vectors.items():
            assert vector != correct, mid
        assert len(set(vectors.values())) == 3

    def test_mp_vectors_distinct(self):
        correct = self._vector("mp", ())
        vectors = {mid: self._vector("mp", (mid,))
                   for mid in ("M3", "M4", "M5")}
        for mid, vector in vectors.items():
            assert vector != correct, mid
        assert len(set(vectors.values())) == 3

    def test_combined_misconceptions_compound(self):
        """Holding S5+S7 flips at least as many questions as either."""
        correct = self._vector("sm", ())

        def wrong_count(mids):
            return sum(a != b for a, b in
                       zip(self._vector("sm", mids), correct))
        assert wrong_count(("S5", "S7")) >= max(wrong_count(("S5",)),
                                                wrong_count(("S7",)))
