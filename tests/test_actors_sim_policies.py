"""Sim actor system under different delivery policies + threaded extras."""

import pytest

from repro.actors import Actor, SimActorSystem
from repro.core import DeliveryPolicy, Scheduler
from repro.verify import explore


class Recorder(Actor):
    def __init__(self, log):
        super().__init__()
        self.log = log

    def receive(self, message, sender):
        self.log.append(message)


def two_senders_program(policy):
    """Driver a sends 2 messages, driver b sends 1, to one actor.

    (2+1 keeps same-sender reordering observable while keeping the
    schedule space small enough for sub-second exhaustive exploration.)
    """
    def program(sched):
        log = []
        system = SimActorSystem(sched, mailbox_policy=policy)
        ref = system.spawn(Recorder, log, name="recorder")

        def driver(tag, count):
            for i in range(count):
                yield from system.tell_gen(ref, (tag, i))
        sched.spawn(driver, "a", 2, name="driver-a")
        sched.spawn(driver, "b", 1, name="driver-b")
        return lambda: tuple(log)
    return program


class TestSimDeliveryPolicies:
    def test_arbitrary_reorders_same_sender(self):
        res = explore(two_senders_program(DeliveryPolicy.ARBITRARY),
                      max_runs=100_000)
        assert res.complete
        assert any([i for t, i in order if t == "a"] == [1, 0]
                   for order in res.observations())

    def test_per_sender_fifo_preserves_each_sender(self):
        res = explore(two_senders_program(DeliveryPolicy.PER_SENDER_FIFO),
                      max_runs=100_000)
        assert res.complete
        for order in res.observations():
            for tag in ("a", "b"):
                ks = [i for t, i in order if t == tag]
                assert ks == sorted(ks)

    def test_policy_hierarchy(self):
        arbitrary = explore(two_senders_program(DeliveryPolicy.ARBITRARY),
                            max_runs=100_000).observations()
        per_sender = explore(
            two_senders_program(DeliveryPolicy.PER_SENDER_FIFO),
            max_runs=100_000).observations()
        assert per_sender <= arbitrary


class TestSimActorLifecycle:
    def test_become_in_sim(self):
        log = []

        class Gate(Actor):
            def receive(self, message, sender):
                if message == "close":
                    self.become(self.closed)
                else:
                    log.append(("open", message))

            def closed(self, message, sender):
                if message == "open":
                    self.unbecome()
                else:
                    log.append(("shut", message))

        sched = Scheduler()
        system = SimActorSystem(sched)

        def driver():
            gate = system.spawn(Gate, name="gate")
            for msg in ("a", "close", "b", "open", "c"):
                yield from system.tell_gen(gate, msg)
        sched.spawn(driver, name="driver")
        sched.run()
        assert log == [("open", "a"), ("shut", "b"), ("open", "c")]

    def test_reply_via_context(self):
        class Echo(Actor):
            def receive(self, message, sender):
                self.context.reply(("echo", message))

        sched = Scheduler()
        system = SimActorSystem(sched)
        got = []

        def driver():
            echo = system.spawn(Echo, name="echo")
            reply = yield from system.ask_gen(echo, "hi")
            got.append(reply)
        sched.spawn(driver, name="driver")
        sched.run()
        assert got == [("echo", "hi")]

    def test_actor_to_actor_conversation(self):
        transcript = []

        class Pong(Actor):
            def receive(self, message, sender):
                transcript.append(("pong-got", message))
                sender.tell(message + 1)

        class Ping(Actor):
            def __init__(self, pong, rounds):
                super().__init__()
                self.pong = pong
                self.rounds = rounds

            def receive(self, message, sender):
                transcript.append(("ping-got", message))
                if message < self.rounds:
                    self.pong.tell(message, sender=self.self_ref)

        sched = Scheduler()
        system = SimActorSystem(sched)

        def driver():
            pong = system.spawn(Pong, name="pong")
            ping = system.spawn(Ping, pong, 3, name="ping")
            yield from system.tell_gen(ping, 0)
        sched.spawn(driver, name="driver")
        sched.run()
        assert ("pong-got", 0) in transcript
        assert ("ping-got", 3) in transcript

    def test_stopped_actor_quiesces(self):
        stopped = []

        class Mortal(Actor):
            def receive(self, message, sender):
                pass

            def post_stop(self):
                stopped.append(True)

        sched = Scheduler()
        system = SimActorSystem(sched)

        def driver():
            victim = system.spawn(Mortal, name="mortal")
            yield from system.tell_gen(victim, "x")
            yield from system.stop_gen(victim)
        sched.spawn(driver, name="driver")
        trace = sched.run()
        assert trace.outcome == "done"
        assert stopped == [True]

    def test_unknown_ref_rejected(self):
        from repro.actors.ref import ActorRef
        sched = Scheduler()
        system = SimActorSystem(sched)
        alien = ActorRef(999999, "alien", cell=None)

        def driver():
            yield from system.tell_gen(alien, "hello?")
        sched.spawn(driver, name="driver")
        with pytest.raises(Exception):
            sched.run()
