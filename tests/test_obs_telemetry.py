"""Telemetry plane units: series math, SLO burns, flight recorder.

Everything here drives the :mod:`repro.obs.telemetry` layer with
hand-built frames and an injected clock — no cluster, no threads, no
wall time — so the windowed math (rates from cumulative counters,
carry-forward decay, mergeable percentile buckets, multi-window burn
conditions) is checked against numbers computed by hand.
"""

import pytest

from repro.obs.metrics import Histogram
from repro.obs.monitors import Hazard, MonitorBus
from repro.obs.telemetry import (
    SLO,
    Aggregator,
    FlightRecorder,
    SLOEngine,
    TimeSeries,
    default_slos,
    render_top,
)


def frame(seq, ts, counters=None, gauges=None, hists=None):
    return {"v": 1, "seq": seq, "node": "n", "ts": ts,
            "counters": counters or {}, "gauges": gauges or {},
            "hists": hists or {}}


def hist_entry(samples, count=None, total=None):
    return {"count": len(samples) if count is None else count,
            "total": sum(samples) if total is None else total,
            "min": min(samples), "max": max(samples),
            "samples": list(samples)}


# ---------------------------------------------------------------------------
# TimeSeries
# ---------------------------------------------------------------------------

class TestTimeSeries:
    def test_rate_from_cumulative_points(self):
        s = TimeSeries()
        s.add(0.0, 0.0)
        s.add(10.0, 100.0)
        assert s.rate(now=10.0, window=10.0) == pytest.approx(10.0)

    def test_rate_uses_floor_of_window_as_base(self):
        s = TimeSeries()
        s.add(0.0, 0.0)
        s.add(5.0, 50.0)
        s.add(10.0, 50.0)        # flat for the last 5s
        # 10s window: (50-0)/(10-0); 4s window: base is the point at
        # t=5 (latest point <= now-window), so (50-50)/(10-5) = 0
        assert s.rate(now=10.0, window=10.0) == pytest.approx(5.0)
        assert s.rate(now=10.0, window=4.0) == 0.0

    def test_rate_needs_two_points(self):
        s = TimeSeries()
        assert s.rate(now=1.0, window=10.0) == 0.0
        s.add(0.0, 7.0)
        assert s.rate(now=1.0, window=10.0) == 0.0

    def test_retention_trims_old_points(self):
        s = TimeSeries(retention=10.0)
        for t in range(0, 100, 5):
            s.add(float(t), float(t))
        assert len(s) <= 4
        assert s.latest() == 95.0

    def test_window_max_and_delta(self):
        s = TimeSeries()
        s.add(0.0, 3.0)
        s.add(5.0, 9.0)
        s.add(10.0, 4.0)
        assert s.window_max(now=10.0, window=6.0) == 9.0
        assert s.window_max(now=10.0, window=1.0) == 4.0
        assert s.delta(now=10.0, window=10.0) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Aggregator
# ---------------------------------------------------------------------------

class TestAggregator:
    def test_ingest_and_rate(self):
        agg = Aggregator(clock=lambda: 20.0)
        agg.ingest("n", frame(1, 0.0, counters={"ops": 0}))
        agg.ingest("n", frame(2, 10.0, counters={"ops": 500}))
        assert agg.nodes() == ["n"]
        assert agg.rate("n", "ops", window=10.0, now=10.0) == \
            pytest.approx(50.0)
        assert agg.counter("n", "ops") == 500.0
        assert agg.rate("n", "missing", now=10.0) == 0.0
        assert agg.rate("ghost", "ops", now=10.0) == 0.0

    def test_carry_forward_decays_rate_to_zero(self):
        """Delta frames omit unchanged counters; the aggregator must
        append flat points so a finished burst stops 'rating'."""
        agg = Aggregator(clock=lambda: 40.0)
        agg.ingest("n", frame(1, 0.0, counters={"ops": 0}))
        agg.ingest("n", frame(2, 10.0, counters={"ops": 100}))
        for i, ts in enumerate((20.0, 30.0, 40.0)):
            agg.ingest("n", frame(3 + i, ts))     # ops unchanged: omitted
        assert agg.rate("n", "ops", window=10.0, now=40.0) == 0.0
        assert agg.counter("n", "ops") == 100.0   # cumulative intact

    def test_lost_frame_accounting(self):
        agg = Aggregator()
        agg.ingest("n", frame(1, 0.0))
        agg.ingest("n", frame(5, 1.0))            # 2,3,4 dropped in flight
        agg.ingest("n", frame(6, 2.0))
        snap = agg.snapshot(now=2.0)
        assert snap["nodes"]["n"]["lost"] == 3
        assert snap["nodes"]["n"]["frames"] == 3

    def test_out_of_order_frame_backs_loss_out(self):
        """A gap charges ``lost`` immediately; the straggler arriving
        late must refund it — reordering is not loss."""
        agg = Aggregator()
        agg.ingest("n", frame(1, 0.0))
        agg.ingest("n", frame(3, 1.0))            # 2 looks dropped...
        assert agg.snapshot(now=1.0)["nodes"]["n"]["lost"] == 1
        agg.ingest("n", frame(2, 0.5))            # ...but was reordered
        snap = agg.snapshot(now=1.0)
        assert snap["nodes"]["n"]["lost"] == 0
        assert snap["nodes"]["n"]["frames"] == 3

    def test_duplicated_frame_is_not_a_refund(self):
        """A duplicate of an already-seen seq must not decrement
        ``lost`` (UDP-style transports can duplicate *and* drop)."""
        agg = Aggregator()
        agg.ingest("n", frame(1, 0.0))
        agg.ingest("n", frame(2, 1.0))
        agg.ingest("n", frame(2, 1.1))            # dup of a seen frame
        assert agg.snapshot(now=2.0)["nodes"]["n"]["lost"] == 0
        agg.ingest("n", frame(4, 2.0))            # 3 genuinely lost
        agg.ingest("n", frame(4, 2.1))            # dup again
        assert agg.snapshot(now=3.0)["nodes"]["n"]["lost"] == 1

    def test_duplicated_straggler_refunds_once(self):
        """The late frame refunds its gap exactly once; replaying it
        must not drive ``lost`` negative."""
        agg = Aggregator()
        agg.ingest("n", frame(1, 0.0))
        agg.ingest("n", frame(4, 1.0))            # 2,3 charged as lost
        assert agg.snapshot(now=1.0)["nodes"]["n"]["lost"] == 2
        for _ in range(3):
            agg.ingest("n", frame(2, 0.5))        # refund, then no-ops
        snap = agg.snapshot(now=2.0)
        assert snap["nodes"]["n"]["lost"] == 1    # only 3 still missing
        agg.ingest("n", frame(3, 0.6))
        assert agg.snapshot(now=2.0)["nodes"]["n"]["lost"] == 0
        agg.ingest("n", frame(3, 0.7))            # replay after refund
        assert agg.snapshot(now=2.0)["nodes"]["n"]["lost"] == 0

    def test_window_percentiles_merge_buckets(self):
        agg = Aggregator()
        agg.ingest("n", frame(1, 0.0,
                              hists={"lat": hist_entry([1.0, 2.0])}))
        agg.ingest("n", frame(2, 5.0,
                              hists={"lat": hist_entry([100.0])}))
        h = agg.window_histogram("n", "lat", window=30.0, now=5.0)
        assert h.count == 3
        assert h.max == 100.0
        assert agg.percentile("n", "lat", 99, now=5.0) == 100.0
        # a 3s window only sees the second bucket
        assert agg.percentile("n", "lat", 50, window=3.0, now=5.0) == 100.0

    def test_stall_sums_window_samples(self):
        agg = Aggregator()
        agg.ingest("n", frame(1, 0.0,
                              hists={"wait": hist_entry([500.0, 250.0])}))
        assert agg.stall("n", "wait", now=1.0) == pytest.approx(750.0)

    def test_gauges_latest_and_window_max(self):
        agg = Aggregator()
        agg.ingest("n", frame(1, 0.0, gauges={"depth": 9}))
        agg.ingest("n", frame(2, 5.0, gauges={"depth": 2}))
        assert agg.gauge("n", "depth") == 2.0
        assert agg.gauge("n", "depth", window=10.0, now=5.0) == 9.0

    def test_cluster_rate_sums_nodes(self):
        agg = Aggregator()
        for node in ("a", "b"):
            agg.ingest(node, frame(1, 0.0, counters={"ops": 0}))
            agg.ingest(node, frame(2, 10.0, counters={"ops": 100}))
        assert agg.cluster_rate("ops", window=10.0, now=10.0) == \
            pytest.approx(20.0)

    def test_snapshot_is_json_ready(self):
        import json
        agg = Aggregator()
        agg.ingest("n", frame(1, 0.0, counters={"ops": 1},
                              gauges={"depth": 2},
                              hists={"lat": hist_entry([3.0])}))
        snap = agg.snapshot(now=1.0)
        json.dumps(snap)                          # no exotic types
        node = snap["nodes"]["n"]
        assert node["gauges"] == {"depth": 2.0}
        assert node["hists"]["lat"]["count"] == 1
        assert node["hists"]["lat"]["total"] == pytest.approx(3.0)
        assert node["age"] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# SLO measurement + burn-rate engine
# ---------------------------------------------------------------------------

def burning_aggregator(failures):
    """Node 'n' with a steady failure burn against 100 ops/s."""
    agg = Aggregator()
    for i in range(13):
        ts = float(i * 5)
        agg.ingest("n", frame(i + 1, ts, counters={
            "mailbox.processed": i * 500,
            "actor.failures": i * failures}))
    return agg


class TestSLO:
    def test_measure_rate_and_ratio(self):
        agg = burning_aggregator(failures=25)     # 5% of 500/window
        now = 60.0
        rate = SLO("r", "rate:mailbox.processed", 1.0)
        assert rate.measure(agg, "n", 10.0, now) == pytest.approx(100.0)
        ratio = SLO("e", "ratio:actor.failures/mailbox.processed", 0.01)
        assert ratio.measure(agg, "n", 10.0, now) == pytest.approx(0.05)

    def test_measure_ratio_zero_denominator(self):
        agg = Aggregator()
        agg.ingest("n", frame(1, 0.0, counters={"a": 5, "b": 0}))
        agg.ingest("n", frame(2, 1.0, counters={"a": 9}))
        slo = SLO("x", "ratio:a/b", 0.5)
        assert slo.measure(agg, "n", 10.0, now=1.0) == 0.0

    def test_measure_percentile_gauge_stall(self):
        agg = Aggregator()
        agg.ingest("n", frame(1, 0.0, gauges={"depth": 7},
                              hists={"lat": hist_entry([10.0, 90.0])}))
        assert SLO("p", "p95:lat", 1.0).measure(agg, "n", 30.0,
                                                now=1.0) == 90.0
        assert SLO("g", "gauge:depth", 1.0).measure(agg, "n", 30.0,
                                                    now=1.0) == 7.0
        assert SLO("s", "stall:lat", 1.0).measure(agg, "n", 30.0,
                                                  now=1.0) == 100.0

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError):
            SLO("x", "median:lat", 1.0).measure(Aggregator(), "n", 1.0,
                                                now=0.0)

    def test_default_slos_cover_headline_signals(self):
        kinds = {s.metric.partition(":")[0] for s in default_slos()}
        assert {"p95", "ratio", "gauge", "stall"} <= kinds
        assert all(s.threshold > 0 for s in default_slos())


class TestSLOEngine:
    ERROR_RATE = SLO("error-rate",
                     "ratio:actor.failures/mailbox.processed",
                     threshold=0.01, short_window=10.0, long_window=30.0,
                     severity="error")

    def test_fires_only_when_both_windows_burn(self):
        engine = SLOEngine([self.ERROR_RATE])
        # a fresh small burst: over threshold in the short window
        # (20/~1500) but diluted below it by the long window's traffic
        # (20/~3500) — must NOT page
        agg = burning_aggregator(failures=0)
        agg.ingest("n", frame(14, 61.0, counters={"actor.failures": 20,
                                                  "mailbox.processed": 6500}))
        assert engine.evaluate(agg, now=61.0) == []     # long window clean
        # sustained burn: both windows over threshold
        hot = burning_aggregator(failures=25)
        fired = engine.evaluate(hot, now=60.0)
        assert [a.slo.name for a in fired] == ["error-rate"]
        assert fired[0].state == "firing"
        # steady state: still firing, but not *newly* fired
        assert engine.evaluate(hot, now=60.0) == []
        assert [a.node for a in engine.active()] == ["n"]

    def test_resolves_on_short_window_recovery(self):
        engine = SLOEngine([self.ERROR_RATE])
        agg = burning_aggregator(failures=25)
        assert engine.evaluate(agg, now=60.0)
        # failures stop; processed keeps moving
        for i in range(3):
            ts = 65.0 + i * 5
            agg.ingest("n", frame(14 + i, ts,
                                  counters={"mailbox.processed":
                                            6000 + (i + 1) * 500}))
        assert engine.evaluate(agg, now=75.0) == []
        assert engine.active() == []
        assert engine.alerts()[0].state == "resolved"
        assert engine.alerts()[0].resolved_at == 75.0

    def test_fire_publishes_hazard_and_callback(self):
        bus = MonitorBus(detectors=[])
        seen = []
        engine = SLOEngine([self.ERROR_RATE], bus=bus,
                           on_fire=seen.append)
        engine.evaluate(burning_aggregator(failures=25), now=60.0)
        assert len(seen) == 1
        hazards = [h for h in bus.hazards
                   if h.kind == "slo-burn:error-rate"]
        assert len(hazards) == 1
        assert hazards[0].severity == "error"
        assert hazards[0].tasks == ("n",)
        assert "error-rate" in hazards[0].message

    def test_as_dicts_payload(self):
        engine = SLOEngine([self.ERROR_RATE])
        engine.evaluate(burning_aggregator(failures=25), now=60.0)
        (d,) = engine.as_dicts()
        assert d["slo"] == "error-rate" and d["state"] == "firing"
        assert d["short_value"] >= 0.01 and d["long_value"] >= 0.01
        assert d["fired_at"] == 60.0


# ---------------------------------------------------------------------------
# MonitorBus.publish
# ---------------------------------------------------------------------------

def test_monitor_bus_publish_dedups_and_flags():
    bus = MonitorBus(detectors=[])
    h = Hazard(kind="slo-burn:x", severity="error", step=0,
               message="SLO 'x' burning")
    bus.publish(h)
    bus.publish(h)                                # same (kind, message)
    assert len(bus.hazards) == 1
    assert bus.flagged


# ---------------------------------------------------------------------------
# FlightRecorder
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_records_and_dumps_in_order(self):
        fr = FlightRecorder(capacity=8, node="a")
        for i in range(3):
            fr.record("cluster-send", actor="p", peer="b", msg_seq=i,
                      ts=float(i))
        events = fr.dump()
        assert [e["msg_seq"] for e in events] == [0, 1, 2]
        assert [e["step"] for e in events] == [0, 1, 2]
        assert all(e["node"] == "a" for e in events)
        assert all(e["kind"] == "cluster-send" for e in events)

    def test_ring_wraps_keeping_newest(self):
        fr = FlightRecorder(capacity=4, node="a")
        for i in range(10):
            fr.record("k", msg_seq=i, ts=float(i))
        assert len(fr) == 4
        assert fr.recorded == 10
        assert [e["msg_seq"] for e in fr.dump()] == [6, 7, 8, 9]
        # steps stay monotone across the wrap — merge ordering relies
        # on it
        assert [e["step"] for e in fr.dump()] == [6, 7, 8, 9]

    def test_dump_is_cluster_event_compatible(self):
        from repro.cluster.observe import ClusterEvent, merge_chrome_traces
        a = FlightRecorder(capacity=4, node="a")
        b = FlightRecorder(capacity=4, node="b")
        a.record("cluster-send", actor="p", peer="b", msg_seq=7, ts=1.0)
        b.record("cluster-recv", actor="e", peer="a", recv_seq=7, ts=1.001)
        ev = ClusterEvent.from_dict(a.dump()[0])
        assert ev.node == "a" and ev.msg_seq == 7
        merged = merge_chrome_traces({"a": a.dump(), "b": b.dump()})
        phases = [e["ph"] for e in merged["traceEvents"]]
        assert "s" in phases and "f" in phases


# ---------------------------------------------------------------------------
# render_top
# ---------------------------------------------------------------------------

def top_snapshot(alerts=()):
    agg = Aggregator()
    agg.ingest("n", frame(1, 0.0, counters={"mailbox.processed": 0,
                                            "cluster.delivered": 0}))
    agg.ingest("n", frame(2, 10.0,
                          counters={"mailbox.processed": 1000,
                                    "cluster.delivered": 900},
                          gauges={"mailbox.depth": 4,
                                  "cluster.staged": 1},
                          hists={"mailbox.latency_us":
                                 hist_entry([50.0, 300.0])}))
    snap = agg.snapshot(window=10.0, now=10.0)
    snap["alerts"] = list(alerts)
    return snap


def test_render_top_plain_table():
    text = render_top(top_snapshot(), color=False)
    lines = text.splitlines()
    assert lines[0].startswith("repro top")
    assert "NODE" in lines[1] and "OPS/S" in lines[1]
    row = next(ln for ln in lines if ln.startswith("n "))
    assert "100.0" in row                         # ops/s
    assert "ok" in row
    assert "\x1b[" not in text


def test_render_top_marks_firing_nodes():
    alert = {"slo": "error-rate", "node": "n", "state": "firing",
             "severity": "error"}
    colored = render_top(top_snapshot([alert]), color=True)
    assert "error-rate" in colored
    assert "\x1b[31m" in colored                  # firing row painted red
    plain = render_top(top_snapshot([alert]), color=False)
    assert "error-rate" in plain and "\x1b[" not in plain
