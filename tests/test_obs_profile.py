"""Runtime profiler tests — FakeClock, Profiler, and the opt-in hooks
inside the real runtimes (threads / actors / coroutines).

The contract under test is the one the kernel's ``metrics=`` pattern
established: profiling is strictly opt-in, a runtime created without a
profiler executes the exact same instruction sequence with a single
``is None`` test per hot-path operation — asserted here down to the
allocation level — and with one attached, each runtime reports its own
internal signals (lock waits, mailbox latency, resume latency).
"""

import sys
import threading
import tracemalloc

import pytest

from repro.obs import FakeClock, Profiler, wall_clock
from repro.obs.profile import METRIC_NAMES


# ---------------------------------------------------------------------------
# FakeClock — the one time seam
# ---------------------------------------------------------------------------

def test_fake_clock_advances_fixed_step():
    clock = FakeClock(step=0.5, start=10.0)
    assert clock() == 10.0
    assert clock() == 10.5
    assert clock() == 11.0
    assert clock.calls == 3


def test_wall_clock_is_monotonic_seam():
    t0 = wall_clock()
    t1 = wall_clock()
    assert t1 >= t0


# ---------------------------------------------------------------------------
# Profiler core
# ---------------------------------------------------------------------------

def test_counters_gauges_histograms():
    prof = Profiler(clock=FakeClock())
    prof.inc("lock.acquires")
    prof.inc("lock.acquires", 2)
    prof.gauge_max("mailbox.depth_max", 3)
    prof.gauge_max("mailbox.depth_max", 1)    # lower: no change
    prof.observe("mailbox.depth", 2.0)
    snap = prof.snapshot()
    assert snap["counters"] == {"lock.acquires": 3}
    assert snap["gauges"] == {"mailbox.depth_max": 3}
    assert snap["histograms"]["mailbox.depth"]["count"] == 1
    assert snap["histograms"]["mailbox.depth"]["p50"] == 2.0


def test_observe_us_converts_seconds_to_microseconds():
    prof = Profiler(clock=FakeClock())
    prof.observe_us("lock.wait_us", 0.002)
    assert prof.histograms["lock.wait_us"].max == pytest.approx(2000.0)


def test_timed_context_manager_uses_injected_clock():
    prof = Profiler(clock=FakeClock(step=0.25))
    with prof.timed("pool.task_us"):
        pass
    hist = prof.histograms["pool.task_us"]
    assert hist.count == 1
    assert hist.max == pytest.approx(250_000.0)   # 0.25 s in µs


def test_rate_is_counter_over_elapsed():
    prof = Profiler(clock=FakeClock(step=1.0))   # t0 stamped at init
    prof.inc("coro.resumes", 10)
    assert prof.rate("coro.resumes") == pytest.approx(10.0)  # 10 in 1 s


def test_spans_collected_only_when_enabled():
    off = Profiler(clock=FakeClock())
    off.span("rep", "threads", 0.0, 1.0)
    assert off.spans is None
    on = Profiler(clock=FakeClock(), spans=True)
    on.span("rep", "threads", 0.0, 1.0)
    assert on.spans == [("rep", "threads", 0.0, 1.0)]


def test_format_mentions_every_recorded_metric():
    prof = Profiler(clock=FakeClock())
    prof.inc("thread.started")
    prof.observe_us("coro.resume_us", 0.001)
    text = prof.format()
    assert "thread.started" in text
    assert "coro.resume_us" in text


def test_thread_safety_under_concurrent_increments():
    prof = Profiler()
    n, per = 8, 2_000

    def work():
        for _ in range(per):
            prof.inc("pool.tasks")
            prof.observe("pool.task_us", 1.0)

    threads = [threading.Thread(target=work) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert prof.get("pool.tasks") == n * per
    assert prof.histograms["pool.task_us"].count == n * per


def test_snapshot_never_torn_by_concurrent_records():
    """Regression: readers take the same lock as writers, so a
    histogram's count/total pair is a consistent cut — a torn read
    (count bumped, total not yet) shows up as count != total when
    every sample is exactly 1.0."""
    prof = Profiler()
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            prof.inc("ops")
            prof.observe("lat", 1.0)

    writers = [threading.Thread(target=hammer) for _ in range(4)]
    for t in writers:
        t.start()
    try:
        for _ in range(300):
            snap = prof.snapshot()
            h = snap["histograms"].get("lat")
            if h is not None and h["count"]:
                assert h["count"] == h["total"], (h["count"], h["total"])
                assert h["min"] == h["max"] == 1.0
    finally:
        stop.set()
        for t in writers:
            t.join()


def test_delta_consistent_under_concurrent_records():
    """The telemetry cursor walk must stay exact while writers hammer:
    cumulative fields of each delta are a consistent cut, cursors are
    monotone, and the final drained delta accounts for every sample."""
    prof = Profiler()
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            prof.inc("ops")
            prof.observe("lat", 1.0)

    writers = [threading.Thread(target=hammer) for _ in range(4)]
    for t in writers:
        t.start()
    cursor = {}
    try:
        last_count = 0
        for _ in range(100):
            d = prof.delta(cursor, max_samples=1 << 30)
            lat = d["hists"].get("lat")
            if lat is None:
                continue
            assert lat["count"] == lat["total"]          # consistent cut
            # un-thinned samples: exactly the records since last time
            assert len(lat["samples"]) == lat["count"] - last_count
            assert lat["count"] >= last_count            # monotone cursor
            last_count = lat["count"]
    finally:
        stop.set()
        for t in writers:
            t.join()
    prof.delta(cursor, max_samples=1 << 30)
    assert cursor["hists"]["lat"] == prof.histograms["lat"].count
    assert cursor["counters"]["ops"] == prof.get("ops")
    assert prof.delta(cursor) == {"counters": {}, "gauges": {},
                                  "hists": {}}           # fully drained


def test_delta_downsamples_but_keeps_cumulative_exact():
    prof = Profiler()
    for i in range(1000):
        prof.observe("lat", float(i % 7))
    d = prof.delta({}, max_samples=64)
    lat = d["hists"]["lat"]
    assert len(lat["samples"]) == 64                     # thinned wire
    assert lat["count"] == 1000                          # totals exact
    assert lat["total"] == sum(float(i % 7) for i in range(1000))


def test_metric_name_registry_matches_convention():
    for name in ("lock.wait_us", "mailbox.latency_us", "coro.resume_us",
                 "thread.start_latency_us", "pool.task_us"):
        assert name in METRIC_NAMES


# ---------------------------------------------------------------------------
# runtime hooks: one spot check per runtime
# ---------------------------------------------------------------------------

def _wait_until_blocked_in(thread: threading.Thread, filename: str,
                           timeout: float = 5.0) -> bool:
    """Poll until ``thread``'s top frame is inside ``filename``."""
    deadline = wall_clock() + timeout
    while wall_clock() < deadline:
        frame = sys._current_frames().get(thread.ident)
        if frame is not None \
                and frame.f_code.co_filename.endswith(filename):
            return True
    return False


def test_monitor_reports_lock_contention():
    from repro.threads import Monitor

    prof = Profiler()
    m = Monitor("hot", profiler=prof)

    def contender():
        with m:
            pass

    # retry until one contender demonstrably blocked on the held lock
    # (the blocked-frame probe has a tiny pre-probe window)
    deadline = wall_clock() + 10
    while prof.get("lock.contended") == 0 and wall_clock() < deadline:
        with m:
            t = threading.Thread(target=contender)
            t.start()
            _wait_until_blocked_in(t, "sync.py")
        t.join(timeout=5)
    snap = prof.snapshot()
    assert snap["counters"]["lock.contended"] >= 1
    assert snap["counters"]["lock.acquires"] >= 1
    assert snap["histograms"]["lock.wait_us"]["count"] >= 1


def test_monitor_reports_wait_and_notify():
    from repro.threads import Monitor

    prof = Profiler()
    m = Monitor("cond", profiler=prof)
    state = {"go": False}
    parked = threading.Event()

    def waiter():
        with m:
            parked.set()
            m.wait_until(lambda: state["go"])

    t = threading.Thread(target=waiter)
    t.start()
    assert parked.wait(timeout=5)
    with m:                                 # enterable only once parked
        state["go"] = True
        m.notify_all()
    t.join(timeout=5)
    snap = prof.snapshot()
    assert snap["counters"]["monitor.waits"] >= 1
    assert snap["counters"]["monitor.wakeups"] >= 1
    assert snap["counters"]["monitor.notifies"] >= 1
    assert snap["histograms"]["monitor.wait_us"]["count"] >= 1


def test_jthread_reports_lifecycle_and_start_latency():
    from repro.threads import JThread

    prof = Profiler()
    t = JThread(target=lambda: None, name="probe", profiler=prof)
    t.start()
    t.join(timeout=5)
    snap = prof.snapshot()
    assert snap["counters"]["thread.started"] == 1
    assert snap["counters"]["thread.finished"] == 1
    assert snap["histograms"]["thread.start_latency_us"]["count"] == 1


def test_actor_system_reports_mailbox_latency():
    from repro.problems.pingpong import run_actor_pingpong

    prof = Profiler()
    assert run_actor_pingpong(rounds=20, profiler=prof) == 20
    snap = prof.snapshot()
    assert snap["counters"]["mailbox.enqueued"] >= 40   # pings + pongs
    assert snap["counters"]["mailbox.processed"] == \
        snap["counters"]["mailbox.enqueued"]
    assert snap["histograms"]["mailbox.latency_us"]["count"] >= 40
    assert snap["gauges"]["mailbox.depth_max"] >= 1


def test_coroutine_scheduler_reports_resume_latency():
    from repro.problems.pingpong import run_coroutine_pingpong

    prof = Profiler()
    assert run_coroutine_pingpong(rounds=20, profiler=prof) == 20
    snap = prof.snapshot()
    assert snap["counters"]["coro.resumes"] > 40
    assert snap["histograms"]["coro.resume_us"]["count"] == \
        snap["counters"]["coro.resumes"]
    assert snap["histograms"]["coro.ready_wait_us"]["count"] == \
        snap["counters"]["coro.resumes"]


# ---------------------------------------------------------------------------
# the overhead contract: disabled profiling allocates nothing
# ---------------------------------------------------------------------------

def test_disabled_profiling_adds_zero_allocations_on_monitor_hot_path():
    """With ``profiler=None`` the Monitor enter/exit hot path performs
    zero Python-level allocations — the opt-in costs one ``is None``
    test, not an object."""
    from repro.threads import Monitor

    m = Monitor("hot")
    for _ in range(50):                     # warm any lazy caches
        with m:
            pass
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    for _ in range(500):
        with m:
            pass
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    # a per-operation allocation would show up ~500 times; tolerate
    # one-off cache fills (count +1, a few bytes) that don't scale
    grew = [s for s in after.compare_to(before, "filename")
            if s.size_diff > 0 and s.count_diff >= 10
            and ("repro/threads" in s.traceback[0].filename
                 or "repro/obs" in s.traceback[0].filename)]
    assert not grew, [str(s) for s in grew]


def test_disabled_profiling_is_the_default_everywhere():
    from repro.actors.system import ActorSystem
    from repro.coroutines.scheduler import CoScheduler
    from repro.threads.jthread import JThread
    from repro.threads.sync import Monitor

    assert Monitor("m").profiler is None
    assert JThread(target=lambda: None).profiler is None
    assert CoScheduler().profiler is None
    system = ActorSystem(workers=1)
    try:
        assert system.profiler is None
    finally:
        system.shutdown()
