"""Vector-clock race detection."""

from repro.core import (Access, AccessKind, Acquire, Release, Scheduler,
                        SimLock)
from repro.verify import explore, find_races, find_races_program


def _racy_counter(sched):
    state = {"x": 0}

    def inc(name):
        yield Access("x", AccessKind.READ)
        value = state["x"]
        yield Access("x", AccessKind.WRITE)
        state["x"] = value + 1
    sched.spawn(inc, "a", name="a")
    sched.spawn(inc, "b", name="b")
    return lambda: state["x"]


def _locked_counter(sched):
    lock = SimLock("L")
    state = {"x": 0}

    def inc(name):
        yield Acquire(lock)
        yield Access("x", AccessKind.READ)
        value = state["x"]
        yield Access("x", AccessKind.WRITE)
        state["x"] = value + 1
        yield Release(lock)
    sched.spawn(inc, "a", name="a")
    sched.spawn(inc, "b", name="b")
    return lambda: state["x"]


class TestRaceDetection:
    def test_unsynchronized_rmw_races(self):
        race = find_races_program(_racy_counter)
        assert race is not None
        assert race.var == "x"
        assert "race on" in race.describe()

    def test_lost_update_actually_observable(self):
        res = explore(_racy_counter)
        assert res.observations() == {1, 2}   # 1 = lost update

    def test_locked_counter_race_free(self):
        assert find_races_program(_locked_counter) is None

    def test_locked_counter_no_lost_update(self):
        res = explore(_locked_counter)
        assert res.observations() == {2}

    def test_read_read_is_not_a_race(self):
        def program(sched):
            def reader(name):
                yield Access("x", AccessKind.READ)
            sched.spawn(reader, "a")
            sched.spawn(reader, "b")
        assert find_races_program(program) is None

    def test_same_task_accesses_never_race(self):
        def program(sched):
            def solo():
                yield Access("x", AccessKind.WRITE)
                yield Access("x", AccessKind.WRITE)
            sched.spawn(solo)
        assert find_races_program(program) is None

    def test_spawn_edge_orders_parent_child(self):
        """Parent writes before spawn; child reads after — ordered by
        the spawn happens-before edge, no race."""
        from repro.core import Spawn

        def program(sched):
            def child():
                yield Access("x", AccessKind.READ)

            def parent():
                yield Access("x", AccessKind.WRITE)
                yield Spawn(child(), name="child")
            sched.spawn(parent, name="parent")
        assert find_races_program(program) is None

    def test_message_edge_orders_sender_receiver(self):
        from repro.core import Mailbox, Receive, Send

        def program(sched):
            mb = Mailbox("box")

            def sender():
                yield Access("x", AccessKind.WRITE)
                yield Send(mb, "go")

            def receiver():
                yield Receive(mb)
                yield Access("x", AccessKind.READ)
            sched.spawn(sender)
            sched.spawn(receiver)
        assert find_races_program(program) is None

    def test_max_races_bounds_report(self):
        def program(sched):
            def writer(name):
                for _ in range(4):
                    yield Access("x", AccessKind.WRITE)
            sched.spawn(writer, "a")
            sched.spawn(writer, "b")
        res = explore(program, max_runs=50)
        some_trace = next(iter(res.witnesses.values()))
        races = find_races(some_trace, max_races=3)
        assert len(races) <= 3


class TestRaceLocksets:
    """Races report the locks held at each access — the missing-sync
    diagnosis (reconstructed by repro.obs.monitors.trace_locksets)."""

    def test_unlocked_race_says_no_locks_held(self):
        race = find_races_program(_racy_counter)
        assert race is not None
        assert race.first_locks == frozenset()
        assert race.second_locks == frozenset()
        assert "no locks held at either access" in race.missing_sync()
        assert race.missing_sync() in race.describe()

    def test_one_sided_locking_names_the_asymmetry(self):
        def half_locked(sched):
            lock = SimLock("L")
            state = {"x": 0}

            def locked():
                yield Acquire(lock)
                yield Access("x", AccessKind.WRITE)
                state["x"] += 1
                yield Release(lock)

            def bare():
                yield Access("x", AccessKind.WRITE)
                state["x"] += 10
            sched.spawn(locked, name="locked")
            sched.spawn(bare, name="bare")
            return lambda: state["x"]

        race = find_races_program(half_locked)
        assert race is not None
        assert race.common_locks == frozenset()
        locksets = {race.first.task_name: race.first_locks,
                    race.second.task_name: race.second_locks}
        assert locksets["locked"] == frozenset({"L"})
        assert locksets["bare"] == frozenset()
        assert "no common lock" in race.missing_sync()

    def test_common_lock_means_no_race(self):
        # sanity: the lockset story is diagnostic only — fully locked
        # accesses are ordered by the release->acquire edge and never
        # reach the Race constructor in the first place
        assert find_races_program(_locked_counter) is None
