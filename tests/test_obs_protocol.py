"""Session-typed protocol conformance: specs, automata, monitors.

The :mod:`repro.obs.protocol` layer in isolation — the mini-language
and combinators, the compiled automaton, the payload classifiers, the
:class:`ProtocolMonitor` riding kernel and coroutine event streams, the
``(kind, subject, seq)`` hazard dedup it relies on, and the
``repro protocol`` CLI verbs.  Cluster-runtime conformance lives in
``test_cluster_protocol.py``.
"""

import json

import pytest

from repro.core import Receive, Send
from repro.core.mailbox import DeliveryPolicy, Mailbox
from repro.coroutines import CoChannel, CoScheduler
from repro.obs import (Hazard, MonitorBus, Protocol, ProtocolMonitor,
                       at_most_one_outstanding, kind_from_repr,
                       message_kind, protocol_bus, request_reply,
                       turn_taking)
from repro.obs.explain import explain_hazard
from repro.obs.protocol import msg, opt, parse, plus, seq, star
from repro.verify import explore


# ---------------------------------------------------------------------------
# spec language: combinators <-> mini-language
# ---------------------------------------------------------------------------

class TestSpecLanguage:
    def test_minilanguage_equals_combinators(self):
        text = parse("(REQ -> (REPLY | ERR))*")
        built = star(msg("req") >> (msg("reply") | msg("err")))
        assert str(text) == str(built) == "(REQ -> (REPLY | ERR))*"

    def test_arrow_is_optional_sugar(self):
        assert str(parse("A B C")) == str(parse("A -> B -> C"))

    def test_postfix_operators_bind_tightest(self):
        p = parse("A B* C+ D?")
        assert str(p) == "A -> B* -> C+ -> D?"
        assert str(plus(opt(msg("a")))) == "A?+"

    def test_constructors(self):
        assert str(turn_taking("ping", "pong")) == "(PING -> PONG)*"
        assert (str(at_most_one_outstanding("req", "reply", "err"))
                == "(REQ -> (REPLY | ERR))*")
        assert request_reply is at_most_one_outstanding

    @pytest.mark.parametrize("bad", ["", "(A -> B", "A -> )", "*A",
                                     "A | | B", "A & B"])
    def test_syntax_errors_raise(self, bad):
        with pytest.raises(ValueError):
            parse(bad)

    def test_constructor_arity_checks(self):
        with pytest.raises(ValueError):
            turn_taking("solo")
        with pytest.raises(ValueError):
            at_most_one_outstanding("req")

    def test_protocol_validates_at_and_spec(self):
        with pytest.raises(ValueError):
            Protocol("p", "A", at="arrive")
        with pytest.raises(TypeError):
            Protocol("p", 42)

    def test_describe_roundtrips_the_surface(self):
        p = Protocol("rpc", "(REQ -> (REPLY | ERR))*",
                     parties=("server",), strict=True)
        d = p.describe()
        assert d["name"] == "rpc"
        assert d["spec"] == "(REQ -> (REPLY | ERR))*"
        assert d["parties"] == ["server"]
        assert d["at"] == "deliver"
        assert d["alphabet"] == ["err", "reply", "req"]
        assert d["strict"] is True


# ---------------------------------------------------------------------------
# the automaton
# ---------------------------------------------------------------------------

class TestMachine:
    def test_advance_and_reject(self):
        m = Protocol("p", "A -> B").machine()
        assert not m.accepting and not m.moved
        assert m.advance("a")
        assert m.expected() == ("b",)
        # rejection leaves the state unchanged (resync semantics)
        assert not m.advance("a")
        assert m.expected() == ("b",)
        assert m.advance("b")
        assert m.accepting

    def test_star_accepts_empty_and_loops(self):
        m = Protocol("p", "(A -> B)*").machine()
        assert m.accepting
        for _ in range(3):
            assert m.advance("a") and not m.accepting
            assert m.advance("b") and m.accepting

    def test_machines_of_one_spec_are_independent(self):
        p = Protocol("p", "A -> B")
        m1, m2 = p.machine(), p.machine()
        assert m1.advance("a")
        # m2 still at the initial state despite the shared compiled
        # automaton (and its shared memoized transition table)
        assert m2.expected() == ("a",)
        assert m1.expected() == ("b",)

    def test_alternation_tracks_both_branches(self):
        m = Protocol("p", "A -> (B -> C | B -> D)").machine()
        assert m.advance("a") and m.advance("b")
        assert m.expected() == ("c", "d")
        assert m.advance("d") and m.accepting

    def test_state_label_shows_the_trail(self):
        m = Protocol("p", "A -> B").machine()
        assert m.state_label() == "the initial state"
        m.advance("a")
        assert "a" in m.state_label()


# ---------------------------------------------------------------------------
# payload classifiers
# ---------------------------------------------------------------------------

class TestClassifiers:
    @pytest.mark.parametrize("payload,kind", [
        (("REQ", 1, "x"), "req"),
        (["init"], "init"),
        ("Ping", "ping"),
        (7, "int"),
        (None, "nonetype"),
        (("bad token!", 1), None),     # head is not a kind token
    ])
    def test_message_kind(self, payload, kind):
        assert message_kind(payload) == kind
        # the classification cache must not change the answer
        assert message_kind(payload) == kind

    @pytest.mark.parametrize("text,kind", [
        ("('req', 1)", "req"),
        ("'ping'", "ping"),
        ('["work", 2]', "work"),
        ("<Envelope #3 ('req', 1) from driver>", None),
        ("True", "true"),
        ("{'a': 1}", None),
    ])
    def test_kind_from_repr(self, text, kind):
        assert kind_from_repr(text) == kind


# ---------------------------------------------------------------------------
# kernel-event conformance (threads-style Send/Receive programs)
# ---------------------------------------------------------------------------

def _mailbox_program(payloads, receives=None):
    """One task deposits ``payloads`` into mailbox "svc", one drains."""
    n = len(payloads) if receives is None else receives

    def program(sched):
        mb = Mailbox("svc", policy=DeliveryPolicy.FIFO)

        def producer():
            for p in payloads:
                yield Send(mb, p)

        def consumer():
            for _ in range(n):
                yield Receive(mb)
        sched.spawn(producer, name="producer")
        sched.spawn(consumer, name="consumer")
    return program


def _explore_with(program, *protocols, **kw):
    return explore(program, max_runs=kw.pop("max_runs", 5000),
                   reduce="all",
                   monitors=lambda: protocol_bus(list(protocols),
                                                 include_default=False,
                                                 **kw))


class TestKernelConformance:
    def test_violation_names_state_and_expected_set(self):
        res = _explore_with(
            _mailbox_program([("init", 0), ("init", 1)]),
            Protocol("boot", "INIT -> WORK*", parties=("svc",)))
        hz = next(h for h in res.hazards
                  if h.kind == "protocol-violation")
        assert hz.severity == "error"
        assert hz.subject == "boot@svc"
        assert "'init'" in hz.message
        assert "expected {work}" in hz.message

    def test_conforming_program_is_clean(self):
        res = _explore_with(
            _mailbox_program([("init", 0), ("work", 1), ("work", 2)]),
            Protocol("boot", "INIT -> WORK*", parties=("svc",)))
        assert not [h for h in res.hazards
                    if h.kind.startswith("protocol-")]

    def test_resync_drops_only_the_offender(self):
        # A A B against (A -> B)*: the second A is flagged and dropped,
        # after which the B completes the first exchange — exactly one
        # hazard, no cascade (FIFO delivery makes the one run enough)
        bus = protocol_bus(
            [Protocol("turns", "(A -> B)*", parties=("svc",))],
            include_default=False)
        explore(_mailbox_program([("a",), ("a",), ("b",)]),
                max_runs=1, reduce=(), monitors=lambda: bus)
        flagged = [h for h in bus.hazards
                   if h.kind == "protocol-violation"]
        assert len(flagged) == 1
        m = Protocol("turns", "(A -> B)*").machine()
        assert m.advance("a") and not m.advance("a") and m.advance("b")

    def test_outside_alphabet_ignored_unless_strict(self):
        loose = _explore_with(
            _mailbox_program([("init", 0), ("noise", 1), ("work", 2)]),
            Protocol("boot", "INIT -> WORK*", parties=("svc",)))
        assert not [h for h in loose.hazards
                    if h.kind.startswith("protocol-")]
        strict = _explore_with(
            _mailbox_program([("init", 0), ("noise", 1), ("work", 2)]),
            Protocol("boot", "INIT -> WORK*", parties=("svc",),
                     strict=True))
        hz = next(h for h in strict.hazards
                  if h.kind == "protocol-violation")
        assert "outside the protocol alphabet" in hz.message

    def test_incomplete_session_reported_when_asked(self):
        res = _explore_with(
            _mailbox_program([("req", 0)]),
            Protocol("rpc", "REQ -> REPLY", parties=("svc",),
                     complete=True))
        inc = [h for h in res.hazards if h.kind == "protocol-incomplete"]
        assert inc and all(h.severity == "info" for h in inc)
        assert "reply" in inc[0].message

    def test_max_violations_caps_hazards_not_counts(self):
        # 6 deposits of A against (A -> B)*: the first conforms, the
        # next 5 violate; the bus reports the cap, counts() the truth
        mon = ProtocolMonitor(
            [Protocol("turns", "(A -> B)*", parties=("svc",))],
            max_violations=2)
        bus = MonitorBus([mon])
        explore(_mailbox_program([("a",)] * 6), max_runs=1,
                reduce=(), monitors=lambda: bus)
        flagged = [h for h in bus.hazards
                   if h.kind == "protocol-violation"]
        assert len(flagged) == 2
        assert mon.counts() == {"turns": 5}

    def test_monitor_counts_per_protocol(self):
        bus = protocol_bus(
            [Protocol("turns", "(A -> B)*", parties=("svc",))],
            include_default=False)
        res = explore(_mailbox_program([("a",), ("a",), ("b",)]),
                      max_runs=1, reduce=(), monitors=lambda: bus)
        assert res.runs == 1
        mon = next(d for d in bus.detectors
                   if isinstance(d, ProtocolMonitor))
        assert mon.counts() == {"turns": 1}


# ---------------------------------------------------------------------------
# coroutine-channel conformance (CoChannel taps)
# ---------------------------------------------------------------------------

class TestCoChannelConformance:
    def _run(self, payloads, *protocols):
        bus = protocol_bus(list(protocols), include_default=False)
        sched = CoScheduler(monitors=bus)
        chan = CoChannel(capacity=len(payloads) + 1, sched=sched,
                         name="wire")

        def producer():
            for p in payloads:
                yield from chan.put(p)

        def consumer():
            for _ in payloads:
                yield from chan.get()
        sched.spawn(producer, name="producer")
        sched.spawn(consumer, name="consumer")
        sched.run()
        return bus

    def test_tapped_channel_flags_non_conforming_stream(self):
        bus = self._run([("work", 1), ("init", 0)],
                        Protocol("boot", "INIT -> WORK*",
                                 parties=("wire",)))
        hz = next(h for h in bus.hazards
                  if h.kind == "protocol-violation")
        assert hz.subject == "boot@wire"
        assert "expected {init}" in hz.message

    def test_tapped_channel_conforming_stream_clean(self):
        bus = self._run([("init", 0), ("work", 1)],
                        Protocol("boot", "INIT -> WORK*",
                                 parties=("wire",)))
        assert not bus.hazards

    def test_send_point_sees_deposit_order(self):
        bus = self._run([("init", 0), ("work", 1)],
                        Protocol("boot", "INIT -> WORK*",
                                 parties=("wire",), at="send"))
        assert not bus.hazards
        mon = next(d for d in bus.detectors
                   if isinstance(d, ProtocolMonitor))
        assert mon._machines[0].moved

    def test_untapped_channel_feeds_nothing(self):
        sched = CoScheduler(monitors=protocol_bus(
            [Protocol("p", "A")], include_default=False))
        chan = CoChannel(capacity=2)      # no sched= -> no taps

        def producer():
            yield from chan.put(("a",))

        def consumer():
            yield from chan.get()
        sched.spawn(producer)
        sched.spawn(consumer)
        sched.run()
        mon = next(d for d in sched.monitors.detectors
                   if isinstance(d, ProtocolMonitor))
        assert not mon._machines[0].moved
        assert not sched.monitors.hazards


# ---------------------------------------------------------------------------
# hazard dedup on (kind, subject, seq) — the cross-link contract
# ---------------------------------------------------------------------------

class TestHazardDedup:
    def _hz(self, message, subject="boot@worker", seq=77,
            kind="protocol-violation"):
        return Hazard(kind=kind, severity="error", message=message,
                      step=1, subject=subject, seq=seq)

    def test_same_subject_and_seq_count_once(self):
        bus = MonitorBus(detectors=[])
        # both ends of a link word the same wire message differently
        bus.publish(self._hz("seen from the sending node"))
        bus.publish(self._hz("seen from the receiving node"))
        assert len(bus.hazards) == 1

    def test_different_seq_is_a_different_violation(self):
        bus = MonitorBus(detectors=[])
        bus.publish(self._hz("first", seq=1))
        bus.publish(self._hz("second", seq=2))
        assert len(bus.hazards) == 2

    def test_subjectless_hazards_keep_message_identity(self):
        bus = MonitorBus(detectors=[])
        bus.publish(Hazard(kind="x", severity="error", message="one",
                           step=0))
        bus.publish(Hazard(kind="x", severity="error", message="two",
                           step=0))
        bus.publish(Hazard(kind="x", severity="error", message="one",
                           step=0))
        assert len(bus.hazards) == 2

    def test_on_hazard_hook_fires_once_per_new_hazard(self):
        seen = []
        bus = MonitorBus(detectors=[])
        bus.on_hazard = seen.append
        bus.publish(self._hz("worded one way"))
        bus.publish(self._hz("worded another way"))
        bus.publish(self._hz("third wording", seq=78))
        assert [h.seq for h in seen] == [77, 78]


# ---------------------------------------------------------------------------
# explain_hazard: a monitored witness, minimized
# ---------------------------------------------------------------------------

class TestExplainHazard:
    def test_finds_and_explains_a_protocol_witness(self):
        proto = Protocol("turns", "(PING -> PONG)*", parties=("svc",))
        exp = explain_hazard(
            _mailbox_program([("ping",), ("ping",), ("pong",)],
                             receives=3),
            "protocol-violation",
            monitors=lambda: protocol_bus([proto],
                                          include_default=False),
            max_runs=200)
        assert exp is not None
        assert exp.kind == "protocol-violation"

    def test_returns_none_when_nothing_is_flagged(self):
        proto = Protocol("turns", "(PING -> PONG)*", parties=("svc",))
        exp = explain_hazard(
            _mailbox_program([("ping",), ("pong",)], receives=2),
            "protocol-violation",
            monitors=lambda: protocol_bus([proto],
                                          include_default=False),
            max_runs=200)
        assert exp is None


# ---------------------------------------------------------------------------
# the CLI verbs
# ---------------------------------------------------------------------------

class TestProtocolCLI:
    def test_list_names_every_protocol_specimen(self, capsys):
        from repro.cli import main
        assert main(["protocol", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["bug"] for r in rows} >= {
            "msgorder-init-work", "turntaking-pingpong",
            "pipeline-outstanding"}
        assert all(r["alphabet"] for r in rows)

    def test_check_flags_buggy_and_clears_fixed(self, capsys):
        from repro.cli import main
        assert main(["protocol", "check", "bug:msgorder-init-work",
                     "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["flagged"] is True
        assert any(h["kind"] == "protocol-violation"
                   for h in report["hazards"])
        assert main(["protocol", "check", "bug:msgorder-init-work",
                     "--fixed", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["flagged"] is False

    def test_check_adhoc_spec_on_named_program(self, capsys):
        from repro.cli import main
        rc = main(["protocol", "check", "pingpong",
                   "--spec", "(PING -> PONG)*", "--at", "deliver",
                   "--max-runs", "2000", "--json"])
        out = json.loads(capsys.readouterr().out)
        assert rc in (0, 1)
        assert out["protocol"]["spec"] == "(PING -> PONG)*"

    def test_check_requires_a_spec_for_plain_programs(self, capsys):
        from repro.cli import main
        assert main(["protocol", "check", "pingpong"]) == 2

    def test_bad_adhoc_spec_is_a_usage_error(self, capsys):
        from repro.cli import main
        assert main(["protocol", "check", "pingpong",
                     "--spec", "(PING -> "]) == 2
