"""Trace rendering, error types, task bookkeeping, values formatting."""

import pytest

from repro.core import (DeadlockError, Emit, Pause, RandomPolicy, Scheduler,
                        SimLock, Task, TaskState)


class TestTrace:
    def _trace(self):
        sched = Scheduler(RandomPolicy(3))

        def worker(tag):
            for i in range(2):
                yield Emit((tag, i))
        sched.spawn(worker, "a", name="a")
        sched.spawn(worker, "b", name="b")
        return sched.run()

    def test_render_contains_tasks_and_outcome(self):
        text = self._trace().render()
        assert "a" in text and "b" in text
        assert "outcome: done" in text
        assert "output:" in text

    def test_render_last_n(self):
        trace = self._trace()
        short = trace.render(last=2)
        assert len(short.splitlines()) <= 4

    def test_steps_by_task(self):
        trace = self._trace()
        counts = trace.steps_by_task()
        assert counts["a"] == counts["b"] == 3   # 2 emits + final resume

    def test_events_for_filters(self):
        trace = self._trace()
        assert all(e.task_name == "a" for e in trace.events_for("a"))

    def test_event_describe(self):
        trace = self._trace()
        line = trace.events[0].describe()
        assert "#" in line and "/" in line

    def test_schedule_and_decisions_align(self):
        trace = self._trace()
        assert len(trace.schedule()) == len(trace.decisions()) == len(trace)


class TestDeadlockError:
    def test_message_lists_blockers(self):
        err = DeadlockError([("t1", "acquire L"), ("t2", "wait M")])
        assert "t1: acquire L" in str(err)
        assert err.blocked == [("t1", "acquire L"), ("t2", "wait M")]


class TestTask:
    def test_rejects_non_generator(self):
        with pytest.raises(TypeError, match="generator"):
            Task(lambda: None)

    def test_describe_block_defaults_to_state(self):
        def g():
            yield Pause()
        task = Task(g())
        assert task.describe_block() == "ready"

    def test_finished_flags(self):
        def g():
            yield Pause()
        task = Task(g())
        assert not task.finished and task.runnable
        task.state = TaskState.DONE
        assert task.finished and not task.runnable


class TestLockIntrospection:
    def test_owner_name_and_repr(self):
        from repro.core import Acquire, Release, run_tasks
        lock = SimLock("mine")
        seen = {}

        def worker():
            yield Acquire(lock)
            seen["owner"] = lock.owner_name()
            seen["repr"] = repr(lock)
            yield Release(lock)
        run_tasks(worker)
        assert seen["owner"] == "worker"
        assert "mine" in seen["repr"]
        assert lock.owner_name() is None


class TestPseudocodeValues:
    def test_format_value_booleans(self):
        from repro.pseudocode import format_value
        assert format_value(True) == "True"
        assert format_value(False) == "False"

    def test_format_value_numbers(self):
        from repro.pseudocode import format_value
        assert format_value(3) == "3"
        assert format_value(3.5) == "3.5"

    def test_message_value_repr_and_equality(self):
        from repro.pseudocode import MessageValue
        m1 = MessageValue("h", ("hello",))
        m2 = MessageValue("h", ("hello",))
        assert m1 == m2
        assert repr(m1) == "MESSAGE.h('hello')"

    def test_instance_identity(self):
        from repro.pseudocode import parse
        from repro.pseudocode.values import Instance
        program = parse("CLASS Box\nENDCLASS")
        a = Instance(program.classes["Box"])
        b = Instance(program.classes["Box"])
        assert a != b
        assert a.class_name == "Box"
        assert a.mailbox is not b.mailbox


class TestAnalysisDetails:
    def test_empty_footprint_warning(self):
        from repro.pseudocode import compile_program
        runtime = compile_program("""
DEFINE selfish()
  EXC_ACC
    local = 1
  END_EXC_ACC
ENDDEF
""")
        assert runtime.info.warnings
        assert any("references no" in w for w in runtime.info.warnings)

    def test_transitive_group_merge(self):
        """x~y via block1, y~z via block2 → one group {x,y,z}."""
        from repro.pseudocode import compile_program
        runtime = compile_program("""
x = 0
y = 0
z = 0
DEFINE f()
  EXC_ACC
    x = y
  END_EXC_ACC
ENDDEF
DEFINE g()
  EXC_ACC
    y = z
  END_EXC_ACC
ENDDEF
""")
        assert list(runtime.info.groups.values()) and \
            ("x", "y", "z") in runtime.info.groups.values()

    def test_receive_methods_recorded(self):
        from repro.pseudocode import compile_program
        runtime = compile_program("""
CLASS R
  DEFINE loop()
    ON_RECEIVING
      MESSAGE.m(v)
        PRINT v
  ENDDEF
ENDCLASS
""")
        assert "loop" in runtime.info.receive_methods

    def test_params_excluded_from_footprint(self):
        from repro.pseudocode import compile_program
        runtime = compile_program("""
x = 0
DEFINE f(x)
  EXC_ACC
    x = x + 1
  END_EXC_ACC
ENDDEF
""")
        # the parameter shadows the global: footprint is empty
        block = runtime.info.exc_blocks[0]
        assert "x" not in block.footprint
