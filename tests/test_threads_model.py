"""The Java-flavoured thread model: JThread, Monitor, atomics."""

import threading
import time

import pytest

from repro.threads import (AtomicBoolean, AtomicInteger, AtomicReference,
                           JThread, Monitor, MonitorStateError, join_all,
                           spawn_all, synchronized)


class TestJThread:
    def test_run_result_via_join(self):
        t = JThread(target=lambda: 21 * 2).start()
        assert t.join() == 42

    def test_subclass_override(self):
        class Doubler(JThread):
            def __init__(self, n):
                super().__init__(name="doubler")
                self.n = n

            def run(self):
                return self.n * 2
        assert Doubler(5).start().join() == 10

    def test_exception_reraised_in_joiner(self):
        def boom():
            raise ValueError("inside thread")
        t = JThread(target=boom).start()
        with pytest.raises(ValueError, match="inside thread"):
            t.join()
        assert isinstance(t.error, ValueError)

    def test_double_start_rejected(self):
        t = JThread(target=lambda: None).start()
        t.join()
        with pytest.raises(RuntimeError, match="already started"):
            t.start()

    def test_join_timeout(self):
        stop = threading.Event()
        t = JThread(target=stop.wait).start()
        with pytest.raises(TimeoutError):
            t.join(timeout=0.05)
        stop.set()
        t.join()

    def test_spawn_join_all(self):
        results = join_all(spawn_all(*(lambda i=i: i for i in range(5))))
        assert sorted(results) == [0, 1, 2, 3, 4]


class TestMonitor:
    def test_reentrant(self):
        m = Monitor()
        with m:
            with m:
                assert m.held_by_me
        assert not m.held_by_me

    def test_wait_requires_ownership(self):
        m = Monitor()
        with pytest.raises(MonitorStateError):
            m.wait()

    def test_notify_requires_ownership(self):
        m = Monitor()
        with pytest.raises(MonitorStateError):
            m.notify_all()

    def test_wait_until_guarded_handoff(self):
        m = Monitor()
        state = {"ready": False, "observed": None}

        def consumer():
            with m:
                m.wait_until(lambda: state["ready"])
                state["observed"] = "consumed"

        def producer():
            with m:
                state["ready"] = True
                m.notify_all()
        t1 = JThread(target=consumer).start()
        time.sleep(0.02)
        t2 = JThread(target=producer).start()
        join_all([t1, t2])
        assert state["observed"] == "consumed"

    def test_wait_until_timeout(self):
        m = Monitor()
        with m:
            assert m.wait_until(lambda: False, timeout=0.05) is False

    def test_wait_preserves_reentrancy_depth(self):
        m = Monitor()
        state = {"go": False}

        def waiter():
            with m:
                with m:                     # depth 2
                    m.wait_until(lambda: state["go"])
                    assert m.held_by_me
                assert m.held_by_me
            assert not m.held_by_me
            return "ok"

        t = JThread(target=waiter).start()
        time.sleep(0.02)
        with m:
            state["go"] = True
            m.notify_all()
        assert t.join() == "ok"

    def test_synchronized_decorator_serializes(self):
        class Counter:
            def __init__(self):
                self.value = 0

            @synchronized
            def bump(self):
                snapshot = self.value
                time.sleep(0.0001)     # widen the race window
                self.value = snapshot + 1
        counter = Counter()
        threads = spawn_all(*(
            (lambda: [counter.bump() for _ in range(50)]),) * 4)
        join_all(threads)
        assert counter.value == 200

    def test_synchronized_shares_intrinsic_monitor(self):
        class Thing:
            @synchronized
            def a(self):
                return self._monitor

            @synchronized
            def b(self):
                return self._monitor
        thing = Thing()
        assert thing.a() is thing.b()


class TestAtomics:
    def test_atomic_integer_concurrent_increments(self):
        n = AtomicInteger()
        join_all(spawn_all(*(
            (lambda: [n.increment_and_get() for _ in range(500)]),) * 4))
        assert n.get() == 2000

    def test_compare_and_set(self):
        n = AtomicInteger(5)
        assert n.compare_and_set(5, 9)
        assert not n.compare_and_set(5, 100)
        assert n.get() == 9

    def test_get_and_update(self):
        n = AtomicInteger(10)
        assert n.get_and_update(lambda v: v * 2) == 10
        assert n.get() == 20

    def test_atomic_reference_identity_cas(self):
        first, second = object(), object()
        ref = AtomicReference(first)
        assert ref.compare_and_set(first, second)
        assert ref.get() is second

    def test_atomic_boolean_test_and_set_latches_once(self):
        flag = AtomicBoolean()
        winners = []

        def contender(i):
            if not flag.test_and_set():
                winners.append(i)
        join_all(spawn_all(*(lambda i=i: contender(i) for i in range(8))))
        assert len(winners) == 1
