"""Mailbox delivery policies and the messaging effects."""

import pytest

from repro.core import (DeliveryPolicy, Emit, Mailbox, MailboxError,
                        Receive, Scheduler, Send, TaskFailed, run_tasks)
from repro.verify import explore


from functools import lru_cache


def _order_program(policy):
    """Two senders (2 + 1 messages), one receiver; observation = order."""
    def program(sched):
        mb = Mailbox("box", policy=policy)
        got: list = []

        def sender(tag, count):
            for i in range(count):
                yield Send(mb, (tag, i))

        def receiver():
            for _ in range(3):
                got.append((yield Receive(mb)))
        sched.spawn(sender, "a", 2, name="sender-a")
        sched.spawn(sender, "b", 1, name="sender-b")
        sched.spawn(receiver, name="receiver")
        return lambda: tuple(got)
    return program


@lru_cache(maxsize=8)
def _arrival_orders(policy) -> frozenset:
    res = explore(_order_program(policy), max_runs=100_000)
    assert res.complete
    return frozenset(res.observations())


class TestDeliveryPolicies:
    def test_fifo_single_order(self):
        """FIFO: arrival order is exactly global send order, so the set
        of arrival orders equals the set of send interleavings."""
        orders = _arrival_orders(DeliveryPolicy.FIFO)
        for order in orders:
            # within each sender, FIFO always holds
            a_items = [i for tag, i in order if tag == "a"]
            b_items = [i for tag, i in order if tag == "b"]
            assert a_items == sorted(a_items)
            assert b_items == sorted(b_items)

    def test_per_sender_fifo_preserves_sender_order(self):
        orders = _arrival_orders(DeliveryPolicy.PER_SENDER_FIFO)
        for order in orders:
            a_items = [i for tag, i in order if tag == "a"]
            assert a_items == sorted(a_items)

    def test_arbitrary_includes_reordering_within_sender(self):
        orders = _arrival_orders(DeliveryPolicy.ARBITRARY)
        reordered = [o for o in orders
                     if [i for tag, i in o if tag == "a"] == [1, 0]]
        assert reordered, "ARBITRARY must allow same-sender reordering"

    def test_arbitrary_is_superset_of_fifo(self):
        assert _arrival_orders(DeliveryPolicy.FIFO) <= \
            _arrival_orders(DeliveryPolicy.ARBITRARY)

    def test_per_sender_between_fifo_and_arbitrary(self):
        fifo = _arrival_orders(DeliveryPolicy.FIFO)
        per_sender = _arrival_orders(DeliveryPolicy.PER_SENDER_FIFO)
        arbitrary = _arrival_orders(DeliveryPolicy.ARBITRARY)
        assert fifo <= per_sender <= arbitrary

    def test_causal_respects_happens_before(self):
        """A message sent after receiving another is causally later and
        must not overtake it at a shared destination."""
        def program(sched):
            dest = Mailbox("dest", policy=DeliveryPolicy.CAUSAL)
            relay_box = Mailbox("relay-in", policy=DeliveryPolicy.CAUSAL)

            def origin():
                yield Send(dest, "first")
                yield Send(relay_box, "go")

            def relay():
                yield Receive(relay_box)
                # causally after "first" was sent
                yield Send(dest, "second")

            def receiver():
                for _ in range(2):
                    got = yield Receive(dest)
                    yield Emit(got)
            sched.spawn(origin)
            sched.spawn(relay)
            sched.spawn(receiver)
        res = explore(program)
        assert res.complete
        assert res.output_strings() == {"firstsecond"}


class TestSelectiveReceive:
    def test_matcher_skips_non_matching(self):
        mb = Mailbox("box")

        def sender():
            yield Send(mb, ("noise", 0))
            yield Send(mb, ("signal", 1))

        def receiver():
            got = yield Receive(mb, matcher=lambda m: m[0] == "signal")
            yield Emit(got)
            leftover = yield Receive(mb)
            yield Emit(leftover)
        trace = run_tasks(sender, receiver)
        assert trace.output == [("signal", 1), ("noise", 0)]

    def test_fifo_with_matcher_blocks_behind_head(self):
        """Under FIFO the head is the only candidate: a non-matching
        head blocks a selective receive (head-of-line blocking)."""
        from repro.core import DeadlockError
        mb = Mailbox("box", policy=DeliveryPolicy.FIFO)

        def sender():
            yield Send(mb, "wrong")

        def receiver():
            yield Receive(mb, matcher=lambda m: m == "right")
        s = Scheduler()
        s.spawn(sender)
        s.spawn(receiver)
        with pytest.raises(DeadlockError):
            s.run()


class TestMailboxLifecycle:
    def test_send_to_closed_mailbox_fails(self):
        mb = Mailbox("box")
        mb.close()

        def sender():
            yield Send(mb, "late")
        with pytest.raises(TaskFailed) as err:
            run_tasks(sender)
        assert isinstance(err.value.original, MailboxError)

    def test_peek_and_len(self):
        mb = Mailbox("box")

        def sender():
            yield Send(mb, 1)
            yield Send(mb, 2)
        run_tasks(sender)
        assert len(mb) == 2
        assert mb.peek_messages() == [1, 2]

    def test_delivered_count(self):
        mb = Mailbox("box")

        def sender():
            yield Send(mb, "x")

        def receiver():
            yield Receive(mb)
        run_tasks(sender, receiver)
        assert mb.delivered_count == 1
