"""Misconception engine: taxonomy, catalog, semantics, students."""

import pytest

from repro.misconceptions import (CATALOG, LEVELS, MP_IDS,
                                  PAPER_COHORT_SIZE, SM_IDS,
                                  SimulatedStudent, answer_delta, by_id,
                                  level_of, mp_flags_for, mutated_lts,
                                  sm_flags_for, translate_question)
from repro.study.questions import question_bank
from repro.verify import ScenarioQuestion


class TestTaxonomy:
    def test_table1_has_six_rows(self):
        assert len(LEVELS) == 6
        assert [row.code for row in LEVELS] == \
            ["D1", "T1", "C1", "I1", "I2", "U1"]

    def test_levels_grouped_by_category(self):
        categories = [row.category for row in LEVELS]
        assert categories == ["Description", "Terminology", "Concurrency",
                              "Implementation", "Implementation",
                              "Uncertainty"]

    def test_lookup(self):
        assert level_of("I2").category == "Implementation"
        with pytest.raises(KeyError):
            level_of("Z9")


class TestCatalog:
    def test_fourteen_entries_with_paper_counts(self):
        assert len(CATALOG) == 14
        assert len(MP_IDS) == 6 and len(SM_IDS) == 8
        # Table III's exact counts
        expected = {"M1": 6, "M2": 1, "M3": 7, "M4": 7, "M5": 6, "M6": 7,
                    "S1": 3, "S2": 1, "S3": 2, "S4": 4, "S5": 9, "S6": 1,
                    "S7": 10, "S8": 2}
        assert {m.mid: m.paper_count for m in CATALOG} == expected

    def test_prevalence_normalized_by_cohort(self):
        assert by_id("S7").prevalence == 10 / PAPER_COHORT_SIZE

    def test_every_entry_has_valid_level(self):
        for m in CATALOG:
            level_of(m.level)

    def test_semantic_entries_name_flags(self):
        for m in CATALOG:
            if m.kind == "semantic":
                assert m.flag is not None

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            by_id("M99")


class TestSemanticFlags:
    def test_sm_flags_mapping(self):
        flags = sm_flags_for({"S5", "S6", "S7"})
        assert flags.acquire_requires_condition
        assert flags.wait_blocks_monitor
        assert flags.lock_span_method

    def test_mp_flags_mapping(self):
        flags = mp_flags_for({"M3", "M4", "M5"})
        assert flags.send_synchronous
        assert flags.ack_synchronous
        assert flags.delivery == "fifo"

    def test_cross_section_ids_ignored(self):
        assert sm_flags_for({"M5"}) == sm_flags_for(())
        assert mp_flags_for({"S7"}) == mp_flags_for(())

    def test_noise_ids_do_not_mutate_model(self):
        assert sm_flags_for({"S1", "S4"}) == sm_flags_for(())

    def test_bad_section_rejected(self):
        with pytest.raises(ValueError):
            mutated_lts("quantum", ())


class TestAnswerDeltas:
    def test_every_semantic_misconception_flips_some_question(self):
        bank = question_bank()
        sm_qs = [i.question for i in bank if i.section == "sm"]
        mp_qs = [i.question for i in bank if i.section == "mp"]
        for mid in ("S5", "S6", "S7"):
            assert answer_delta("sm", [mid], sm_qs), mid
        for mid in ("M3", "M4", "M5"):
            assert answer_delta("mp", [mid], mp_qs), mid

    def test_no_misconceptions_no_delta(self):
        bank = question_bank()
        sm_qs = [i.question for i in bank if i.section == "sm"]
        assert answer_delta("sm", [], sm_qs) == []

    def test_deltas_mostly_overreject(self):
        """Most semantic misconceptions shrink the behaviour space, so
        flips are overwhelmingly YES → NO (the paper's students ruled
        out feasible executions far more often than inventing them)."""
        bank = question_bank()
        sm_qs = [i.question for i in bank if i.section == "sm"]
        flips = answer_delta("sm", ["S5", "S7"], sm_qs)
        assert flips
        assert all(true == "YES" and wrong == "NO"
                   for _, true, wrong in flips)


class TestQuestionTranslation:
    def test_m3_rewrites_handle_to_send(self):
        q = ScenarioQuestion(
            qid="x", text="",
            scenario=(("bridge", "handle", "redCarA", "redEnter"),))
        translated = translate_question(q, {"M3"})
        assert translated.scenario == (("redCarA", "send", "redEnter"),)

    def test_m4_rewrites_recv_to_handle(self):
        q = ScenarioQuestion(
            qid="x", text="",
            scenario=(("redCarB", "recv", "succeedEnter"),))
        translated = translate_question(q, {"M4"})
        assert translated.scenario == \
            (("bridge", "handle", "redCarB", "redEnter"),)

    def test_exit_ack_maps_to_exit_handle(self):
        q = ScenarioQuestion(
            qid="x", text="",
            scenario=(("blueCarA", "recv", ("succeedExit", 2)),))
        translated = translate_question(q, {"M4"})
        assert translated.scenario == \
            (("bridge", "handle", "blueCarA", "blueExit"),)

    def test_no_semantic_ids_identity(self):
        q = ScenarioQuestion(qid="x", text="",
                             scenario=(("a", "recv", "b"),))
        assert translate_question(q, {"S7"}) is q


class TestSimulatedStudent:
    def _item(self, qid):
        return next(i for i in question_bank() if i.qid == qid)

    def test_perfect_student_answers_correctly(self):
        student = SimulatedStudent("ace", frozenset(), skill=1.0,
                                   capacity=10**9)
        for item in question_bank():
            answer = student.answer(item)
            assert answer.correct, item.qid
            assert not answer.tags

    def test_s7_student_fails_lock_span_questions(self):
        student = SimulatedStudent("s7-holder", frozenset({"S7"}),
                                   skill=1.0, capacity=10**9)
        answer = student.answer(self._item("SM-c"))
        assert not answer.correct
        assert "S7" in answer.tags

    def test_m5_student_fails_order_questions(self):
        student = SimulatedStudent("m5-holder", frozenset({"M5"}),
                                   skill=1.0, capacity=10**9)
        answer = student.answer(self._item("MP-c"))
        assert not answer.correct
        assert "M5" in answer.tags

    def test_misconception_only_affects_its_section(self):
        student = SimulatedStudent("m5-holder", frozenset({"M5"}),
                                   skill=1.0, capacity=10**9)
        for item in question_bank():
            if item.section == "sm":
                assert student.answer(item).correct, item.qid

    def test_uncertainty_overload_on_big_questions(self):
        student = SimulatedStudent("u1", frozenset({"S8"}), skill=1.0,
                                   capacity=100, seed=3)
        big_items = [i for i in question_bank()
                     if i.section == "sm" and i.size > 100]
        answers = [student.answer(i) for i in big_items]
        assert any(a.overloaded for a in answers)

    def test_practice_reduces_errors(self):
        student_ids = frozenset({"S5", "S7"})
        sm_items = [i for i in question_bank() if i.section == "sm"]

        def errors(practice, seed):
            student = SimulatedStudent("p", student_ids, skill=0.9,
                                       capacity=600, seed=seed)
            return sum(not a.correct
                       for a in student.answer_section(sm_items,
                                                       practice=practice))
        fresh = sum(errors(0.0, s) for s in range(12))
        practiced = sum(errors(0.9, s) for s in range(12))
        assert practiced < fresh

    def test_student_determinism(self):
        items = list(question_bank())
        a = SimulatedStudent("same", frozenset({"S5"}), seed=7)
        b = SimulatedStudent("same", frozenset({"S5"}), seed=7)
        assert [x.verdict for x in a.answer_section(items)] == \
            [x.verdict for x in b.answer_section(items)]

    def test_exhibited_collects_tags(self):
        student = SimulatedStudent("s", frozenset({"S7"}), skill=1.0,
                                   capacity=10**9)
        answers = student.answer_section(
            [i for i in question_bank() if i.section == "sm"])
        assert "S7" in student.exhibited(answers)
