"""Online hazard monitors: detectors, non-interference, gallery fixtures."""

import pytest

from repro.core import Receive, Scheduler, Send
from repro.core.mailbox import DeliveryPolicy, Mailbox
from repro.core.trace import TraceEvent
from repro.obs import (DeadlockDetector, MonitorBus, StarvationDetector,
                       default_detectors, trace_locksets)
from repro.problems.bug_gallery import BUG_IDS, detect_bug, gallery
from repro.verify import explore


def _spec(bug_id):
    return next(s for s in gallery() if s.bug_id == bug_id)


class TestGalleryFixtures:
    """Every catalogued bug is a monitor regression fixture."""

    @pytest.mark.parametrize("bug_id", BUG_IDS)
    def test_every_bug_flagged_by_a_shipped_detector(self, bug_id):
        report = detect_bug(_spec(bug_id))
        assert report["detected"], report
        assert set(report["expected"]) & set(report["hazard_kinds"]), report

    @pytest.mark.parametrize("bug_id", BUG_IDS)
    def test_fixed_variant_raises_no_serious_hazard(self, bug_id):
        report = detect_bug(_spec(bug_id))
        assert report["fixed_clean"], report


class TestNonInterference:
    """Monitors reconstruct state from the event stream only — they must
    not change what the explorer does, under any reduction."""

    @pytest.mark.parametrize("reduce", [(), "all"],
                             ids=["naive", "reduced"])
    @pytest.mark.parametrize("bug_id",
                             ["deadlock-lock-ordering",
                              "liveness-lost-wakeup"])
    def test_exploration_statistics_identical(self, bug_id, reduce):
        spec = _spec(bug_id)
        off = explore(spec.buggy, max_runs=5000, reduce=reduce)
        on = explore(spec.buggy, max_runs=5000, reduce=reduce,
                     monitors=True)
        assert on.runs == off.runs
        assert on.decisions == off.decisions
        assert on.pruned_runs == off.pruned_runs
        assert on.stats.sleep_prunes == off.stats.sleep_prunes
        assert on.stats.fingerprint_hits == off.stats.fingerprint_hits
        assert dict(on.outcomes) == dict(off.outcomes)
        assert on.hazards and not off.hazards

    def test_results_compare_equal_despite_hazards(self):
        spec = _spec("deadlock-lock-ordering")
        off = explore(spec.buggy, max_runs=5000, reduce="all")
        on = explore(spec.buggy, max_runs=5000, reduce="all",
                     monitors=True)
        # hazards is compare=False metadata: the *answer* is unchanged
        assert set(on.observations()) == set(off.observations())
        assert on.deadlock_possible == off.deadlock_possible


class TestDetectors:
    def test_deadlock_cycle_names_tasks_and_locks(self):
        res = explore(_spec("deadlock-lock-ordering").buggy,
                      max_runs=5000, monitors=True)
        dead = [h for h in res.hazards if h.kind == "deadlock"]
        assert dead, res.hazards
        assert any("circular wait" in h.message
                   and "account-a" in h.message
                   and "account-b" in h.message for h in dead)
        inversions = [h for h in res.hazards
                      if h.kind == "lock-order-inversion"]
        assert inversions and all(h.severity == "warning"
                                  for h in inversions)

    def test_lost_wakeup_found_with_detail(self):
        res = explore(_spec("liveness-lost-wakeup").buggy,
                      max_runs=5000, monitors=True)
        lost = [h for h in res.hazards if h.kind == "lost-wakeup"]
        assert lost and all(h.severity == "error" for h in lost)
        assert any("consumer" in h.tasks for h in lost)

    def test_data_race_reports_missing_locks(self):
        res = explore(_spec("atomicity-check-then-act").buggy,
                      max_runs=5000, monitors=True)
        races = [h for h in res.hazards if h.kind == "data-race"]
        assert races
        assert any("slots" in h.message for h in races)

    def test_starvation_fires_from_ready_sets(self):
        bus = MonitorBus([StarvationDetector(threshold=3)])
        for step in range(6):
            bus.feed(TraceEvent(step=step, task_tid=0, task_name="hog",
                                kind="run", effect_repr="pause",
                                chosen_index=0, fanout=2),
                     ("hog", "starved"))
        starving = [h for h in bus.hazards if h.kind == "starvation"]
        assert starving and "starved" in starving[0].tasks
        # fires once per task, not once per further decision
        assert len(starving) == 1

    def test_message_reorder_witness_refutes_m5(self):
        def program(sched):
            box = Mailbox("box", policy=DeliveryPolicy.ARBITRARY)

            def sender():
                yield Send(box, "m1")
                yield Send(box, "m2")

            def receiver():
                first = yield Receive(box)
                second = yield Receive(box)
                return (first, second)

            sched.spawn(sender, name="sender")
            sched.spawn(receiver, name="receiver")
            return lambda: None

        res = explore(program, max_runs=5000, monitors=True)
        reorders = [h for h in res.hazards if h.kind == "message-reorder"]
        assert reorders, res.hazards
        assert all(h.severity == "info" and "M5" in h.refutes
                   for h in reorders)

    def test_scan_matches_online_feed(self):
        spec = _spec("deadlock-lock-ordering")
        online = MonitorBus()
        sched = Scheduler(raise_on_deadlock=False, raise_on_failure=False,
                          monitors=online)
        spec.buggy(sched)
        trace = sched.run()
        offline = MonitorBus()
        offline.scan(trace)
        assert ({h.key for h in online.hazards}
                == {h.key for h in offline.hazards})

    def test_bus_is_quiet_on_a_clean_program(self):
        res = explore(_spec("deadlock-lock-ordering").fixed,
                      max_runs=5000, reduce="all", monitors=True)
        assert not [h for h in res.hazards
                    if h.severity in ("error", "warning")]


class TestMonitorPlumbing:
    def test_default_detector_set_is_fresh_per_bus(self):
        a, b = default_detectors(), default_detectors()
        assert a is not b
        assert {type(d) for d in a} == {type(d) for d in b}

    def test_explore_accepts_factory(self):
        made = []

        def factory():
            bus = MonitorBus([DeadlockDetector()])
            made.append(bus)
            return bus

        res = explore(_spec("deadlock-lock-ordering").buggy,
                      max_runs=5000, monitors=factory)
        assert made and any(h.kind == "deadlock" for h in res.hazards)

    def test_explore_rejects_garbage_monitors(self):
        with pytest.raises(TypeError):
            explore(_spec("deadlock-lock-ordering").buggy,
                    max_runs=10, monitors=42)

    def test_hazard_counts_rollup(self):
        res = explore(_spec("deadlock-lock-ordering").buggy,
                      max_runs=5000, monitors=True)
        counts = res.hazard_counts()
        assert counts.get("deadlock", 0) >= 1
        assert sum(counts.values()) == len(res.hazards)

    def test_trace_locksets_reconstruction(self):
        from repro.core import Access, AccessKind, Acquire, Release, SimLock

        def program(sched):
            lock = SimLock("guard")

            def worker():
                yield Access("x", AccessKind.WRITE)
                yield Acquire(lock)
                yield Access("x", AccessKind.WRITE)
                yield Release(lock)

            sched.spawn(worker, name="w")
            return lambda: None

        sched = Scheduler(raise_on_deadlock=False, raise_on_failure=False)
        program(sched)
        trace = sched.run()
        locksets = trace_locksets(trace)
        accesses = [i for i, e in enumerate(trace.events)
                    if e.access_var == "x"]
        assert len(accesses) == 2
        assert locksets.get(accesses[0], frozenset()) == frozenset()
        assert locksets.get(accesses[1]) == frozenset({"guard"})


class TestCoSchedulerMonitors:
    def test_cooperative_deadlock_reported(self):
        from repro.coroutines import CoDeadlock, CoEvent, CoScheduler

        bus = MonitorBus()
        sched = CoScheduler(monitors=bus)
        event = CoEvent()

        def waiter():
            yield from event.wait()   # nobody ever sets it

        sched.spawn(waiter, name="w")
        with pytest.raises(CoDeadlock):
            sched.run()
        assert any(h.kind == "deadlock" for h in bus.hazards)

    def test_cooperative_clean_run_is_quiet(self):
        from repro.coroutines import CoScheduler, pause

        bus = MonitorBus()
        sched = CoScheduler(monitors=bus)

        def worker():
            yield pause()

        sched.spawn(worker, name="w")
        sched.run()
        assert not bus.flagged
        assert bus.events_seen > 0


class TestSimActorMonitors:
    def test_actor_traffic_reaches_the_kernel_bus(self):
        from repro.actors import Actor
        from repro.actors.sim import SimActorSystem
        from repro.core import Emit

        class Echo(Actor):
            def receive(self, message, sender):
                if sender is not None:
                    sender.tell(("echo", message), sender=self.self_ref)

        bus = MonitorBus()
        sched = Scheduler(raise_on_deadlock=False, raise_on_failure=False,
                          monitors=bus)
        system = SimActorSystem(sched)

        def driver():
            echo = system.spawn(Echo, name="echo")
            reply = yield from system.ask_gen(echo, "ping")
            yield Emit(reply)

        sched.spawn(driver, name="driver")
        trace = sched.run()
        assert trace.outcome == "done"
        assert system.hazards() == bus.hazards
        assert bus.events_seen == len(trace.events)


@pytest.mark.slow
def test_paper_scale_bridge_monitors_non_interfering():
    """Nightly: the 3-car bridge's full reduced schedule space explores
    identically with the whole detector set attached, and stays clean."""
    from repro.problems.single_lane_bridge import bridge_program

    program = bridge_program()
    off = explore(program, reduce="all")
    on = explore(program, reduce="all", monitors=True)
    assert off.complete and on.complete
    assert on.runs == off.runs
    assert on.decisions == off.decisions
    assert on.stats.sleep_prunes == off.stats.sleep_prunes
    assert not [h for h in on.hazards
                if h.severity in ("error", "warning")]
