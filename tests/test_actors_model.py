"""Actor model: threaded system, patterns, supervision, sim backend."""

import threading

import pytest

from repro.actors import (Actor, ActorSystem, Ask, RoundRobinRouter,
                          SupervisionDirective, aggregate, ask)


class Echo(Actor):
    def receive(self, message, sender):
        if isinstance(message, Ask):
            self.context.reply(("echo", message.payload))


class Collector(Actor):
    def __init__(self, sink, signal=None, expect=None):
        super().__init__()
        self.sink = sink
        self.signal = signal
        self.expect = expect

    def receive(self, message, sender):
        self.sink.append(message)
        if self.signal and self.expect and len(self.sink) >= self.expect:
            self.signal.set()


class TestActorSystem:
    def test_tell_processes_in_order_per_sender(self):
        sink, done = [], threading.Event()
        with ActorSystem(workers=2) as system:
            ref = system.spawn(Collector, sink, done, 10)
            for i in range(10):
                ref.tell(i)
            assert done.wait(timeout=10)
        assert sink == list(range(10))

    def test_ask_round_trip(self):
        with ActorSystem(workers=2) as system:
            echo = system.spawn(Echo, name="echo")
            assert ask(system, echo, "ping") == ("echo", "ping")

    def test_lshift_operator_sends(self):
        sink, done = [], threading.Event()
        with ActorSystem(workers=1) as system:
            ref = system.spawn(Collector, sink, done, 1)
            ref << "hello"
            assert done.wait(timeout=10)
        assert sink == ["hello"]

    def test_stop_routes_leftovers_to_dead_letters(self):
        with ActorSystem(workers=1) as system:
            sink = []
            ref = system.spawn(Collector, sink)
            system.stop(ref)
            system.drain(timeout=10)
            ref.tell("too late")
            system.drain(timeout=10)
            assert any(dl.message == "too late"
                       for dl in system.dead_letters)

    def test_actor_serialization_no_interleaved_handler(self):
        """Two handlers of the same actor never run concurrently."""
        overlaps = []

        class Probe(Actor):
            def __init__(self):
                super().__init__()
                self.inside = 0

            def receive(self, message, sender):
                self.inside += 1
                if self.inside > 1:
                    overlaps.append(message)
                import time
                time.sleep(0.0005)
                self.inside -= 1

        with ActorSystem(workers=4) as system:
            ref = system.spawn(Probe)
            for i in range(50):
                ref.tell(i)
            system.drain(timeout=20)
        assert overlaps == []

    def test_pre_start_runs_before_first_message(self):
        order = []
        done = threading.Event()

        class Starter(Actor):
            def pre_start(self):
                order.append("pre_start")

            def receive(self, message, sender):
                order.append(message)
                done.set()

        with ActorSystem(workers=1) as system:
            ref = system.spawn(Starter)
            ref.tell("first")
            assert done.wait(timeout=10)
        assert order == ["pre_start", "first"]

    def test_post_stop_hook(self):
        stopped = threading.Event()

        class Stopper(Actor):
            def receive(self, message, sender):
                pass

            def post_stop(self):
                stopped.set()

        with ActorSystem(workers=1) as system:
            ref = system.spawn(Stopper)
            system.stop(ref)
            assert stopped.wait(timeout=10)


class TestBehaviours:
    def test_become_unbecome_stack(self):
        sink, done = [], threading.Event()

        class Switch(Actor):
            def receive(self, message, sender):
                if message == "lock":
                    self.become(self.locked)
                else:
                    sink.append(("open", message))
                    self._maybe_done()

            def locked(self, message, sender):
                if message == "unlock":
                    self.unbecome()
                else:
                    sink.append(("locked", message))
                self._maybe_done()

            def _maybe_done(self):
                if len(sink) >= 3:
                    done.set()

        with ActorSystem(workers=1) as system:
            ref = system.spawn(Switch)
            for msg in ["a", "lock", "b", "unlock", "c"]:
                ref.tell(msg)
            assert done.wait(timeout=10)
        assert sink == [("open", "a"), ("locked", "b"), ("open", "c")]


class TestSupervision:
    class Fragile(Actor):
        def __init__(self, sink):
            super().__init__()
            self.sink = sink

        def receive(self, message, sender):
            if message == "boom":
                raise RuntimeError("actor crash")
            self.sink.append(message)

    def test_restart_keeps_actor_alive(self):
        sink = []
        with ActorSystem(workers=1,
                         directive=SupervisionDirective.RESTART) as system:
            ref = system.spawn(self.Fragile, sink)
            ref.tell("before")
            ref.tell("boom")
            ref.tell("after")
            system.drain(timeout=10)
            assert system.failures()
        assert sink == ["before", "after"]

    def test_stop_directive_kills_actor(self):
        sink = []
        with ActorSystem(workers=1,
                         directive=SupervisionDirective.STOP) as system:
            ref = system.spawn(self.Fragile, sink)
            ref.tell("boom")
            system.drain(timeout=10)
            ref.tell("after")
            system.drain(timeout=10)
            assert any(dl.message == "after" for dl in system.dead_letters)
        assert sink == []


class TestPatterns:
    def test_round_robin_router_spreads_load(self):
        sink_a, sink_b = [], []
        done = threading.Event()

        class Tagger(Actor):
            def __init__(self, sink):
                super().__init__()
                self.sink = sink

            def receive(self, message, sender):
                self.sink.append(message)
                if len(sink_a) + len(sink_b) >= 6:
                    done.set()

        with ActorSystem(workers=2) as system:
            a = system.spawn(Tagger, sink_a)
            b = system.spawn(Tagger, sink_b)
            router = system.spawn(RoundRobinRouter, [a, b])
            for i in range(6):
                router.tell(i)
            assert done.wait(timeout=10)
        assert len(sink_a) == 3 and len(sink_b) == 3

    def test_aggregate_collects_expected(self):
        collected = []
        done = threading.Event()

        def on_complete(items):
            collected.extend(items)
            done.set()

        with ActorSystem(workers=2) as system:
            agg = system.spawn(aggregate, 3, on_complete)
            for i in range(3):
                agg.tell(i)
            assert done.wait(timeout=10)
        assert sorted(collected) == [0, 1, 2]

    def test_ask_timeout(self):
        class Mute(Actor):
            def receive(self, message, sender):
                pass
        with ActorSystem(workers=1) as system:
            mute = system.spawn(Mute)
            with pytest.raises(TimeoutError):
                ask(system, mute, "anyone?", timeout=0.1)


class TestSimActors:
    def test_all_message_orders_enumerable(self):
        from repro.actors import SimActorSystem
        from repro.verify import explore

        class Logger(Actor):
            def __init__(self, log):
                super().__init__()
                self.log = log

            def receive(self, message, sender):
                self.log.append(message)

        def program(sched):
            log = []
            system = SimActorSystem(sched)

            def driver():
                ref = system.spawn(Logger, log, name="logger")
                yield from system.tell_gen(ref, "x")
                yield from system.tell_gen(ref, "y")
            sched.spawn(driver, name="driver")
            return lambda: tuple(log)
        res = explore(program)
        assert res.complete
        assert res.observations() == {("x", "y"), ("y", "x")}

    def test_sim_ask_round_trip(self):
        from repro.actors import SimActorSystem
        from repro.core import Emit, Scheduler

        class Doubler(Actor):
            def receive(self, message, sender):
                sender.tell(message * 2)

        s = Scheduler()
        system = SimActorSystem(s)

        def driver():
            ref = system.spawn(Doubler, name="doubler")
            reply = yield from system.ask_gen(ref, 21)
            yield Emit(reply)
        s.spawn(driver, name="driver")
        assert s.run().output == [42]

    def test_sim_actor_spawning_actor(self):
        from repro.actors import SimActorSystem
        from repro.core import Scheduler

        log = []

        class Child(Actor):
            def receive(self, message, sender):
                log.append(("child", message))

        class Parent(Actor):
            def receive(self, message, sender):
                child = self.context.spawn(Child, name="child")
                child.tell("delegated")

        s = Scheduler()
        system = SimActorSystem(s)

        def driver():
            parent = system.spawn(Parent, name="parent")
            yield from system.tell_gen(parent, "go")
        s.spawn(driver, name="driver")
        s.run()
        assert log == [("child", "delegated")]

    def test_sim_stop_gen(self):
        from repro.actors import SimActorSystem
        from repro.core import Scheduler

        stopped = []

        class Stoppable(Actor):
            def post_stop(self):
                stopped.append(True)

            def receive(self, message, sender):
                pass

        s = Scheduler()
        system = SimActorSystem(s)

        def driver():
            ref = system.spawn(Stoppable, name="victim")
            yield from system.stop_gen(ref)
        s.spawn(driver, name="driver")
        s.run()
        assert stopped == [True]

    def test_sim_tell_outside_handler_rejected(self):
        from repro.actors import SimActorSystem
        from repro.core import Scheduler

        s = Scheduler()
        system = SimActorSystem(s)
        ref = system.spawn(Echo, name="echo")
        with pytest.raises(RuntimeError, match="tell_gen"):
            ref.tell("naked tell")
