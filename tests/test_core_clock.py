"""Logical clocks — unit tests plus hypothesis properties."""

from hypothesis import given, strategies as st

from repro.core import LamportClock, VectorClock


class TestLamportClock:
    def test_tick_monotone(self):
        clock = LamportClock()
        values = [clock.tick() for _ in range(5)]
        assert values == [1, 2, 3, 4, 5]

    def test_merge_takes_max_plus_one(self):
        clock = LamportClock(3)
        assert clock.merge(10) == 11
        assert clock.merge(2) == 12


class TestVectorClockBasics:
    def test_tick_increments_component(self):
        vc = VectorClock().tick(1).tick(1).tick(2)
        assert vc.get(1) == 2
        assert vc.get(2) == 1
        assert vc.get(99) == 0

    def test_happens_before_chain(self):
        a = VectorClock().tick(1)
        b = a.tick(1)
        assert a < b
        assert not b < a

    def test_concurrent_events(self):
        a = VectorClock().tick(1)
        b = VectorClock().tick(2)
        assert a.concurrent(b)
        assert b.concurrent(a)

    def test_merge_orders_after_both(self):
        a = VectorClock().tick(1)
        b = VectorClock().tick(2)
        m = a.merge(b).tick(3)
        assert a < m and b < m

    def test_equality_ignores_zero_components(self):
        assert VectorClock({1: 0, 2: 3}) == VectorClock({2: 3})
        assert hash(VectorClock({1: 0, 2: 3})) == hash(VectorClock({2: 3}))

    def test_immutability(self):
        a = VectorClock()
        b = a.tick(1)
        assert a.get(1) == 0
        assert b.get(1) == 1


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

pids = st.integers(min_value=1, max_value=5)
clock_ops = st.lists(pids, min_size=0, max_size=30)


def build(ops) -> VectorClock:
    vc = VectorClock()
    for pid in ops:
        vc = vc.tick(pid)
    return vc


class TestVectorClockProperties:
    @given(clock_ops)
    def test_prefix_happens_before_extension(self, ops):
        base = build(ops)
        extended = base.tick(1)
        assert base < extended
        assert base <= extended

    @given(clock_ops, clock_ops)
    def test_ordering_trichotomy(self, ops_a, ops_b):
        a, b = build(ops_a), build(ops_b)
        relations = [a < b, b < a, a == b, a.concurrent(b)]
        assert sum(relations) == 1

    @given(clock_ops, clock_ops)
    def test_merge_is_upper_bound(self, ops_a, ops_b):
        a, b = build(ops_a), build(ops_b)
        m = a.merge(b)
        assert a <= m and b <= m

    @given(clock_ops, clock_ops)
    def test_merge_commutes(self, ops_a, ops_b):
        a, b = build(ops_a), build(ops_b)
        assert a.merge(b) == b.merge(a)

    @given(clock_ops, clock_ops, clock_ops)
    def test_merge_associates(self, x, y, z):
        a, b, c = build(x), build(y), build(z)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(clock_ops, clock_ops, clock_ops)
    def test_happens_before_transitive(self, x, y, z):
        a = build(x)
        b = a.merge(build(y)).tick(1)
        c = b.merge(build(z)).tick(2)
        assert a < b and b < c
        assert a < c

    @given(clock_ops, clock_ops)
    def test_equal_clocks_hash_equal(self, ops_a, ops_b):
        a, b = build(ops_a), build(ops_b)
        if a == b:
            assert hash(a) == hash(b)
