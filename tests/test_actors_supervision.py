"""Supervision & dead-letter matrix for the threaded ActorSystem.

Each directive's observable contract, pinned down:

* RESUME — the crashing message is dropped but the mailbox survives:
  everything behind the poison message is still processed by the SAME
  instance (state intact).
* RESTART — ``pre_restart`` runs exactly once per failure and the
  instance keeps serving (this runtime restarts in place).
* STOP — the actor is torn down; anything still queued and anything
  sent afterwards lands in dead letters, never half-processed.

Plus the bookkeeping around them: the ``failures()`` snapshot
accessor, per-actor directive overrides at ``spawn`` time and via
``set_directive``, and ``drain(timeout=)`` returning False when a
livelocked actor keeps the system permanently busy.
"""

import threading

import pytest

from repro.actors import Actor, ActorSystem, SupervisionDirective


class Crashy(Actor):
    """Counts messages; raises on the payload ``"boom"``."""

    def __init__(self, log):
        super().__init__()
        self.log = log
        self.restarts = 0

    def receive(self, msg, sender):
        if msg == "boom":
            raise RuntimeError("boom")
        self.log.append(msg)

    def pre_restart(self, error, message):
        self.restarts += 1


class SelfFeeder(Actor):
    """Livelock: every message enqueues the next one."""

    def receive(self, msg, sender):
        self.self_ref.tell(msg + 1)


def test_resume_keeps_mailbox_and_state():
    log = []
    with ActorSystem(workers=2) as sys_:
        ref = sys_.spawn(Crashy, log, name="c",
                         directive=SupervisionDirective.RESUME)
        for m in [1, "boom", 2, "boom", 3]:
            ref.tell(m)
        assert sys_.drain(timeout=5)
        assert log == [1, 2, 3]          # poison dropped, rest delivered
        # RESUME never constructs a new instance
        assert ref._cell.actor.restarts == 0
        assert [n for n, _ in sys_.failures()] == ["c", "c"]


def test_restart_runs_pre_restart_once_per_failure():
    log = []
    with ActorSystem(workers=2,
                     directive=SupervisionDirective.RESTART) as sys_:
        ref = sys_.spawn(Crashy, log, name="c")
        for m in [1, "boom", 2, "boom", 3]:
            ref.tell(m)
        assert sys_.drain(timeout=5)
        assert log == [1, 2, 3]
        assert ref._cell.actor.restarts == 2


def test_stop_dead_letters_late_sends():
    log = []
    with ActorSystem(workers=2) as sys_:
        ref = sys_.spawn(Crashy, log, name="c",
                         directive=SupervisionDirective.STOP)
        ref.tell("boom")
        assert sys_.drain(timeout=5)
        assert ref.is_stopped
        ref.tell("late")                  # after the stop: dead letter
        assert sys_.drain(timeout=5)
        assert "late" not in log
        dead = [d.message for d in sys_.dead_letters]
        assert "late" in dead


def test_per_actor_directive_overrides_system_default():
    """One STOP actor among RESTART siblings: only it goes down."""
    stop_log, restart_log = [], []
    with ActorSystem(workers=2,
                     directive=SupervisionDirective.RESTART) as sys_:
        stopper = sys_.spawn(Crashy, stop_log, name="stopper",
                             directive=SupervisionDirective.STOP)
        restarter = sys_.spawn(Crashy, restart_log, name="restarter")
        stopper.tell("boom")
        restarter.tell("boom")
        assert sys_.drain(timeout=5)
        assert stopper.is_stopped
        assert not restarter.is_stopped
        restarter.tell("alive")
        assert sys_.drain(timeout=5)
        assert restart_log == ["alive"]


def test_set_directive_changes_future_failures():
    log = []
    with ActorSystem(workers=2,
                     directive=SupervisionDirective.RESUME) as sys_:
        ref = sys_.spawn(Crashy, log, name="c")
        ref.tell("boom")
        assert sys_.drain(timeout=5)
        assert not ref.is_stopped
        sys_.set_directive(ref, SupervisionDirective.STOP)
        ref.tell("boom")
        assert sys_.drain(timeout=5)
        assert ref.is_stopped


def test_failures_returns_snapshot_copy():
    with ActorSystem(workers=2,
                     directive=SupervisionDirective.RESUME) as sys_:
        ref = sys_.spawn(Crashy, [], name="c")
        ref.tell("boom")
        assert sys_.drain(timeout=5)
        snap = sys_.failures()
        assert len(snap) == 1
        name, error = snap[0]
        assert name == "c" and isinstance(error, RuntimeError)
        snap.append(("fake", ValueError()))       # copy, not the log
        assert len(sys_.failures()) == 1


def test_drain_times_out_on_livelock():
    sys_ = ActorSystem(workers=2)
    try:
        ref = sys_.spawn(SelfFeeder, name="feeder")
        ref.tell(0)
        assert sys_.drain(timeout=0.3) is False
    finally:
        sys_.stop(ref)                   # stop signal breaks the cycle
        sys_.shutdown()


def test_spawn_rejects_non_actor():
    with ActorSystem(workers=1) as sys_:
        with pytest.raises(TypeError):
            sys_.spawn(threading.Thread)
