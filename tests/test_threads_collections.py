"""Concurrent collections and the thread pool."""

import time

import pytest

from repro.threads import (BlockingQueue, BrokenBarrierError, ConcurrentMap,
                           CountDownLatch, CyclicBarrier, JThread, PoolFuture,
                           QueueClosed, ThreadPool, join_all, parallel_map,
                           spawn_all)


class TestBlockingQueue:
    def test_fifo(self):
        q = BlockingQueue(capacity=3)
        for i in range(3):
            q.put(i)
        assert [q.take() for _ in range(3)] == [0, 1, 2]

    def test_put_blocks_at_capacity(self):
        q = BlockingQueue(capacity=1)
        q.put("x")
        with pytest.raises(TimeoutError):
            q.put("y", timeout=0.05)

    def test_take_blocks_when_empty(self):
        q = BlockingQueue(capacity=1)
        with pytest.raises(TimeoutError):
            q.take(timeout=0.05)

    def test_producer_consumer_handoff(self):
        q = BlockingQueue(capacity=2)
        taken = []

        def consumer():
            for _ in range(20):
                taken.append(q.take())

        def producer():
            for i in range(20):
                q.put(i)
        join_all(spawn_all(consumer, producer))
        assert taken == list(range(20))

    def test_close_wakes_takers(self):
        q = BlockingQueue(capacity=1)

        def taker():
            with pytest.raises(QueueClosed):
                q.take()
            return "woke"
        t = JThread(target=taker).start()
        time.sleep(0.02)
        q.close()
        assert t.join() == "woke"

    def test_close_drains_remaining_items_first(self):
        q = BlockingQueue(capacity=5)
        q.put(1)
        q.put(2)
        q.close()
        assert q.take() == 1
        assert q.take() == 2
        with pytest.raises(QueueClosed):
            q.take()

    def test_offer_and_poll_nonblocking(self):
        q = BlockingQueue(capacity=1)
        assert q.offer("a")
        assert not q.offer("b")
        assert q.poll() == "a"
        assert q.poll() is None

    def test_drain(self):
        q = BlockingQueue()
        for i in range(4):
            q.put(i)
        assert q.drain() == [0, 1, 2, 3]
        assert len(q) == 0


class TestConcurrentMap:
    def test_put_if_absent(self):
        m = ConcurrentMap()
        assert m.put_if_absent("k", 1) is None
        assert m.put_if_absent("k", 2) == 1
        assert m.get("k") == 1

    def test_compute_updates_atomically(self):
        m = ConcurrentMap()
        m.put("n", 0)

        def bump():
            for _ in range(200):
                m.compute("n", lambda k, v: (v or 0) + 1)
        join_all(spawn_all(bump, bump, bump))
        assert m.get("n") == 600

    def test_compute_none_removes(self):
        m = ConcurrentMap()
        m.put("k", 1)
        m.compute("k", lambda k, v: None)
        assert "k" not in m

    def test_snapshot_is_copy(self):
        m = ConcurrentMap()
        m.put("a", 1)
        snap = m.snapshot()
        m.put("b", 2)
        assert snap == {"a": 1}

    def test_update_atomically_multi_key(self):
        m = ConcurrentMap()
        m.put("from", 10)
        m.put("to", 0)

        def transfer(data):
            data["from"] -= 1
            data["to"] += 1

        def mover():
            for _ in range(5):
                m.update_atomically(transfer)
        join_all(spawn_all(mover, mover))
        assert m.get("from") == 0
        assert m.get("to") == 10


class TestLatchAndBarrier:
    def test_latch_releases_at_zero(self):
        latch = CountDownLatch(3)
        released = []

        def waiter():
            assert latch.await_(timeout=5)
            released.append(True)
        threads = spawn_all(waiter, waiter)
        for _ in range(3):
            latch.count_down()
        join_all(threads)
        assert released == [True, True]
        assert latch.count == 0

    def test_latch_extra_countdowns_harmless(self):
        latch = CountDownLatch(1)
        latch.count_down()
        latch.count_down()
        assert latch.count == 0

    def test_latch_timeout(self):
        assert CountDownLatch(1).await_(timeout=0.05) is False

    def test_barrier_releases_together(self):
        barrier = CyclicBarrier(3)
        order = []

        def party(i):
            barrier.await_(timeout=5)
            order.append(i)
        join_all(spawn_all(*(lambda i=i: party(i) for i in range(3))))
        assert sorted(order) == [0, 1, 2]

    def test_barrier_action_runs_once_per_generation(self):
        fired = []
        barrier = CyclicBarrier(2, action=lambda: fired.append(1))

        def party():
            barrier.await_(timeout=5)
            barrier.await_(timeout=5)
        join_all(spawn_all(party, party))
        assert len(fired) == 2

    def test_barrier_timeout_breaks_it(self):
        barrier = CyclicBarrier(2)
        with pytest.raises(BrokenBarrierError):
            barrier.await_(timeout=0.05)
        assert barrier.broken


class TestThreadPool:
    def test_submit_and_result(self):
        with ThreadPool(2) as pool:
            assert pool.submit(lambda a, b: a + b, 2, 3).result() == 5

    def test_map_preserves_order(self):
        with ThreadPool(4) as pool:
            assert pool.map(lambda x: x * x, range(10)) == \
                [x * x for x in range(10)]

    def test_exception_surfaces_at_result(self):
        with ThreadPool(1) as pool:
            future = pool.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result()

    def test_submit_after_shutdown_rejected(self):
        pool = ThreadPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)

    def test_cancel_queued_task(self):
        future = PoolFuture()
        assert future.cancel()
        with pytest.raises(RuntimeError, match="cancelled"):
            future.result()

    def test_stats_track_completion(self):
        with ThreadPool(2) as pool:
            futures = [pool.submit(lambda: None) for _ in range(5)]
            for f in futures:
                f.result()
            stats = pool.stats
        assert stats["submitted"] == 5
        assert stats["completed"] == 5

    def test_parallel_map_helper(self):
        assert parallel_map(lambda x: x + 1, range(5), workers=3) == \
            [1, 2, 3, 4, 5]
