"""Remaining thread-model surfaces: explicit monitor protocol, unbounded
queues, daemon JThreads, pool edge cases."""

import time

import pytest

from repro.threads import (BlockingQueue, JThread, Monitor, ThreadPool,
                           join_all, spawn_all)


class TestMonitorExplicitProtocol:
    def test_acquire_release_without_with(self):
        m = Monitor("manual")
        m.acquire()
        assert m.held_by_me
        m.release()
        assert not m.held_by_me

    def test_wait_timeout_returns_false(self):
        m = Monitor()
        with m:
            assert m.wait(timeout=0.02) is False

    def test_notify_single(self):
        m = Monitor()
        woken = []
        state = {"tickets": 0}

        def waiter(i):
            with m:
                m.wait_until(lambda: state["tickets"] > 0)
                state["tickets"] -= 1
                woken.append(i)

        threads = spawn_all(lambda: waiter(0), lambda: waiter(1))
        time.sleep(0.02)
        for _ in range(2):
            with m:
                state["tickets"] += 1
                m.notify_all()
            time.sleep(0.01)
        join_all(threads)
        assert sorted(woken) == [0, 1]


class TestQueueUnbounded:
    def test_zero_capacity_means_unbounded(self):
        q = BlockingQueue(capacity=0)
        for i in range(10_000):
            q.put(i)
        assert len(q) == 10_000

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockingQueue(capacity=-1)

    def test_closed_property(self):
        q = BlockingQueue()
        assert not q.closed
        q.close()
        assert q.closed


class TestJThreadDaemon:
    def test_daemon_flag_passthrough(self):
        stop = None
        import threading
        stop = threading.Event()
        t = JThread(target=stop.wait, daemon=True).start()
        assert t.is_alive()
        stop.set()
        t.join()
        assert not t.is_alive()

    def test_repr_states(self):
        t = JThread(target=lambda: None, name="fancy")
        assert "unstarted" in repr(t)
        t.start()
        t.join()
        assert "dead" in repr(t)


class TestPoolEdgeCases:
    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ThreadPool(0)

    def test_map_empty(self):
        with ThreadPool(2) as pool:
            assert pool.map(str, []) == []

    def test_many_small_tasks(self):
        with ThreadPool(4) as pool:
            futures = [pool.submit(lambda i=i: i * i) for i in range(200)]
            assert sum(f.result() for f in futures) == \
                sum(i * i for i in range(200))

    def test_shutdown_drains_queue(self):
        pool = ThreadPool(1)
        futures = [pool.submit(time.sleep, 0.001) for _ in range(20)]
        pool.shutdown(wait=True)
        assert all(f.done() for f in futures)
