"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import (DeliveryPolicy, Emit, Mailbox, Pause, RandomPolicy,
                        Receive, Scheduler, Send)
from repro.verify import explore, sample_behaviours


# ---------------------------------------------------------------------------
# scheduler determinism and replay
# ---------------------------------------------------------------------------

def _make_program(structure):
    """structure: list of per-task emit counts."""
    def program(sched):
        for t, count in enumerate(structure):
            def body(t=t, count=count):
                for k in range(count):
                    yield Emit((t, k))
            sched.spawn(body, name=f"t{t}")
    return program


structures = st.lists(st.integers(min_value=1, max_value=3),
                      min_size=1, max_size=3)


class TestSchedulerProperties:
    @given(structures, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_output(self, structure, seed):
        runs = []
        for _ in range(2):
            sched = Scheduler(RandomPolicy(seed))
            _make_program(structure)(sched)
            runs.append(tuple(sched.run().output))
        assert runs[0] == runs[1]

    @given(structures, st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_replay_reproduces_any_random_run(self, structure, seed):
        from repro.core import FixedPolicy
        sched = Scheduler(RandomPolicy(seed))
        _make_program(structure)(sched)
        trace = sched.run()
        replay = Scheduler(FixedPolicy(trace.schedule()))
        _make_program(structure)(replay)
        assert tuple(replay.run().output) == tuple(trace.output)

    @given(structures)
    @settings(max_examples=15, deadline=None)
    def test_per_task_order_preserved_in_all_schedules(self, structure):
        res = explore(_make_program(structure), max_runs=5000)
        for out in res.output_sets():
            for t, count in enumerate(structure):
                ks = [k for (tt, k) in out if tt == t]
                assert ks == list(range(count))

    @given(structures)
    @settings(max_examples=15, deadline=None)
    def test_every_sampled_behaviour_is_explored(self, structure):
        full = explore(_make_program(structure), max_runs=5000)
        if not full.complete:
            return
        sampled = sample_behaviours(_make_program(structure), samples=20)
        assert sampled.output_sets() <= full.output_sets()


# ---------------------------------------------------------------------------
# mailbox policy lattice
# ---------------------------------------------------------------------------

send_plans = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1),     # sender id
              st.integers(min_value=0, max_value=9)),    # payload
    min_size=1, max_size=3)


def _mailbox_program(policy, plan):
    def program(sched):
        mb = Mailbox("box", policy=policy)
        got = []
        by_sender = {0: [], 1: []}
        for sender, payload in plan:
            by_sender[sender].append(payload)

        def sender_task(sid):
            for payload in by_sender[sid]:
                yield Send(mb, (sid, payload))

        def receiver():
            for _ in range(len(plan)):
                got.append((yield Receive(mb)))
        for sid in (0, 1):
            if by_sender[sid]:
                sched.spawn(sender_task, sid, name=f"s{sid}")
        sched.spawn(receiver, name="r")
        return lambda: tuple(got)
    return program


class TestMailboxProperties:
    @given(send_plans)
    @settings(max_examples=15, deadline=None)
    def test_policy_lattice(self, plan):
        orders = {}
        for policy in (DeliveryPolicy.FIFO, DeliveryPolicy.PER_SENDER_FIFO,
                       DeliveryPolicy.ARBITRARY):
            res = explore(_mailbox_program(policy, plan), max_runs=20_000)
            if not res.complete:
                return
            orders[policy] = res.observations()
        assert orders[DeliveryPolicy.FIFO] <= \
            orders[DeliveryPolicy.PER_SENDER_FIFO] <= \
            orders[DeliveryPolicy.ARBITRARY]

    @given(send_plans)
    @settings(max_examples=15, deadline=None)
    def test_no_policy_loses_or_duplicates(self, plan):
        res = explore(_mailbox_program(DeliveryPolicy.ARBITRARY, plan),
                      max_runs=20_000)
        expected = sorted((s, p) for s, p in plan)
        for got in res.observations():
            assert sorted(got) == expected


# ---------------------------------------------------------------------------
# pseudocode: arithmetic straight-line programs always terminate "done"
# ---------------------------------------------------------------------------

exprs = st.integers(min_value=-20, max_value=20)


class TestPseudocodeProperties:
    @given(st.lists(exprs, min_size=1, max_size=5),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_para_sum_of_exc_acc_increments(self, diffs, seed):
        """N concurrent EXC_ACC increments always total exactly sum(diffs)
        under any random schedule — the Figure 4a property generalized."""
        from repro.core import RandomPolicy
        from repro.pseudocode import compile_program
        arms = "\n".join(f"  bump({d})" for d in diffs)
        source = f"""
x = 0
DEFINE bump(d)
  EXC_ACC
    x = x + d
  END_EXC_ACC
ENDDEF
PARA
{arms}
ENDPARA
"""
        runtime = compile_program(source)
        result = runtime.run(RandomPolicy(seed))
        assert result.outcome == "done"
        assert result.globals["x"] == sum(diffs)

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_if_chain_total(self, a, b):
        from repro.pseudocode import interpret
        source = f"""
a = {a}
b = {b}
IF a > b THEN
  bigger = a
ELSE
  bigger = b
ENDIF
"""
        assert interpret(source).globals["bigger"] == max(a, b)
