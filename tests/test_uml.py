"""UML module: state-machine transformations, diagrams, class models."""

import pytest

from repro.pseudocode import compile_program, parse, possible_outputs
from repro.uml import (SequenceDiagram, StateMachine, StateMachineError,
                       Transition, bounded_buffer_state_machine,
                       bridge_state_machine, diagram_from_path,
                       diagram_from_trace, extract_class_model,
                       render_boxes, simulate, to_message_pseudocode,
                       to_monitor_pseudocode)


class TestStateMachineSpec:
    def test_reference_simulation(self):
        machine = bridge_state_machine()
        result = simulate(machine, ["redEnter", "redEnter", "redExit",
                                    "redExit", "blueEnter"])
        assert result == {"redCount": 0, "blueCount": 1}

    def test_guard_violation_strict(self):
        machine = bridge_state_machine()
        with pytest.raises(StateMachineError, match="guard"):
            simulate(machine, ["blueEnter", "redEnter"])

    def test_guard_violation_lenient_skips(self):
        machine = bridge_state_machine()
        result = simulate(machine, ["blueEnter", "redEnter"], strict=False)
        assert result == {"redCount": 0, "blueCount": 1}

    def test_duplicate_event_rejected(self):
        with pytest.raises(StateMachineError, match="duplicate"):
            StateMachine("m", {"x": 0},
                         [Transition("go"), Transition("go")])

    def test_effect_must_assign_known_variable(self):
        with pytest.raises(StateMachineError, match="unknown variable"):
            StateMachine("m", {"x": 0},
                         [Transition("go", effects=("y = 1",))])

    def test_unknown_event(self):
        with pytest.raises(StateMachineError, match="unknown event"):
            simulate(bridge_state_machine(), ["teleport"])


class TestMonitorTransformation:
    def test_generated_code_parses_and_analyzes(self):
        source = to_monitor_pseudocode(bridge_state_machine())
        runtime = compile_program(source)
        # all four events share one exclusion group (both counters)
        assert len(runtime.info.groups) == 1

    def test_generated_bridge_behaves_exhaustive_small(self):
        """Two concurrent events: small enough for an exact proof."""
        source = to_monitor_pseudocode(bridge_state_machine()) + """
PARA
  redEnter()
  redExit()
ENDPARA
PRINT redCount + blueCount
"""
        outputs = possible_outputs(source, max_runs=200_000)
        assert outputs == {"0"}

    def test_generated_bridge_behaves_under_stress(self):
        """Four concurrent events exceed the exhaustive budget; stress
        with seeded random schedules instead."""
        from repro.core import RandomPolicy
        source = to_monitor_pseudocode(bridge_state_machine()) + """
PARA
  redEnter()
  redExit()
  blueEnter()
  blueExit()
ENDPARA
PRINT redCount + blueCount
"""
        runtime = compile_program(source)
        for seed in range(25):
            result = runtime.run(RandomPolicy(seed))
            assert result.outcome == "done"
            assert result.output_tokens() == ["0"], seed

    def test_generated_buffer_matches_reference(self):
        from repro.core import RandomPolicy
        machine = bounded_buffer_state_machine(capacity=1)
        source = to_monitor_pseudocode(machine) + """
PARA
  produce()
  produce()
  consume()
  consume()
ENDPARA
PRINT count
"""
        runtime = compile_program(source)
        for seed in range(25):
            result = runtime.run(RandomPolicy(seed))
            assert result.outcome == "done"
            assert result.output_tokens() == ["0"], seed
        assert simulate(machine, ["produce", "consume", "produce",
                                  "consume"])["count"] == 0

    def test_guardless_transition_has_no_wait_loop(self):
        machine = StateMachine("m", {"n": 0},
                               [Transition("tick",
                                           effects=("n = n + 1",))])
        source = to_monitor_pseudocode(machine)
        assert "WAIT()" not in source
        assert "EXC_ACC" in source


class TestMessageTransformation:
    def test_generated_class_parses(self):
        source = to_message_pseudocode(bridge_state_machine())
        program = parse(source)
        assert "Bridge" in program.classes
        assert program.classes["Bridge"].methods["start"].has_receive()

    def test_accepted_event_acknowledged(self):
        source = to_message_pseudocode(bridge_state_machine()) + """
CLASS Probe
  DEFINE start()
    ON_RECEIVING
      MESSAGE.ok(ev)
        PRINT ev
      MESSAGE.blocked(ev)
        PRINTLN ev
  ENDDEF
ENDCLASS
b = new Bridge()
b.start()
p = new Probe()
p.start()
Send(MESSAGE.redEnter(p)).To(b)
"""
        assert possible_outputs(source, max_runs=100_000) == {"redEnter"}

    def test_guarded_event_rejected_when_blocked(self):
        source = to_message_pseudocode(bridge_state_machine()) + """
CLASS Probe
  DEFINE start()
    ON_RECEIVING
      MESSAGE.ok(ev)
        PRINT ev
      MESSAGE.blocked(ev)
        PRINT "no"
  ENDDEF
ENDCLASS
b = new Bridge()
b.start()
p = new Probe()
p.start()
Send(MESSAGE.blueExit(p)).To(b)
"""
        # blueExit with blueCount == 0: guard fails, reply is 'blocked'
        assert possible_outputs(source, max_runs=100_000) == {"no"}


class TestSequenceDiagrams:
    def test_from_lts_witness(self):
        from repro.problems.single_lane_bridge import mp_bridge_lts
        from repro.verify import ScenarioQuestion, answer_question_lts
        question = ScenarioQuestion(
            qid="x", text="",
            scenario=(("redCarA", "recv", ("succeedExit", 1)),))
        answer = answer_question_lts(mp_bridge_lts(), question)
        diagram = diagram_from_path(answer.witness,
                                    participants=["redCarA", "bridge"])
        text = diagram.render()
        assert "redCarA" in text
        assert "redEnter" in text
        assert "--" in text          # at least one arrow

    def test_from_kernel_trace(self):
        from repro.core import Mailbox, Receive, Scheduler, Send

        sched = Scheduler()
        box = Mailbox("inbox")

        def sender():
            yield Send(box, "ping")

        def receiver():
            yield Receive(box)
        sched.spawn(sender, name="alice")
        sched.spawn(receiver, name="bob")
        trace = sched.run()
        text = diagram_from_trace(trace,
                                  participants=["alice", "inbox"]).render()
        assert "alice" in text and "inbox" in text

    def test_manual_diagram(self):
        diagram = SequenceDiagram(["a", "b"])
        diagram.message("a", "b", "hello")
        diagram.note("b", "thinking")
        text = diagram.render()
        assert "hello" in text
        assert "[thinking]" in text

    def test_participants_added_on_demand(self):
        diagram = SequenceDiagram(["a"])
        diagram.message("a", "late-joiner", "hi")
        assert "late-joiner" in diagram.participants

    def test_empty_participants_rejected(self):
        with pytest.raises(ValueError):
            SequenceDiagram([])


class TestClassModel:
    def test_extract_from_mp_bridge(self):
        from repro.problems.single_lane_bridge import MP_PSEUDOCODE
        model = extract_class_model(parse(MP_PSEUDOCODE))
        names = {box.name for box in model.boxes}
        assert names == {"Bridge", "Car"}
        bridge = next(b for b in model.boxes if b.name == "Bridge")
        assert "start()" in bridge.operations
        assert set(bridge.accepts) == {"redEnter", "redExit", "blueEnter",
                                       "blueExit"}
        assert set(model.messages_sent) == {"succeedEnter", "succeedExit"}

    def test_shared_state_box(self):
        model = extract_class_model(parse("x = 1\ny = 2"))
        assert model.shared_state == ["x", "y"]

    def test_render(self):
        from repro.problems.single_lane_bridge import MP_PSEUDOCODE
        text = render_boxes(extract_class_model(parse(MP_PSEUDOCODE)))
        assert "Bridge" in text
        assert "<<accepts>> redEnter" in text
