"""Coroutine pipelines and pseudocode race annotations."""

import pytest

from repro.coroutines import (batching, filtering, mapping, pipeline, sink,
                              source, stage, tee)


class TestPipeline:
    def test_map_filter_sink(self):
        got = []
        p = pipeline(mapping(lambda x: x * 2),
                     filtering(lambda x: x > 2),
                     sink(got.append))
        assert source([1, 2, 3], p) == 3
        assert got == [4, 6]

    def test_single_stage_pipeline(self):
        got = []
        p = pipeline(sink(got.append))
        source("ab", p)
        assert got == ["a", "b"]

    def test_batching(self):
        got = []
        p = pipeline(batching(2), sink(got.append))
        source(range(5), p)
        assert got == [[0, 1], [2, 3]]      # partial batch retained inside

    def test_batching_size_validation(self):
        with pytest.raises(ValueError):
            batching(0)

    def test_tee_observes_without_consuming(self):
        seen, got = [], []
        p = pipeline(tee(seen.append), sink(got.append))
        source([1, 2], p)
        assert seen == got == [1, 2]

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            pipeline()

    def test_stage_decorator_primes(self):
        @stage
        def collector(out):
            while True:
                out.append((yield))
        out = []
        c = collector(out)
        c.send("no TypeError because primed")
        assert out == ["no TypeError because primed"]

    def test_long_chain(self):
        got = []
        p = pipeline(mapping(str),
                     mapping(lambda s: s + "!"),
                     filtering(lambda s: not s.startswith("0")),
                     sink(got.append))
        source(range(3), p)
        assert got == ["1!", "2!"]


class TestPseudocodeRaceAnnotations:
    def test_racy_pseudocode_flagged(self):
        from repro.pseudocode import compile_program
        from repro.verify import explore, find_races
        runtime = compile_program("""
total = 0
DEFINE work(amount)
  mine = total
  total = mine + amount
ENDDEF
PARA
  work(1)
  work(2)
ENDPARA
""")
        res = explore(runtime.make_program(), max_runs=50_000)
        race = None
        for trace in res.witnesses.values():
            races = find_races(trace, max_races=1)
            if races:
                race = races[0]
                break
        assert race is not None
        assert race.var == "total"

    def test_exc_acc_pseudocode_clean(self):
        from repro.pseudocode import compile_program
        from repro.verify import explore, find_races
        runtime = compile_program("""
total = 0
DEFINE work(amount)
  EXC_ACC
    total = total + amount
  END_EXC_ACC
ENDDEF
PARA
  work(1)
  work(2)
ENDPARA
""")
        res = explore(runtime.make_program(), max_runs=50_000)
        for trace in res.witnesses.values():
            assert find_races(trace) == []
