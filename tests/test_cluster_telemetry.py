"""Telemetry plane on a live two-node cluster.

Integration coverage for the ISSUE-7 acceptance path: frames ship over
the TELEMETRY control kind at tick cadence and build live series on
*every* node's aggregator; the flight recorder runs always-on (no
``trace=``/``monitors=`` needed); a killed actor burns the error-rate
SLO onto the MonitorBus and dumps a postmortem bundle whose merged
Chrome trace pairs send→receive flows across the process boundary.

Determinism: nodes run ``timer=False`` with manual ``tick(now=...)``
and every clock — node clock, frame stamps, SLO windows — reads one
shared fake wall clock, so window math is exact.
"""

import json

from repro.actors import Actor
from repro.cluster import ClusterConfig, ClusterNode, LoopbackHub
from repro.obs import MonitorBus, Profiler
from repro.obs.telemetry import SLO, TelemetryAgent


class Echo(Actor):
    def receive(self, message, sender):
        if sender is not None:
            sender.tell(message, sender=self.self_ref)


class Bomb(Actor):
    def receive(self, message, sender):
        raise RuntimeError("boom")


ERROR_RATE = SLO("error-rate", "ratio:actor.failures/mailbox.processed",
                 threshold=0.01, short_window=5.0, long_window=30.0,
                 severity="error")


class TwoNodeCluster:
    """Deterministic loopback pair with agents on both nodes."""

    def __init__(self, tmp_path=None, slos=None, bus=None, cooldown=0.0):
        self.clock = [0.0]
        self.hub = LoopbackHub()
        config = ClusterConfig(telemetry_interval=0.5, tick_interval=1e9)
        wall = lambda: self.clock[0]                       # noqa: E731
        self.a = ClusterNode("a", self.hub.join("a"), config=config,
                             timer=False, profiler=Profiler(), clock=wall)
        self.b = ClusterNode("b", self.hub.join("b"), config=config,
                             timer=False, profiler=Profiler(), clock=wall)
        self.ta = TelemetryAgent(time_source=wall).attach(self.a)
        self.tb = TelemetryAgent(
            slos=slos, bus=bus, time_source=wall,
            postmortem_cooldown=cooldown,
            postmortem_dir=str(tmp_path) if tmp_path else None,
        ).attach(self.b)
        self.a.connect("b")
        self.b.connect("a")
        self.b.spawn(Echo, name="echo")
        self.echo = self.a.ref("b/echo")

    def step(self, t, sends=2):
        """One fake second: traffic, settle, tick both nodes."""
        self.clock[0] = float(t)
        for k in range(sends):
            self.echo.tell(k)
        self.a.drain()
        self.b.drain()
        self.a.tick(now=self.clock[0])
        self.b.tick(now=self.clock[0])

    def close(self):
        self.a.close()
        self.b.close()


def test_frames_build_live_series_on_every_node(tmp_path):
    c = TwoNodeCluster()
    try:
        for t in range(12):
            c.step(t)
        now = c.clock[0]
        # both aggregators see the whole cluster (frames broadcast)
        assert c.ta.aggregator.nodes() == ["a", "b"]
        assert c.tb.aggregator.nodes() == ["a", "b"]
        # cross-checked live rates: b processes what a sends
        assert c.ta.aggregator.rate("b", "mailbox.processed",
                                    window=10.0, now=now) > 0
        assert c.tb.aggregator.rate("a", "cluster.sent",
                                    window=10.0, now=now) > 0
        assert c.ta.aggregator.counter("b", "mailbox.processed") >= 22
        # frames counted, none lost on loopback
        snap = c.ta.snapshot()
        assert snap["nodes"]["b"]["lost"] == 0
        assert snap["nodes"]["b"]["frames"] >= 10
        json.dumps(snap)                      # wire-safe
    finally:
        c.close()


def test_collect_is_delta_encoded():
    c = TwoNodeCluster()
    try:
        for t in range(3):
            c.step(t)
        # traffic since the last tick's frame: the counter moved again
        for k in range(2):
            c.echo.tell(k)
        c.b.drain()
        frame = c.tb.collect()
        assert "mailbox.processed" in frame["counters"]
        # idle second collect: unchanged counters drop out of the frame,
        # instantaneous gauges are re-sampled every frame
        idle = c.tb.collect()
        assert "mailbox.processed" not in idle["counters"]
        assert idle["seq"] == frame["seq"] + 1
        for f in (frame, idle):
            assert "mailbox.depth" in f["gauges"]
            assert "cluster.staged" in f["gauges"]
    finally:
        c.close()


def test_flight_recorder_is_always_on():
    """Recording needs no ``trace=True`` / ``monitors=`` — attaching
    the agent alone turns the event path on."""
    c = TwoNodeCluster()
    try:
        for t in range(4):
            c.step(t)
        assert c.a.trace_events is None and c.a.monitors is None
        assert len(c.ta.recorder) > 0
        assert len(c.tb.recorder) > 0
        kinds = {e["kind"] for e in c.ta.recorder.dump()}
        assert "cluster-send" in kinds
        sends = [e for e in c.ta.recorder.dump()
                 if e["kind"] == "cluster-send" and e["msg_seq"]]
        recvs = [e for e in c.tb.recorder.dump()
                 if e["kind"] == "cluster-recv" and e["recv_seq"]]
        # the same wire seqs on both sides: postmortem pairing material
        assert {e["msg_seq"] for e in sends} \
            & {e["recv_seq"] for e in recvs}
    finally:
        c.close()


def test_status_serves_telemetry_and_flight(tmp_path):
    c = TwoNodeCluster(tmp_path)
    try:
        for t in range(6):
            c.step(t)
        reply = c.a.status_of("b", telemetry=True, flight=True)
        snap = reply["telemetry"]
        assert set(snap["nodes"]) == {"a", "b"}
        assert "alerts" in snap
        flight = reply["flight"]
        assert flight and all("kind" in e and "step" in e for e in flight)
        # plain STATUS stays lean
        bare = c.a.status_of("b")
        assert "telemetry" not in bare and "flight" not in bare
    finally:
        c.close()


def test_killed_actor_burns_slo_and_dumps_postmortem(tmp_path):
    bus = MonitorBus(detectors=[])
    c = TwoNodeCluster(tmp_path, slos=[ERROR_RATE], bus=bus)
    try:
        bomb = c.b.spawn(Bomb, name="bomb")
        for t in range(50):
            c.step(t)
        bomb.tell("die")                      # one failure against ~2/s
        c.b.drain()
        for t in range(50, 56):
            c.step(t)

        # the burn is on the bus as a first-class hazard
        burns = [h for h in bus.hazards if h.kind == "slo-burn:error-rate"]
        assert burns, [h.kind for h in bus.hazards]
        assert burns[0].severity == "error"
        assert burns[0].tasks == ("b",)
        assert bus.flagged

        # both triggers dumped bundles: the failure itself, then the burn
        kinds = [p["kind"] for p in c.tb.postmortems]
        assert "actor-failure" in kinds
        assert "slo-burn:error-rate" in kinds

        pm = next(p for p in c.tb.postmortems
                  if p["kind"] == "slo-burn:error-rate")
        assert pm["detail"]["state"] == "firing"
        assert [a for a in pm["alerts"]
                if a["slo"] == "error-rate" and a["state"] == "firing"]
        # flight windows pulled from BOTH nodes over live STATUS...
        assert set(pm["events"]) == {"a", "b"}
        # ...and the merged Chrome trace pairs flows across the boundary
        phases = [e["ph"] for e in pm["trace"]["traceEvents"]]
        assert "s" in phases and "f" in phases
        assert pm["narrative"].startswith(
            "POSTMORTEM: slo-burn:error-rate")
        assert "flow" in pm["narrative"] or "pair" in pm["narrative"]

        # bundles hit disk for `repro postmortem`
        files = sorted(p.name for p in tmp_path.glob("pm-*.json"))
        assert len(files) == len(c.tb.postmortems)
        on_disk = json.loads(
            (tmp_path / files[-1]).read_text())
        assert on_disk["kind"] == kinds[-1]
    finally:
        c.close()


def test_postmortem_cooldown_coalesces_incidents(tmp_path):
    c = TwoNodeCluster(tmp_path, cooldown=5.0)
    try:
        for t in range(3):
            c.step(t)
        first = c.tb.incident("actor-failure", {"actor": "x"})
        assert first is not None
        # same fake second: rate-limited, no second bundle
        assert c.tb.incident("actor-failure", {"actor": "y"}) is None
        assert len(c.tb.postmortems) == 1
        c.clock[0] += 10.0
        assert c.tb.incident("peer-down", {"peer": "a"}) is not None
        assert len(c.tb.postmortems) == 2
    finally:
        c.close()


def test_incident_force_bypasses_cooldown(tmp_path):
    """``force=True`` punches through the rate limit — the graceful
    node-stop bundle must never be swallowed just because an alert
    fired moments before shutdown."""
    c = TwoNodeCluster(tmp_path, cooldown=5.0)
    try:
        for t in range(3):
            c.step(t)
        assert c.tb.incident("actor-failure", {"actor": "x"}) is not None
        # same fake second: rate-limited...
        assert c.tb.incident("actor-failure", {"actor": "y"}) is None
        # ...unless forced
        forced = c.tb.incident("node-stop", {"node": "b"}, force=True)
        assert forced is not None
        assert forced["kind"] == "node-stop"
        assert len(c.tb.postmortems) == 2
    finally:
        c.close()


def test_graceful_close_dumps_node_stop_bundle(tmp_path):
    """``ClusterNode.close()`` (the serve verb's SIGTERM/Ctrl-C path)
    dumps one final postmortem bundle while the transport is still up,
    so the flight recorder's last window survives a clean shutdown."""
    c = TwoNodeCluster(tmp_path, cooldown=60.0)
    try:
        for t in range(4):
            c.step(t)
    finally:
        c.close()
    kinds = [p["kind"] for p in c.tb.postmortems]
    assert kinds[-1] == "node-stop"
    pm = c.tb.postmortems[-1]
    assert pm["detail"] == {"node": "b"}
    assert pm["node"] == "b"
    # the bundle hit disk like any crash-triggered postmortem
    files = sorted(p.name for p in tmp_path.glob("pm-*.json"))
    assert any("node-stop" in f for f in files)
    # force: the long cooldown above could not have suppressed it
    assert len(c.tb.postmortems) == 1


def test_telemetry_frames_are_fire_and_forget():
    """TELEMETRY is not a reliable kind: frames never enter retry
    outboxes, so a slow peer cannot make the telemetry plane amplify
    load."""
    from repro.cluster.message import RELIABLE_KINDS, TELEMETRY
    assert TELEMETRY not in RELIABLE_KINDS
    c = TwoNodeCluster()
    try:
        for t in range(6):
            c.step(t)
        assert not c.a.status()["unacked"]    # nothing waiting on acks
        assert c.a.profiler.snapshot()["counters"][
            "cluster.telemetry_out"] >= 5
    finally:
        c.close()
