"""SimWorld mechanics: stepping, clocks, ledger, hubs, determinism.

Everything here is single-threaded and virtual-time — tier 1.
"""

import pytest

from repro.actors import Actor
from repro.cluster.message import TELL
from repro.obs.monitors import MonitorBus
from repro.sim import (InlineActorSystem, SimClock, SimWorld, run_world,
                       world_program)
from repro.sim.clock import SimClock as SimClockDirect
from repro.sim.scenarios import SCENARIOS, Sink, get
from repro.sim.world import SimHub, sim_config


class Recorder(Actor):
    def __init__(self):
        super().__init__()
        self.got = []

    def receive(self, message, sender):
        self.got.append(message)


def two_node_world(bus=None, horizon=10.0, **cfg):
    w = SimWorld(("a", "b"), config=sim_config(**cfg), bus=bus,
                 horizon=horizon)
    w.connect_all()
    return w


def drive(world, picker=lambda opts: opts[0], limit=5000):
    while world.decisions < limit:
        opts = world.options()
        if not opts:
            break
        world.apply(picker(opts))
    world.finish()
    return world


# ---------------------------------------------------------------------------
# clock + inline system
# ---------------------------------------------------------------------------

class TestSimClock:
    def test_never_goes_backward(self):
        clk = SimClock(5.0)
        clk.advance_to(3.0)
        assert clk() == 5.0
        clk.advance_to(7.5)
        assert clk.now() == 7.5

    def test_is_the_package_export(self):
        assert SimClock is SimClockDirect


class TestInlineSystem:
    def test_tell_only_enqueues_until_pumped(self):
        sys_ = InlineActorSystem()
        ref = sys_.spawn(Recorder, name="r")
        ref.tell("x")
        assert sys_._cells["r"].actor.got == []
        assert sys_.pending() == ["r"]
        assert sys_.process_one("r")
        assert sys_._cells["r"].actor.got == ["x"]
        assert not sys_.process_one("r")

    def test_stop_dead_letters_late_mail(self):
        sys_ = InlineActorSystem()
        ref = sys_.spawn(Recorder, name="r")
        ref.tell("early")
        sys_.stop(ref)
        ref.tell("late")
        while sys_.pending():
            sys_.process_one(sys_.pending()[0])
        assert sys_._cells["r"].actor.got == ["early"]
        assert [dl.message for dl in sys_.dead_letters] == ["late"]

    def test_actor_names_are_replay_stable(self):
        names = []
        for _ in range(2):
            sys_ = InlineActorSystem()
            names.append([sys_.spawn(Recorder).name for _ in range(3)])
        assert names[0] == names[1]


# ---------------------------------------------------------------------------
# the hub
# ---------------------------------------------------------------------------

class TestSimHub:
    def test_frames_queue_until_delivered(self):
        w = two_node_world()
        w.spawn("b", Recorder, name="r")
        w.track("m1", "b/r")
        w.nodes["a"].ref("b/r").tell("m1")
        assert w.hub.in_flight() == [("a", "b", 1)]
        recorder = w.systems["b"]._cells["r"].actor
        assert recorder.got == []
        w.hub.deliver_next("a", "b")
        w.systems["b"].process_one("r")
        assert recorder.got == ["m1"]

    def test_drop_where_is_selective_and_counted(self):
        w = two_node_world()
        w.spawn("b", Recorder, name="r")
        w.hub.drop_where("a", "b",
                         lambda env: env.kind == TELL
                         and env.payload == "dropme")
        w.nodes["a"].ref("b/r").tell("dropme")
        w.nodes["a"].ref("b/r").tell("keepme")
        assert w.hub.in_flight() == [("a", "b", 1)]
        assert w.hub.dropped[("a", "b")] == 1

    def test_purge_clears_both_directions(self):
        w = two_node_world()
        w.spawn("b", Recorder, name="r")
        w.nodes["a"].ref("b/r").tell("m")
        w.hub.deliver_next("a", "b")        # ACK now queued b->a
        assert any(s == "b" for s, _, _ in w.hub.in_flight())
        lost = w.hub.purge("b")
        assert lost >= 1
        assert w.hub.in_flight() == []

    def test_seeded_chaos_is_replayable(self):
        def outcomes(seed):
            hub = SimHub(seed=seed)
            hub.join("a"), hub.join("b")
            hub.chaos(src="a", dst="b", drop=0.5)
            for i in range(30):
                hub._route("a", "b", b"frame-%d" % i)
            return dict(hub.dropped), [len(q) for q in
                                       hub.queues.values()]
        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)


# ---------------------------------------------------------------------------
# world stepping
# ---------------------------------------------------------------------------

class TestWorldStepping:
    def test_happy_path_delivers_and_quiesces(self):
        w = two_node_world()
        w.spawn("b", Sink, name="sink")
        w.send("a", "b/sink", "m1", "m2", label="client")
        drive(w)
        assert w.quiescent()
        assert [(e.delivered, e.dead) for e in w.ledger.values()] == \
            [(1, 0), (1, 0)]
        assert w.hazards == []

    def test_advance_jumps_to_protocol_deadlines(self):
        w = two_node_world()
        t0 = w.clock.t
        w.apply("advance")
        # nothing in flight: the first deadline is a heartbeat interval
        assert w.clock.t == t0 + w.nodes["a"].config.heartbeat_interval

    def test_scripted_action_ordering_and_guards(self):
        w = two_node_world()
        w.spawn("b", Sink, name="sink")
        fired = []
        w.act("first", lambda w: fired.append("first"))
        w.act("second", lambda w: fired.append("second"),
              after=("first",))
        w.act("never", lambda w: fired.append("never"),
              when=lambda w: False)
        opts = w.options()
        assert "do first" in opts
        assert "do second" not in opts       # dependency not done
        assert "do never" not in opts        # guard false
        w.apply("do first")
        assert "do second" in w.options()

    def test_crash_cuts_and_purges_recover_restores(self):
        w = two_node_world()
        w.spawn("b", Sink, name="sink")
        w.nodes["a"].ref("b/sink").tell("m")
        w.do_crash("b")
        assert w.hub.in_flight() == []
        assert not any(o.startswith("actor b/") or o == "deliver a>b"
                       for o in w.options())
        w.do_recover("b")
        w.nodes["a"].ref("b/sink").tell("m2")
        assert ("a", "b", 1) in w.hub.in_flight()

    def test_virtual_timestamps_on_node_events(self):
        """Satellite: events recorded during simulation carry the
        simulated clock, not wall time."""
        w = two_node_world()
        w.spawn("b", Sink, name="sink")
        w.send("a", "b/sink", "m1", label="client")
        drive(w)
        events = w.nodes["a"].trace_events + w.nodes["b"].trace_events
        assert events, "trace=True worlds must record events"
        assert all(0.0 <= ev.ts <= w.horizon for ev in events)

    def test_unknown_decision_raises(self):
        w = two_node_world()
        with pytest.raises(ValueError):
            w.apply("warp 9")


# ---------------------------------------------------------------------------
# monitors + ledger audits
# ---------------------------------------------------------------------------

class TestAudits:
    def test_duplicate_delivery_flagged(self):
        bus = MonitorBus(detectors=[])
        w = two_node_world(bus=bus)
        w.spawn("b", Recorder, name="r")
        w.track("m", "b/r")
        w.nodes["a"].ref("b/r").tell("m")
        # duplicate the frame in flight, then disable dedup at the
        # receiver to model the delivery-side bug
        w.hub.queues[("a", "b")].append(w.hub.queues[("a", "b")][0])
        w.nodes["b"]._dedup.clear()
        w.hub.deliver_next("a", "b")
        w.nodes["b"]._dedup.clear()
        w.hub.deliver_next("a", "b")
        while w.systems["b"].pending():
            w.systems["b"].process_one("r")
        w.finish()
        kinds = {hz.kind for hz in w.hazards}
        assert "sim-duplicate-delivery" in kinds
        assert {hz.kind for hz in bus.hazards} >= kinds

    def test_hazards_dedup_by_kind_and_subject(self):
        w = two_node_world()
        w._hazard("sim-test", "one", subject="s")
        w._hazard("sim-test", "two", subject="s")
        w._hazard("sim-test", "three", subject="other")
        assert len(w.hazards) == 2

    def test_clean_world_has_no_hazards_on_any_first_option_walk(self):
        w = two_node_world()
        w.spawn("b", Sink, name="sink")
        w.send("a", "b/sink", "x", label="client")
        drive(w, picker=lambda opts: opts[-1] if len(opts) > 1
              else opts[0])
        assert w.hazards == []


# ---------------------------------------------------------------------------
# determinism (the tentpole acceptance)
# ---------------------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_run(self, name):
        sc = get(name)
        runs = [run_world(sc.factory(11), seed=11, budget=sc.budget)
                for _ in range(2)]
        assert runs[0].log == runs[1].log
        assert runs[0].digest() == runs[1].digest()
        assert sorted(h.key for h in runs[0].hazards) == \
            sorted(h.key for h in runs[1].hazards)
        assert runs[0].observation == runs[1].observation

    def test_different_seeds_diverge_somewhere(self):
        sc = get("chaos")
        digests = {run_world(sc.factory(s), seed=s,
                             budget=sc.budget).digest()
                   for s in range(6)}
        assert len(digests) > 1

    def test_schedule_replay_reproduces_the_run(self):
        sc = get("crash_rejoin")
        first = run_world(sc.factory(4), seed=4, budget=sc.budget)
        again = run_world(sc.factory(4), seed=4, budget=sc.budget,
                          schedule=first.schedule)
        assert again.log == first.log
        assert again.digest() == first.digest()

    def test_scenarios_are_clean_on_fixed_code(self):
        for name, sc in SCENARIOS.items():
            for seed in (0, 1, 2):
                run = run_world(sc.factory(seed), seed=seed,
                                budget=sc.budget)
                assert run.hazards == [], (name, seed)

    def test_world_program_budget_caps_decisions(self):
        from repro.core.policy import RandomPolicy
        from repro.core.scheduler import Scheduler
        worlds = []
        program = world_program(get("chaos").factory(0), budget=7,
                                on_world=worlds.append)
        sched = Scheduler(RandomPolicy(0), raise_on_deadlock=False,
                          raise_on_failure=False)
        program(sched)
        sched.run()
        assert worlds[0].decisions <= 7
