"""Program-level property checks and trace analyses."""

from repro.core import (Acquire, Emit, Pause, Release, RoundRobinPolicy,
                        Scheduler, SimLock)
from repro.verify import (check_always, check_deadlock_free,
                          check_mutual_exclusion, check_sometimes,
                          fairness_report, mutex_intervals, run_schedule,
                          starvation_gap)


def _deadlocky(sched):
    l1, l2 = SimLock("l1"), SimLock("l2")

    def ab():
        yield Acquire(l1)
        yield Pause()
        yield Acquire(l2)
        yield Release(l2)
        yield Release(l1)

    def ba():
        yield Acquire(l2)
        yield Pause()
        yield Acquire(l1)
        yield Release(l1)
        yield Release(l2)
    sched.spawn(ab, name="ab")
    sched.spawn(ba, name="ba")


def _safe(sched):
    lock = SimLock("L")

    def worker(tag):
        yield Acquire(lock)
        yield Emit(tag)
        yield Release(lock)
    sched.spawn(worker, "a")
    sched.spawn(worker, "b")


class TestDeadlockFree:
    def test_detects_deadlock_with_replayable_counterexample(self):
        report = check_deadlock_free(_deadlocky)
        assert not report
        assert report.counterexample is not None
        trace, _ = run_schedule(_deadlocky, report.counterexample)
        assert trace.outcome == "deadlock"

    def test_passes_safe_program(self):
        report = check_deadlock_free(_safe)
        assert report.holds
        assert report.exhaustive


class TestAlwaysSometimes:
    def test_always_holds(self):
        report = check_always(_safe, lambda out, obs: len(out) == 2)
        assert report.holds

    def test_always_violation_has_counterexample(self):
        report = check_always(
            _safe, lambda out, obs: out[0] == "a", name="a-first")
        assert not report.holds
        assert report.counterexample is not None
        trace, _ = run_schedule(_safe, report.counterexample)
        assert trace.output[0] == "b"

    def test_sometimes_finds_witness(self):
        report = check_sometimes(_safe, lambda out, obs: out[0] == "b")
        assert report.holds
        assert report.witness is not None

    def test_sometimes_exhaustive_no(self):
        report = check_sometimes(_safe, lambda out, obs: len(out) == 5)
        assert not report.holds
        assert report.exhaustive


class TestTraceAnalyses:
    def _trace(self, output):
        from repro.core.trace import Trace
        t = Trace()
        t.output = list(output)
        return t

    def test_mutex_intervals_extraction(self):
        trace = self._trace([("enter", "a"), ("exit", "a"),
                             ("enter", "b"), ("exit", "b")])
        assert mutex_intervals(trace, "enter", "exit") == [
            ("a", 0, 1), ("b", 2, 3)]

    def test_overlap_detected(self):
        trace = self._trace([("enter", "a"), ("enter", "b"),
                             ("exit", "a"), ("exit", "b")])
        problem = check_mutual_exclusion(trace)
        assert problem is not None
        assert "overlaps" in problem

    def test_unclosed_section_stays_open(self):
        trace = self._trace([("enter", "a")])
        intervals = mutex_intervals(trace, "enter", "exit")
        assert intervals == [("a", 0, 1)]

    def test_starvation_gap_and_fairness(self):
        def worker(tag, steps):
            for _ in range(steps):
                yield Pause()
        s = Scheduler(RoundRobinPolicy())
        s.spawn(worker, "x", 5, name="x")
        s.spawn(worker, "y", 5, name="y")
        trace = s.run()
        assert starvation_gap(trace, "x") <= 2
        report = fairness_report(trace)
        assert report["x"]["steps"] == report["y"]["steps"]

    def test_starvation_gap_single_step_task(self):
        def once():
            yield Pause()
        s = Scheduler()
        s.spawn(once, name="solo")
        trace = s.run()
        assert starvation_gap(trace, "solo") >= 0
