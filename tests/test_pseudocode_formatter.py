"""Formatter round-trips and output enumeration utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.pseudocode import (compile_program, format_program,
                              normalize_output, output_witness, parse,
                              possible_outputs)
from repro.verify import run_schedule

CORPUS = [
    'total = 0\nname = "John Smith"\ncondition = True\nheight = 3.3',
    """
testScore = 88
IF testScore >= 90 THEN
  PRINTLN "A"
ELSE IF testScore >= 80 THEN
  PRINTLN "B"
ELSE
  PRINTLN "F"
ENDIF
""",
    """
x = 10
DEFINE changeX(diff)
  EXC_ACC
    WHILE x + diff < 0
      WAIT()
    ENDWHILE
    x = x + diff
    NOTIFY()
  END_EXC_ACC
ENDDEF
PARA
  changeX(-11)
  changeX(1)
ENDPARA
PRINTLN x
""",
    """
CLASS Receiver
  DEFINE receive()
    ON_RECEIVING
      MESSAGE.h(var)
        PRINT var
      MESSAGE.w(var)
        PRINTLN var
  ENDDEF
ENDCLASS
m1 = MESSAGE.h("hello ")
m2 = MESSAGE.w("world")
r1 = new Receiver()
r1.receive()
Send(m1).To(r1)
Send(m2).To(r1)
""",
    """
DEFINE fact(n)
  IF n <= 1 THEN
    RETURN 1
  ENDIF
  RETURN n * fact(n - 1)
ENDDEF
PRINT fact(5)
""",
]


def _shape(node, depth=0):
    """Structural fingerprint of an AST (type tree + leaf values)."""
    import dataclasses
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        fields = []
        for f in dataclasses.fields(node):
            if f.name == "line":
                continue
            fields.append((f.name, _shape(getattr(node, f.name), depth + 1)))
        return (type(node).__name__, tuple(fields))
    if isinstance(node, dict):
        return tuple(sorted((k, _shape(v)) for k, v in node.items()))
    if isinstance(node, (list, tuple)):
        return tuple(_shape(v) for v in node)
    if isinstance(node, frozenset):
        return frozenset(node)
    return node


class TestRoundTrip:
    @pytest.mark.parametrize("source", CORPUS)
    def test_parse_format_parse_is_identity(self, source):
        first = parse(source)
        formatted = format_program(first)
        second = parse(formatted)
        assert _shape(first) == _shape(second)

    @pytest.mark.parametrize("source", CORPUS[:3])
    def test_reformatted_program_behaves_identically(self, source):
        original = possible_outputs(source)
        reformatted = possible_outputs(format_program(parse(source)))
        assert original == reformatted


class TestNormalization:
    def test_whitespace_collapsed(self):
        assert normalize_output("hello \n world ") == "hello world"

    def test_empty(self):
        assert normalize_output("   ") == ""


class TestOutputWitness:
    SRC = 'PARA\nPRINT "a "\nPRINT "b "\nENDPARA'

    def test_witness_replays_to_requested_output(self):
        schedule = output_witness(self.SRC, "b a")
        assert schedule is not None
        runtime = compile_program(self.SRC)
        trace, _ = run_schedule(runtime.make_program(), schedule)
        assert normalize_output(trace.output_str()) == "b a"

    def test_impossible_output_has_no_witness(self):
        assert output_witness(self.SRC, "a a") is None


# ---------------------------------------------------------------------------
# property-based: generated straight-line programs round-trip and the
# interpreter agrees with a reference evaluation
# ---------------------------------------------------------------------------

names = st.sampled_from(["a", "b", "c", "total"])
numbers = st.integers(min_value=0, max_value=50)


@st.composite
def straight_line_program(draw):
    lines = []
    env = {}
    n = draw(st.integers(min_value=1, max_value=6))
    for _ in range(n):
        name = draw(names)
        op = draw(st.sampled_from(["const", "add", "mul"]))
        if op == "const" or not env:
            value = draw(numbers)
            lines.append(f"{name} = {value}")
            env[name] = value
        else:
            other = draw(st.sampled_from(sorted(env)))
            value = draw(numbers)
            symbol = "+" if op == "add" else "*"
            lines.append(f"{name} = {other} {symbol} {value}")
            env[name] = env[other] + value if op == "add" \
                else env[other] * value
    return "\n".join(lines), env


class TestGeneratedPrograms:
    @given(straight_line_program())
    def test_interpreter_matches_reference(self, case):
        source, expected = case
        from repro.pseudocode import interpret
        assert interpret(source).globals == expected

    @given(straight_line_program())
    def test_round_trip_preserves_semantics(self, case):
        source, expected = case
        from repro.pseudocode import interpret
        rebuilt = format_program(parse(source))
        assert interpret(rebuilt).globals == expected
