"""Scheduling policies: fairness, determinism, replay, recording."""

import pytest

from repro.core import (Emit, FixedPolicy, Pause, RandomPolicy,
                        RecordingPolicy, ReplayError, RoundRobinPolicy,
                        Scheduler)
from repro.core.policy import Transition
from repro.core.task import Task


def _dummy_transitions(n):
    def gen():
        yield Pause()
    return [Transition(Task(gen(), name=f"t{i}")) for i in range(n)]


class TestRoundRobin:
    def test_rotates_over_tasks(self):
        policy = RoundRobinPolicy()
        transitions = _dummy_transitions(3)
        picks = [policy.choose(transitions) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_reset_restores_initial_rotation(self):
        policy = RoundRobinPolicy()
        transitions = _dummy_transitions(2)
        first = [policy.choose(transitions) for _ in range(3)]
        policy.reset()
        second = [policy.choose(transitions) for _ in range(3)]
        assert first == second

    def test_no_starvation_in_long_run(self):
        from repro.verify import fairness_report

        def worker(tag):
            for _ in range(20):
                yield Emit(tag)
        s = Scheduler(RoundRobinPolicy())
        for tag in "abc":
            s.spawn(worker, tag, name=tag)
        trace = s.run()
        report = fairness_report(trace)
        assert all(row["max_gap"] <= 3 for row in report.values())


class TestRandomPolicy:
    def test_deterministic_per_seed(self):
        transitions = _dummy_transitions(4)
        a = RandomPolicy(5)
        b = RandomPolicy(5)
        assert [a.choose(transitions) for _ in range(20)] == \
               [b.choose(transitions) for _ in range(20)]

    def test_different_seeds_differ(self):
        transitions = _dummy_transitions(4)
        a = [RandomPolicy(1).choose(transitions) for _ in range(20)]
        b = [RandomPolicy(2).choose(transitions) for _ in range(20)]
        assert a != b

    def test_reset_rewinds_stream(self):
        transitions = _dummy_transitions(3)
        policy = RandomPolicy(9)
        first = [policy.choose(transitions) for _ in range(10)]
        policy.reset()
        assert [policy.choose(transitions) for _ in range(10)] == first


class TestFixedPolicy:
    def test_follows_schedule_then_tail(self):
        transitions = _dummy_transitions(3)
        policy = FixedPolicy([2, 0, 1])
        assert [policy.choose(transitions) for _ in range(3)] == [2, 0, 1]
        assert policy.exhausted

    def test_out_of_range_index_raises_replay_error(self):
        policy = FixedPolicy([7])
        with pytest.raises(ReplayError):
            policy.choose(_dummy_transitions(2))


class TestRecordingPolicy:
    def test_records_choice_and_fanout(self):
        inner = FixedPolicy([1, 0])
        policy = RecordingPolicy(inner)
        policy.choose(_dummy_transitions(3))
        policy.choose(_dummy_transitions(2))
        assert policy.decisions == [(1, 3), (0, 2)]

    def test_reset_clears_decisions(self):
        policy = RecordingPolicy(RoundRobinPolicy())
        policy.choose(_dummy_transitions(2))
        policy.reset()
        assert policy.decisions == []


class TestTransitionDescribe:
    def test_run_description_names_task(self):
        tr = _dummy_transitions(1)[0]
        assert tr.task.name in tr.describe()
