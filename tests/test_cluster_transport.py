"""Unit tests for the cluster's wire building blocks.

Framing (length-prefix encode + incremental decode across arbitrary
TCP chunk boundaries), envelope serialization (JSON and pickle),
addressing, and the three delivery-guarantee pieces: retransmission
outbox, receive-side dedup table, and the credit gate.  All pure
in-memory units — no sockets, no threads except where the gate's
blocking semantics are the thing under test.
"""

import threading
import time

import pytest

from repro.cluster.delivery import (
    CreditGate,
    DedupTable,
    Outbox,
    RetryPolicy,
)
from repro.cluster.message import (
    Envelope,
    JsonSerializer,
    PickleSerializer,
    make_path,
    serializer,
    split_path,
)
from repro.cluster.transport import MAX_FRAME, FrameDecoder, encode_frame


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def test_frame_roundtrip_single():
    dec = FrameDecoder()
    assert dec.push(encode_frame(b"hello")) == [b"hello"]


def test_frame_roundtrip_byte_at_a_time():
    wire = encode_frame(b"abc") + encode_frame(b"") + encode_frame(b"xyz")
    dec = FrameDecoder()
    frames = []
    for i in range(len(wire)):
        frames.extend(dec.push(wire[i:i + 1]))
    assert frames == [b"abc", b"", b"xyz"]


def test_frame_multiple_in_one_chunk():
    wire = b"".join(encode_frame(str(i).encode()) for i in range(10))
    assert FrameDecoder().push(wire) == \
        [str(i).encode() for i in range(10)]


def test_frame_oversize_rejected():
    import struct
    dec = FrameDecoder()
    with pytest.raises(ValueError):
        dec.push(struct.pack(">I", MAX_FRAME + 1))


# ---------------------------------------------------------------------------
# envelopes + serializers
# ---------------------------------------------------------------------------

def test_paths():
    assert make_path("n", "a") == "n/a"
    assert split_path("n/a") == ("n", "a")
    assert split_path("n/a/b") == ("n", "a/b")
    for bad in ("plain", "/x", "x/", ""):
        with pytest.raises(ValueError):
            split_path(bad)


@pytest.mark.parametrize("codec", [JsonSerializer(), PickleSerializer()])
def test_envelope_roundtrip(codec):
    env = Envelope("tell", 7, "a", "b/actor",
                   payload=["ping", 3], sender="a/pinger")
    out = codec.decode(codec.encode(env))
    assert (out.kind, out.seq, out.origin, out.target,
            out.payload, out.sender) == \
        ("tell", 7, "a", "b/actor", ["ping", 3], "a/pinger")


def test_pickle_preserves_tuples_json_does_not():
    env = Envelope("tell", 1, "a", "b/x", payload=("t", 1))
    assert PickleSerializer().decode(
        PickleSerializer().encode(env)).payload == ("t", 1)
    assert JsonSerializer().decode(
        JsonSerializer().encode(env)).payload == ["t", 1]


def test_serializer_factory():
    assert isinstance(serializer("json"), JsonSerializer)
    assert isinstance(serializer("pickle"), PickleSerializer)
    with pytest.raises(KeyError):
        serializer("msgpack")


# ---------------------------------------------------------------------------
# retry policy + outbox
# ---------------------------------------------------------------------------

def test_retry_policy_backoff_schedule():
    p = RetryPolicy(base_timeout=0.2, factor=2.0, max_attempts=5)
    assert [p.deadline_after(n) for n in (1, 2, 3)] == [0.2, 0.4, 0.8]
    for bad in (dict(base_timeout=0), dict(factor=0.5),
                dict(max_attempts=0)):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)


def _env(seq):
    return Envelope("tell", seq, "a", "b/x", payload=seq)


def test_outbox_retries_with_backoff_then_expires():
    box = Outbox(RetryPolicy(base_timeout=1.0, factor=2.0, max_attempts=3))
    box.register(1, _env(1), now=0.0)
    assert box.due(0.5) == []              # not yet
    assert [e.seq for e in box.due(1.0)] == [1]     # attempt 2, due +2
    assert box.due(2.0) == []
    assert [e.seq for e in box.due(3.0)] == [1]     # attempt 3 (last)
    assert box.due(100.0) == []            # attempts exhausted: no resend
    assert box.expired(3.5) == []          # last deadline not yet passed
    assert [e.seq for e in box.expired(7.1)] == [1]
    assert len(box) == 0
    assert box.retries == 2


def test_outbox_cumulative_ack_retires_prefix():
    box = Outbox(RetryPolicy(base_timeout=1.0))
    for s in (1, 2, 3, 4):
        box.register(s, _env(s), now=0.0)
    assert box.on_ack(3) == 3
    assert len(box) == 1
    assert [e.seq for e in box.due(1.0)] == [4]
    assert box.on_ack(4) == 1
    assert box.due(100.0) == []            # empty fast path


def test_outbox_drain_returns_everything_in_order():
    box = Outbox()
    for s in (3, 1, 2):
        box.register(s, _env(s), now=0.0)
    assert [e.seq for e in box.drain()] == [1, 2, 3]
    assert len(box) == 0


# ---------------------------------------------------------------------------
# dedup table
# ---------------------------------------------------------------------------

def test_dedup_fresh_exactly_once_in_order():
    t = DedupTable()
    assert [t.fresh(s) for s in (1, 2, 3)] == [True, True, True]
    assert [t.fresh(s) for s in (1, 2, 3)] == [False, False, False]
    assert t.cumulative == 3


def test_dedup_out_of_order_compacts_watermark():
    t = DedupTable()
    assert t.fresh(3) and t.fresh(1)
    assert t.cumulative == 1               # hole at 2
    assert not t.fresh(3)
    assert t.fresh(2)
    assert t.cumulative == 3               # hole plugged, prefix compacts
    assert not any(t.fresh(s) for s in (1, 2, 3))


# ---------------------------------------------------------------------------
# credit gate
# ---------------------------------------------------------------------------

def test_gate_counts_and_replenishes():
    g = CreditGate(2)
    assert g.acquire(timeout=0) and g.acquire(timeout=0)
    assert g.available == 0
    assert g.acquire(timeout=0.01) is False
    g.release(5)
    assert g.available == 2                # capped at the window
    assert g.acquire(timeout=0)


def test_gate_parks_then_resumes_on_release():
    g = CreditGate(1)
    assert g.acquire()
    woke = threading.Event()

    def blocked():
        if g.acquire(timeout=5):
            woke.set()

    t = threading.Thread(target=blocked)
    t.start()
    time.sleep(0.05)
    assert g.parked == 1
    g.release()
    t.join(timeout=5)
    assert woke.is_set()
    assert g.total_parks == 1


def test_gate_brk_refuses_parked_and_future_senders():
    g = CreditGate(1)
    assert g.acquire()
    results = []
    t = threading.Thread(
        target=lambda: results.append(g.acquire(timeout=5)))
    t.start()
    time.sleep(0.05)
    g.brk("node down")
    t.join(timeout=5)
    assert results == [False]
    assert g.broken == "node down"
    assert g.acquire(timeout=0) is False   # broken gates stay broken


def test_gate_rejects_invalid_window():
    with pytest.raises(ValueError):
        CreditGate(0)
