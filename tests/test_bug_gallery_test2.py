"""Bug gallery, Test-2 grading harness, pair-programming phase, CLI."""

import pytest

from repro.problems.bug_gallery import BUG_IDS, check_bug, gallery


class TestBugGallery:
    def test_gallery_covers_the_lu_categories(self):
        categories = {spec.category for spec in gallery()}
        assert categories >= {"atomicity", "order", "deadlock", "liveness",
                              "safety"}

    @pytest.mark.parametrize("bug_id", BUG_IDS)
    def test_bug_manifests_and_fix_removes_it(self, bug_id):
        spec = next(s for s in gallery() if s.bug_id == bug_id)
        report = check_bug(spec)
        assert report["buggy_manifests"], bug_id
        assert not report["fixed_manifests"], bug_id

    def test_atomicity_entry_flagged_by_race_detector(self):
        spec = next(s for s in gallery() if s.category == "atomicity")
        report = check_bug(spec)
        assert report["race_found"]
        assert not report["race_in_fix"]

    def test_every_entry_has_a_story(self):
        for spec in gallery():
            assert spec.story
            assert spec.title


class TestTest2Harness:
    def test_reference_submission_gets_full_marks(self):
        from repro.study.test2 import grade_submission, reference_submission
        grade = grade_submission(reference_submission(), crossings=2,
                                 runs=3)
        assert grade.total == 100.0
        assert set(grade.forms) == {"threads", "actors", "coroutines"}
        assert "100/100" in grade.report()

    def test_unsafe_submission_fails_safety(self):
        from repro.study.test2 import Submission, grade_submission

        def unsafe(cars, crossings):
            # both directions "on the bridge" simultaneously
            return [("redCarA", "enter-bridge"),
                    ("blueCarA", "enter-bridge"),
                    ("redCarA", "exit-bridge"),
                    ("blueCarA", "exit-bridge")]

        def honest(cars, crossings):
            log = []
            for name, _color in cars:
                for _ in range(crossings):
                    log.append((name, "enter-bridge"))
                    log.append((name, "exit-bridge"))
            return log

        grade = grade_submission(
            Submission(threads=unsafe, actors=honest, coroutines=honest,
                       author="cheater"), crossings=2, runs=2)
        assert not grade.forms["threads"].safety_ok
        assert grade.forms["actors"].safety_ok
        assert grade.total < 100.0

    def test_incomplete_submission_loses_points(self):
        from repro.study.test2 import Submission, grade_form

        def lazy(cars, crossings):
            name = cars[0][0]
            return [(name, "enter-bridge"), (name, "exit-bridge")]

        grade = grade_form("threads", lazy, crossings=2, runs=2)
        assert grade.safety_ok
        assert not grade.complete
        assert grade.points == 60.0

    def test_crashing_submission_reported(self):
        from repro.study.test2 import grade_form

        def broken(cars, crossings):
            raise RuntimeError("NullPointerException, probably")

        grade = grade_form("actors", broken, runs=2)
        assert not grade.safety_ok
        assert any("crashed" in f for f in grade.failures)


class TestPairProgrammingPhase:
    def test_phase_reproduces_equal_challenge_prediction(self):
        from repro.study.cohort import sample_cohort
        from repro.study.pair_programming import run_pair_phase
        members = sample_cohort(16, seed=2013)
        report = run_pair_phase(members, seed=77)
        # the paper's cited prediction: no significant challenge gap
        assert not report.challenge.significant
        assert "reproduced" in report.describe()

    def test_every_member_has_an_outcome(self):
        from repro.study.cohort import sample_cohort
        from repro.study.pair_programming import run_pair_phase
        members = sample_cohort(16, seed=5)
        report = run_pair_phase(members)
        assert len(report.outcomes) == 16
        pp = [o for o in report.outcomes if o.group == "PP"]
        for outcome in pp:
            if outcome.partner is not None:
                partner = next(o for o in pp if o.name == outcome.partner)
                assert partner.sm_lab == outcome.sm_lab  # shared work

    def test_pair_quality_not_worse(self):
        from repro.study.cohort import sample_cohort
        from repro.study.pair_programming import run_pair_phase
        gaps = []
        for seed in range(5):
            members = sample_cohort(16, seed=100 + seed)
            report = run_pair_phase(members, seed=seed)
            gaps.append(report.quality.mean_a - report.quality.mean_b)
        assert sum(gaps) / len(gaps) > -3.0   # PP at least on par


class TestCLI:
    def _write(self, tmp_path, source):
        path = tmp_path / "prog.pseudo"
        path.write_text(source)
        return str(path)

    def test_run_command(self, tmp_path, capsys):
        from repro.cli import main
        path = self._write(tmp_path, 'PRINT "hi"')
        assert main(["run", path]) == 0
        assert "hi" in capsys.readouterr().out

    def test_outputs_command(self, tmp_path, capsys):
        from repro.cli import main
        path = self._write(tmp_path,
                           'PARA\nPRINT "a "\nPRINT "b "\nENDPARA')
        assert main(["outputs", path]) == 0
        out = capsys.readouterr().out
        assert "possibility 1" in out and "possibility 2" in out

    def test_check_command_flags_deadlock(self, tmp_path, capsys):
        from repro.cli import main
        source = """
x = 0
flag = 0
DEFINE waiter()
  EXC_ACC
    WHILE flag == 0
      WAIT()
    ENDWHILE
    x = 1
  END_EXC_ACC
ENDDEF
PARA
  waiter()
ENDPARA
"""
        path = self._write(tmp_path, source)
        assert main(["check", path]) == 1
        assert "DEADLOCK" in capsys.readouterr().out

    def test_check_command_clean_program(self, tmp_path, capsys):
        from repro.cli import main
        path = self._write(tmp_path, "x = 1\nPRINT x")
        assert main(["check", path]) == 0
        assert "no deadlocks" in capsys.readouterr().out

    def test_run_seeded(self, tmp_path, capsys):
        from repro.cli import main
        path = self._write(tmp_path, 'PRINT 42')
        assert main(["run", path, "--seed", "7"]) == 0
        assert "42" in capsys.readouterr().out

    def test_figures_command(self, capsys):
        from repro.cli import main
        assert main(["figures"]) == 0
        assert "ok" in capsys.readouterr().out
