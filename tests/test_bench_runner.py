"""Bench runner tests — deterministic via FakeClock.

``run_bench`` injects its clock, so every wall-clock-derived field
(per-repetition run time, throughput, span timestamps) is asserted
exactly: with ``FakeClock(step=s)`` each repetition brackets exactly
two clock reads and therefore measures exactly ``s`` seconds.
"""

import pytest

from repro.bench import (DEFAULT, QUICK, BenchResult, Workload,
                         bench_problems, bench_runtimes, compare_to_baseline,
                         make_baseline, run_bench)
from repro.obs import FakeClock

COROUTINE_ONLY = dict(problems=["pingpong"], runtimes=["coroutines"])
SMALL = Workload(workers=1, ops=5, warmup=0, repetitions=3)


def test_registry_covers_six_problems_by_three_runtimes():
    assert bench_problems() == ["bounded_buffer", "bridge",
                                "dining_philosophers", "pingpong",
                                "readers_writers", "sum_workers"]
    assert bench_runtimes() == ["threads", "actors", "coroutines"]


def test_unknown_problem_and_runtime_raise_key_error():
    with pytest.raises(KeyError, match="unknown bench problem"):
        run_bench(problems=["nope"], workload=SMALL)
    with pytest.raises(KeyError, match="unknown runtime"):
        run_bench(runtimes=["fibers"], workload=SMALL)


def test_fake_clock_makes_wall_times_exact():
    clock = FakeClock(step=0.001)
    result = run_bench(workload=SMALL, clock=clock, profile=False,
                       **COROUTINE_ONLY)
    cell = result.cells[0]
    wall = cell["wall_us"]
    # each repetition = two clock reads = exactly one step = 1000 µs
    assert wall["count"] == 3
    assert wall["p50"] == wall["p95"] == wall["p99"] == 1000.0
    assert wall["min"] == wall["max"] == 1000.0
    # 5 ops per rep over 0.001 s → 5000 ops/s, exactly
    assert cell["throughput_ops_per_s"] == 5000.0
    assert cell["ops_total"] == 5


def test_cells_carry_schema_stable_fields():
    result = run_bench(workload=SMALL, clock=FakeClock(), **COROUTINE_ONLY)
    payload = result.as_dict()
    assert payload["schema"] == 1
    assert payload["workload"] == {"workers": 1, "ops": 5, "warmup": 0,
                                   "repetitions": 3}
    cell = payload["cells"][0]
    assert sorted(cell) == ["ops", "ops_total", "problem", "profile",
                            "repetitions", "runtime",
                            "throughput_ops_per_s", "wall_us", "workers"]
    assert sorted(cell["profile"]) == ["counters", "gauges", "histograms"]
    assert cell["profile"]["counters"]["coro.resumes"] > 0
    for key in ("p50", "p95", "p99", "mean", "count"):
        assert key in cell["wall_us"]


def test_profile_false_runs_uninstrumented():
    result = run_bench(workload=SMALL, clock=FakeClock(), profile=False,
                       **COROUTINE_ONLY)
    assert result.cells[0]["profile"] == {"counters": {}, "gauges": {},
                                          "histograms": {}}


def test_warmup_runs_are_not_measured():
    clock = FakeClock(step=0.001)
    result = run_bench(workload=Workload(workers=1, ops=5, warmup=2,
                                         repetitions=3),
                       clock=clock, profile=False, **COROUTINE_ONLY)
    # warmup repetitions take no clock reads and land in no histogram
    assert result.cells[0]["wall_us"]["count"] == 3
    assert len(result.spans) == 3


def test_progress_callback_announces_each_cell():
    seen = []
    run_bench(problems=["pingpong"], runtimes=["coroutines", "threads"],
              workload=SMALL, clock=FakeClock(), profile=False,
              progress=seen.append)
    assert len(seen) == 2
    assert any("pingpong on coroutines" in m for m in seen)
    assert any("pingpong on threads" in m for m in seen)


def test_markdown_table_has_one_row_per_problem():
    result = run_bench(problems=["pingpong", "sum_workers"],
                       runtimes=["coroutines"], workload=SMALL,
                       clock=FakeClock(), profile=False)
    table = result.markdown()
    lines = table.splitlines()
    assert lines[0].startswith("| problem | coroutines ops/s |")
    assert len(lines) == 4                   # header + rule + 2 rows
    assert lines[2].startswith("| pingpong |")
    assert lines[3].startswith("| sum_workers |")


def test_markdown_detail_includes_profile_metrics():
    result = run_bench(workload=SMALL, clock=FakeClock(), **COROUTINE_ONLY)
    detail = result.markdown(detail=True)
    assert "### pingpong on coroutines" in detail
    assert "coro.resume_us" in detail


def test_chrome_trace_one_lane_per_runtime():
    result = run_bench(problems=["pingpong"],
                       runtimes=["coroutines", "threads"],
                       workload=SMALL, clock=FakeClock(step=0.001),
                       profile=False)
    trace = result.chrome_trace()
    lanes = [e for e in trace["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"]
    assert {e["args"]["name"] for e in lanes} == {"coroutines", "threads"}
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 6                  # 2 cells × 3 repetitions
    assert all(s["dur"] == 1000.0 for s in slices)
    assert trace["otherData"]["workload"]["ops"] == 5


# ---------------------------------------------------------------------------
# regression baseline
# ---------------------------------------------------------------------------

def _result_with_throughput(tput: float) -> BenchResult:
    cell = {"problem": "pingpong", "runtime": "coroutines", "workers": 1,
            "ops": 5, "ops_total": 5, "repetitions": 3,
            "wall_us": {"count": 3, "p50": 1000.0, "p95": 1000.0,
                        "p99": 1000.0},
            "throughput_ops_per_s": tput,
            "profile": {"counters": {}, "gauges": {}, "histograms": {}}}
    return BenchResult(SMALL, [cell], [])


def test_make_baseline_shape_and_tolerance_bounds():
    base = make_baseline(_result_with_throughput(5000.0), tolerance=0.8)
    assert base["schema"] == 1
    assert base["tolerance"] == 0.8
    assert base["cells"]["pingpong.coroutines"] == {
        "throughput_ops_per_s": 5000.0, "wall_us_p95": 1000.0}
    with pytest.raises(ValueError):
        make_baseline(_result_with_throughput(1.0), tolerance=1.0)


def test_compare_passes_within_tolerance_and_fails_beyond():
    base = make_baseline(_result_with_throughput(5000.0), tolerance=0.8)
    # floor is 5000 × 0.2 = 1000 ops/s
    assert compare_to_baseline(_result_with_throughput(5000.0), base) == []
    assert compare_to_baseline(_result_with_throughput(1001.0), base) == []
    regressions = compare_to_baseline(_result_with_throughput(999.0), base)
    assert len(regressions) == 1
    assert "pingpong.coroutines" in regressions[0]


def test_compare_ignores_cells_missing_from_baseline():
    base = {"schema": 1, "tolerance": 0.8, "cells": {}}
    assert compare_to_baseline(_result_with_throughput(1.0), base) == []


def test_quick_workload_is_smaller_than_default():
    assert QUICK.workers <= DEFAULT.workers
    assert QUICK.ops < DEFAULT.ops
    assert QUICK.repetitions <= DEFAULT.repetitions
