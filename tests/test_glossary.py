"""The executable glossary: every term's demonstration shows its claim."""

import pytest

from repro.study.glossary import GLOSSARY, TERM_NAMES, demonstrate, term


class TestGlossaryStructure:
    def test_core_course_terms_present(self):
        for name in ("race condition", "deadlock", "block on",
                     "conditional synchronization", "asynchronous send",
                     "fairness", "atomicity", "interleaving"):
            assert name in TERM_NAMES

    def test_terminology_misconceptions_covered(self):
        """Every T-level misconception maps to a glossary term."""
        covered = set()
        for entry in GLOSSARY:
            covered |= set(entry.misread_by)
        assert {"M2", "S2", "S3"} <= covered

    def test_unknown_term_rejected(self):
        with pytest.raises(KeyError):
            term("quantum entanglement")

    def test_every_entry_has_definition(self):
        for entry in GLOSSARY:
            assert len(entry.definition) > 40


class TestDemonstrations:
    def test_race_condition_demo(self):
        evidence = demonstrate("race condition")
        assert len(evidence["distinct_outcomes"]) > 1
        assert evidence["conflicting_access_pair"] is not None

    def test_interleaving_without_race(self):
        evidence = demonstrate("interleaving")
        assert len(evidence["orders"]) == 2
        assert evidence["race_found"] is False

    def test_deadlock_demo(self):
        assert demonstrate("deadlock")["deadlock_reachable"]

    def test_block_on_demo(self):
        assert demonstrate("block on")["blocked_then_proceeded"]

    def test_conditional_synchronization_demo(self):
        assert demonstrate(
            "conditional synchronization")["always_terminates_at"] == ["0"]

    def test_asynchronous_send_demo(self):
        assert len(demonstrate("asynchronous send")["arrival_orders"]) == 2

    def test_fairness_demo(self):
        assert demonstrate("fairness")["max_starvation_gap"] <= 3

    def test_atomicity_demo(self):
        # a single simple statement cannot lose an update
        assert demonstrate("atomicity")["single_statement_outcomes"] == ["3"]
