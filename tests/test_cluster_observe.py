"""Cross-process observability: merged profiles/traces + detectors.

Covers the three bridges between the cluster and the PR 2–4 tooling:
``ClusterEvent`` riding the MonitorBus without tripping kernel-event
interpretation, per-node profile snapshots folding into one report,
and per-node event logs folding into one Chrome trace whose
send→receive flow arrows survive the process boundary.  Ends with an
integration check: a real loopback saturation run fires the cluster
detectors on a live node.
"""

import threading
import time

from repro.actors import Actor
from repro.cluster import (
    ClusterConfig,
    ClusterNode,
    LoopbackHub,
    cluster_bus,
)
from repro.cluster.observe import (
    ClusterEvent,
    ClusterSaturationDetector,
    SuspectLossDetector,
    format_merged_profile,
    merge_chrome_traces,
    merge_profiles,
)
from repro.obs import Profiler


# ---------------------------------------------------------------------------
# ClusterEvent
# ---------------------------------------------------------------------------

def test_cluster_event_dict_roundtrip():
    e = ClusterEvent("cluster-send", "a", actor="pinger", peer="b",
                     step=3, ts=12.5, msg_seq=77, extra={"seq": 1})
    back = ClusterEvent.from_dict(e.as_dict())
    assert back.kind == "cluster-send" and back.node == "a"
    assert back.actor == "pinger" and back.peer == "b"
    assert back.step == 3 and back.ts == 12.5
    assert back.msg_seq == 77 and back.recv_seq is None
    assert back.extra == {"seq": 1}


def test_cluster_event_ducktypes_kernel_trace_surface():
    """The attributes KernelView.feed touches must exist and be inert:
    no obj_name -> no lock interpretation, no recv_mbox -> no mailbox
    sequence accounting."""
    e = ClusterEvent("cluster-recv", "b", actor="sink", peer="a")
    assert e.obj_name is None
    assert e.recv_mbox is None
    assert e.task_name == "b/sink"
    assert e.task_tid == ClusterEvent("x", "b").task_tid   # stable per node
    assert "cluster-recv" in e.effect_repr
    # feeding a whole bus with kernel detectors must not blow up
    from repro.obs.monitors import MonitorBus
    bus = MonitorBus()
    bus.feed(e)
    assert bus.events_seen == 1


def test_flow_ids_stable_across_hash_randomization():
    """Flow ids and pseudo-tids pair events minted by *different*
    processes, so they must not depend on PYTHONHASHSEED — the builtin
    ``hash`` of a string differs per interpreter process."""
    import os
    import pathlib
    import subprocess
    import sys

    import repro

    code = ("from repro.cluster.node import _flow_id\n"
            "from repro.cluster.observe import ClusterEvent\n"
            "print(_flow_id('a', 'b', 7), ClusterEvent('k', 'a').task_tid)")
    pkg_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
    outs = set()
    for seed in ("0", "1", "2"):
        env = {**os.environ, "PYTHONHASHSEED": seed,
               "PYTHONPATH": pkg_root + os.pathsep
               + os.environ.get("PYTHONPATH", "")}
        outs.add(subprocess.check_output(
            [sys.executable, "-c", code], env=env))
    assert len(outs) == 1


# ---------------------------------------------------------------------------
# profile merging
# ---------------------------------------------------------------------------

def _snapshot(**counters):
    p = Profiler()
    for name, n in counters.items():
        p.inc(name.replace("_", "."), n)
    return p.snapshot()


def test_merge_profiles_sums_counters_and_namespaces_histograms():
    a = Profiler()
    a.inc("cluster.sent", 10)
    a.gauge_max("cluster.mailbox_depth_max", 5)
    a.observe_us("cluster.credit_wait_us", 0.001)
    b = Profiler()
    b.inc("cluster.sent", 7)
    b.inc("cluster.delivered", 17)
    b.gauge_max("cluster.mailbox_depth_max", 9)
    merged = merge_profiles({"driver": a.snapshot(),
                             "worker": b.snapshot()})
    assert sorted(merged["nodes"]) == ["driver", "worker"]
    assert merged["counters"]["cluster.sent"] == 17        # summed
    assert merged["counters"]["cluster.delivered"] == 17
    assert merged["gauges"]["cluster.mailbox_depth_max"] == 9   # maxed
    # histograms keep their node prefix: percentiles don't merge
    assert any(k.startswith("driver:") for k in merged["histograms"])
    text = format_merged_profile(merged)
    assert "driver" in text and "cluster.sent" in text


# ---------------------------------------------------------------------------
# chrome trace merging
# ---------------------------------------------------------------------------

def test_merge_chrome_traces_pids_and_flow_arrows():
    send = ClusterEvent("cluster-send", "a", actor="p", peer="b",
                        step=1, ts=100.0, msg_seq=42)
    recv = ClusterEvent("cluster-recv", "b", actor="e", peer="a",
                        step=1, ts=100.001, recv_seq=42)
    trace = merge_chrome_traces({"a": [send],
                                 "b": [recv.as_dict()]})   # mixed forms
    events = trace["traceEvents"]
    # one process_name metadata record per node
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert names == {"a", "b"}
    pids = {e["args"]["name"]: e["pid"] for e in events if e["ph"] == "M"}
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == 1 and len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"] == 42
    assert starts[0]["pid"] == pids["a"]
    assert finishes[0]["pid"] == pids["b"]
    # timestamps rebased to the earliest event, microseconds
    assert starts[0]["ts"] == 0.0
    assert 900 < finishes[0]["ts"] < 1100


# ---------------------------------------------------------------------------
# detectors (synthetic events)
# ---------------------------------------------------------------------------

def _feed(detector, event):
    return list(detector.on_event(None, event, ()))


def test_saturation_detector_thresholds_and_dedup():
    det = ClusterSaturationDetector(staged_threshold=3)
    low = ClusterEvent("cluster-stage", "b", actor="sink",
                       extra={"staged": 2})
    assert _feed(det, low) == []
    hot = ClusterEvent("cluster-stage", "b", actor="sink",
                       extra={"staged": 3})
    hazards = _feed(det, hot)
    assert [h.kind for h in hazards] == ["cluster-mailbox-saturation"]
    assert hazards[0].severity == "warning"
    assert _feed(det, hot) == []                 # once per (node, actor)
    park = ClusterEvent("cluster-park", "a", actor="sink",
                        extra={"path": "b/sink"})
    hazards = _feed(det, park)
    assert [h.kind for h in hazards] == ["cluster-backpressure"]
    assert _feed(det, park) == []                # once per path


def test_suspect_loss_detector_escalation_ladder():
    det = SuspectLossDetector()
    quiet = ClusterEvent("cluster-suspect", "a", peer="b",
                         extra={"unacked": 0})
    assert _feed(det, quiet) == []               # nothing in flight: fine
    risky = ClusterEvent("cluster-suspect", "a", peer="b",
                         extra={"unacked": 4})
    hazards = _feed(det, risky)
    assert [h.kind for h in hazards] == ["cluster-suspect-loss"]
    down = ClusterEvent("cluster-down", "a", peer="b")
    hazards = _feed(det, down)
    assert [(h.kind, h.severity) for h in hazards] == \
        [("cluster-node-down", "error")]
    lost = ClusterEvent("cluster-dead-letter", "a", actor="b/sink",
                        extra={"why": "undeliverable to b after 5 attempts"})
    hazards = _feed(det, lost)
    assert [h.kind for h in hazards] == ["cluster-message-loss"]
    assert _feed(det, lost) == []                # first loss only


# ---------------------------------------------------------------------------
# live integration: detectors on a real loopback node
# ---------------------------------------------------------------------------

def test_status_pulls_coherent_under_pingpong_storm():
    """STATUS with every opt-in extra (profile, telemetry, flight)
    pulled in a tight loop while a pipelined pingpong storm saturates
    both nodes.  Guards the two regressions that bit this path before:
    a torn profiler snapshot under concurrent writers, and the STATUS
    handler deadlocking on ``_state_lock`` while the storm holds it."""
    from repro.obs.telemetry import TelemetryAgent

    hub = LoopbackHub()
    a = ClusterNode("a", hub.join("a"), profiler=Profiler(), workers=2)
    b = ClusterNode("b", hub.join("b"), profiler=Profiler(), workers=2)
    TelemetryAgent().attach(a)
    TelemetryAgent().attach(b)
    a.connect("b")
    b.connect("a")
    try:
        class Echo(Actor):
            def receive(self, msg, sender):
                if sender is not None:
                    sender.tell(msg, sender=self.self_ref)

        class Pinger(Actor):
            def __init__(self, target):
                super().__init__()
                self.target = target

            def receive(self, msg, sender):
                if msg == "start":
                    for i in range(16):          # pipelined window
                        self.target.tell(i, sender=self.self_ref)
                    return
                self.target.tell(msg, sender=self.self_ref)

        b.spawn(Echo, name="echo")
        pinger = a.spawn(Pinger, a.ref("b/echo"), name="pinger")
        pinger.tell("start")                     # perpetual storm
        deadline = time.monotonic() + 60         # deadlock guard
        while time.monotonic() < deadline and \
                b.profiler.get("mailbox.processed") == 0:
            time.sleep(0.005)                    # storm warm-up
        replies = []
        while len(replies) < 25 and time.monotonic() < deadline:
            replies.append(a.status_of("b", timeout=10.0, profile=True,
                                       telemetry=True, flight=True))
        assert len(replies) == 25, "status pulls starved by the storm"
        processed = 0
        for reply in replies:
            assert reply["node"] == "b"
            profile = reply["profile"]
            # coherent cut: latency samples are observed per *batch* at
            # dequeue while mailbox.processed increments per message
            # after handling, so a snapshot may run ahead by at most one
            # batch (throughput=16) per actor — but never further, and
            # never behind, if the snapshot isn't torn
            lat = profile["histograms"].get("mailbox.latency_us")
            if lat is not None:
                assert lat["count"] <= profile["counters"][
                    "mailbox.processed"] + 16
            assert set(reply["telemetry"]["nodes"]) <= {"a", "b"}
            assert isinstance(reply["flight"], list)
            processed = max(processed, profile["counters"].get(
                "mailbox.processed", 0))
        assert processed > 0                     # the storm really ran
    finally:
        a.close()
        b.close()


def test_live_saturation_run_raises_hazards_and_traces():
    clock = [0.0]
    hub = LoopbackHub()
    cfg = ClusterConfig(mailbox_bound=2, credit_window=64,
                        tick_interval=1e9, ack_every=4)
    bus = cluster_bus()
    a = ClusterNode("a", hub.join("a"), config=cfg, timer=False,
                    trace=True, clock=lambda: clock[0])
    b = ClusterNode("b", hub.join("b"), config=cfg, timer=False,
                    trace=True, monitors=bus, clock=lambda: clock[0])
    a.connect("b")
    b.connect("a")
    try:
        class Gate(Actor):
            def __init__(self, release):
                super().__init__()
                self.release = release

            def receive(self, msg, sender):
                self.release.wait(10)

        release = threading.Event()
        b.spawn(Gate, release, name="gate")
        rs = a.ref("b/gate")
        for i in range(16):                    # >> mailbox_bound of 2
            rs.tell(i)
        time.sleep(0.1)
        assert any(h.kind == "cluster-mailbox-saturation"
                   for h in bus.hazards), bus.hazards
        release.set()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and b.status()["staged"]:
            b.pump()
            time.sleep(0.01)
        assert b.drain(timeout=5)
        # both nodes traced; the merged trace has at least one flow pair
        merged = merge_chrome_traces({"a": a.trace_events,
                                      "b": b.trace_events})
        phases = {e["ph"] for e in merged["traceEvents"]}
        assert {"s", "f"} <= phases
    finally:
        release.set()
        a.close()
        b.close()
