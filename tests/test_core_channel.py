"""SimChannel / SimRendezvous — library constructs over the monitor."""

import pytest

from repro.core import (ChannelClosed, DeadlockError, Emit, Scheduler,
                        SimChannel, SimRendezvous, TaskFailed, run_tasks)
from repro.verify import explore


class TestSimChannel:
    def test_fifo_order_preserved(self):
        chan = SimChannel(capacity=2)

        def producer():
            for i in range(5):
                yield from chan.put_gen(i)

        def consumer():
            for _ in range(5):
                value = yield from chan.get_gen()
                yield Emit(value)
        trace = run_tasks(producer, consumer)
        assert trace.output == [0, 1, 2, 3, 4]

    def test_capacity_never_exceeded(self):
        def program(sched):
            chan = SimChannel(capacity=2)
            high = {"max": 0}

            def producer():
                for i in range(3):
                    yield from chan.put_gen(i)
                    high["max"] = max(high["max"], len(chan))

            def consumer():
                for _ in range(3):
                    yield from chan.get_gen()
            sched.spawn(producer)
            sched.spawn(consumer)
            return lambda: high["max"]
        res = explore(program, max_runs=50_000)
        assert res.complete
        assert max(res.observations()) <= 2

    def test_get_blocks_until_put(self):
        chan = SimChannel(capacity=1)

        def consumer():
            value = yield from chan.get_gen()
            yield Emit(("got", value))

        def producer():
            yield from chan.put_gen("item")
        trace = run_tasks(consumer, producer)
        assert ("got", "item") in trace.output

    def test_close_wakes_blocked_getter(self):
        chan = SimChannel(capacity=1)

        def consumer():
            yield from chan.get_gen()

        def closer():
            yield from chan.close_gen()
        s = Scheduler(raise_on_failure=False)
        t = s.spawn(consumer)
        s.spawn(closer)
        s.run()
        assert isinstance(t.error, ChannelClosed)

    def test_put_on_closed_channel_fails(self):
        chan = SimChannel(capacity=1)

        def worker():
            yield from chan.close_gen()
            yield from chan.put_gen("x")
        with pytest.raises(TaskFailed) as err:
            run_tasks(worker)
        assert isinstance(err.value.original, ChannelClosed)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SimChannel(capacity=0)

    def test_lonely_getter_deadlocks(self):
        chan = SimChannel(capacity=1)

        def consumer():
            yield from chan.get_gen()
        with pytest.raises(DeadlockError):
            run_tasks(consumer)


class TestSimRendezvous:
    def test_value_transferred(self):
        rdv = SimRendezvous()

        def sender():
            yield from rdv.send_gen("hello")
            yield Emit("sent")

        def receiver():
            value = yield from rdv.recv_gen()
            yield Emit(("received", value))
        trace = run_tasks(sender, receiver)
        assert ("received", "hello") in trace.output
        assert "sent" in trace.output

    def test_sender_blocks_without_receiver(self):
        rdv = SimRendezvous()

        def sender():
            yield from rdv.send_gen("nobody listens")
        with pytest.raises(DeadlockError):
            run_tasks(sender)

    def test_multiple_exchanges_sequence(self):
        rdv = SimRendezvous()

        def sender():
            for i in range(3):
                yield from rdv.send_gen(i)

        def receiver():
            for _ in range(3):
                value = yield from rdv.recv_gen()
                yield Emit(value)
        trace = run_tasks(sender, receiver)
        assert trace.output == [0, 1, 2]

    def test_exchange_completes_under_all_schedules(self):
        """Every schedule completes both sides with the right value
        (the rendezvous can neither lose nor duplicate the item)."""
        def program(sched):
            rdv = SimRendezvous()
            seen = []

            def sender():
                yield from rdv.send_gen("x")

            def receiver():
                value = yield from rdv.recv_gen()
                seen.append(value)
            sched.spawn(sender)
            sched.spawn(receiver)
            return lambda: tuple(seen)
        res = explore(program, max_runs=50_000)
        assert res.complete
        assert res.outcomes == {"done": res.runs}
        assert res.observations() == {("x",)}
