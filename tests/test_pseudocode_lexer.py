"""Lexer: tokens, literals, positions, errors."""

import pytest

from repro.pseudocode import LexError, tokenize
from repro.pseudocode.tokens import TokenType as T


def types(source):
    return [t.type for t in tokenize(source)]


class TestBasicTokens:
    def test_assignment_line(self):
        assert types("total = 0") == [
            T.IDENT, T.ASSIGN, T.NUMBER, T.NEWLINE, T.EOF]

    def test_keywords_case_sensitive(self):
        toks = tokenize("PARA para")
        assert toks[0].type is T.PARA
        assert toks[1].type is T.IDENT    # lowercase is an identifier

    def test_endpara_synonym(self):
        assert types("END_PARA")[0] is T.ENDPARA

    def test_string_literal(self):
        tok = tokenize('name = "John Smith"')[2]
        assert tok.type is T.STRING
        assert tok.value == "John Smith"

    def test_string_escapes(self):
        tok = tokenize(r'x = "a\nb\"c"')[2]
        assert tok.value == 'a\nb"c'

    def test_single_quoted_string(self):
        assert tokenize("x = 'hi'")[2].value == "hi"

    def test_integer_and_float(self):
        toks = tokenize("a = 42\nb = 3.3")
        assert toks[2].value == 42 and isinstance(toks[2].value, int)
        assert toks[6].value == 3.3 and isinstance(toks[6].value, float)

    def test_comparison_operators(self):
        assert types("a >= 1")[1] is T.GE
        assert types("a == 1")[1] is T.EQ
        assert types("a != 1")[1] is T.NE
        assert types("a <= 1")[1] is T.LE

    def test_booleans(self):
        toks = tokenize("condition = True")
        assert toks[2].type is T.TRUE


class TestStructure:
    def test_newlines_collapse(self):
        assert types("a = 1\n\n\nb = 2").count(T.NEWLINE) == 2

    def test_comments_stripped(self):
        assert types("a = 1  # a comment") == [
            T.IDENT, T.ASSIGN, T.NUMBER, T.NEWLINE, T.EOF]

    def test_trailing_newline_guaranteed(self):
        toks = tokenize("a = 1")
        assert toks[-2].type is T.NEWLINE
        assert toks[-1].type is T.EOF

    def test_line_numbers(self):
        toks = tokenize("a = 1\nb = 2")
        b_tok = next(t for t in toks if t.value == "b")
        assert b_tok.line == 2

    def test_message_send_tokens(self):
        toks = tokenize("Send(m1).To(r1)")
        assert [t.type for t in toks[:4]] == [
            T.SEND, T.LPAREN, T.IDENT, T.RPAREN]
        assert toks[5].type is T.TO


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize('x = "oops')

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected"):
            tokenize("a = 1 @ 2")

    def test_error_carries_position(self):
        try:
            tokenize("a = 1\nb = $")
        except LexError as err:
            assert err.line == 2
        else:  # pragma: no cover
            pytest.fail("expected LexError")
