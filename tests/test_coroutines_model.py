"""Coroutine model: de Moura taxonomy properties, scheduler, bridge."""

import asyncio

import pytest

from repro.coroutines import (Call, ChannelClosed, CoChannel, CoDeadlock,
                              CoEvent, Coroutine, CoroutineError,
                              CoroutineState, CoScheduler, CoSemaphore,
                              Suspend, SymmetricCoroutine, Transfer,
                              gather_generators, pause, run_symmetric)


class TestAsymmetricCoroutine:
    def test_locals_persist_between_resumes(self):
        """Marlin's first defining property (paper's reference [4])."""
        def counter():
            n = 0
            while True:
                n += 1
                yield Suspend(n)
        co = Coroutine(counter)
        assert [co.resume() for _ in range(3)] == [1, 2, 3]

    def test_execution_resumes_where_it_left_off(self):
        """Marlin's second property."""
        def phased():
            yield Suspend("phase-1")
            yield Suspend("phase-2")
            return "done"
        co = Coroutine(phased)
        assert co.resume() == "phase-1"
        assert co.resume() == "phase-2"
        assert co.resume() == "done"
        assert co.status is CoroutineState.DEAD

    def test_resume_value_delivered(self):
        def adder():
            total = 0
            while True:
                got = yield Suspend(total)
                total += got
        co = Coroutine(adder)
        co.resume()
        assert co.resume(5) == 5
        assert co.resume(7) == 12

    def test_bare_yield_shorthand_at_top_level(self):
        def simple():
            yield "raw"
        assert Coroutine(simple).resume() == "raw"

    def test_first_class_storable_and_passable(self):
        """de Moura axis 2: coroutines are plain values."""
        def gen_a():
            yield Suspend("a")

        def gen_b():
            yield Suspend("b")
        table = {name: Coroutine(fn) for name, fn in
                 [("a", gen_a), ("b", gen_b)]}
        assert [table[k].resume() for k in "ab"] == ["a", "b"]

    def test_stackful_nested_suspend(self):
        """de Moura axis 3: suspension from within nested calls."""
        def leaf():
            yield Suspend("from-the-leaf")
            return "leaf-result"

        def middle():
            result = yield Call(leaf())
            return ("middle", result)

        def root():
            result = yield Call(middle())
            yield Suspend(("root-saw", result))
        co = Coroutine(root)
        assert co.resume() == "from-the-leaf"
        assert co.depth == 3            # root + middle + leaf frames live
        assert co.resume() == ("root-saw", ("middle", "leaf-result"))

    def test_nested_bare_yield_rejected(self):
        def leaf():
            yield "bare"

        def root():
            yield Call(leaf())
        with pytest.raises(CoroutineError, match="Suspend"):
            Coroutine(root).resume()

    def test_dead_coroutine_cannot_resume(self):
        def once():
            return "x"
            yield  # pragma: no cover
        co = Coroutine(once)
        co.resume()
        with pytest.raises(CoroutineError, match="dead"):
            co.resume()

    def test_throw_into_coroutine(self):
        def guarded():
            try:
                yield Suspend("waiting")
            except ValueError:
                yield Suspend("caught")
        co = Coroutine(guarded)
        co.resume()
        assert co.throw(ValueError("inject")) == "caught"

    def test_exception_kills_coroutine(self):
        def bad():
            yield Suspend(1)
            raise RuntimeError("inside")
        co = Coroutine(bad)
        co.resume()
        with pytest.raises(RuntimeError):
            co.resume()
        assert co.status is CoroutineState.DEAD

    def test_iterator_view(self):
        def gen():
            for i in range(3):
                yield Suspend(i)
        assert list(Coroutine(gen)) == [0, 1, 2]


class TestSymmetric:
    def test_ping_pong_transfer(self):
        holder = {}

        def ping():
            replies = []
            for i in range(2):
                replies.append((yield Transfer(holder["pong"], f"ping{i}")))
            return replies

        def pong():
            value = None
            while True:
                value = yield Transfer(holder["ping"], f"re:{value}")
        holder["pong"] = SymmetricCoroutine(pong, name="pong")
        holder["ping"] = SymmetricCoroutine(ping, name="ping")
        # Lua semantics: the value of the *first* transfer into a fresh
        # coroutine lands in `first_value` (function-argument position),
        # so pong's loop variable starts at None and then sees ping1
        assert run_symmetric(holder["ping"]) == ["re:None", "re:ping1"]
        assert holder["pong"].first_value == "ping0"

    def test_transfer_to_none_ends_session(self):
        def quitter():
            yield Transfer(None, "bye")
        assert run_symmetric(SymmetricCoroutine(quitter)) == "bye"

    def test_non_transfer_yield_rejected(self):
        def bad():
            yield Suspend("not a transfer")
        with pytest.raises(CoroutineError, match="Transfer"):
            run_symmetric(SymmetricCoroutine(bad))


class TestCoScheduler:
    def test_round_robin_interleaving(self):
        out = []

        def worker(tag):
            for _ in range(2):
                out.append(tag)
                yield pause()
        sched = CoScheduler()
        sched.spawn(worker, "a")
        sched.spawn(worker, "b")
        sched.run()
        assert out == ["a", "b", "a", "b"]

    def test_atomicity_between_yields(self):
        """No preemption between yields — the model's core guarantee."""
        state = {"x": 0}
        torn = []

        def writer():
            for _ in range(10):
                state["x"] += 1
                state["x"] += 1       # same atomic block
                yield pause()

        def checker():
            for _ in range(10):
                torn.append(state["x"] % 2)
                yield pause()
        sched = CoScheduler()
        sched.spawn(writer)
        sched.spawn(checker)
        sched.run()
        assert set(torn) == {0}

    def test_join_returns_result(self):
        def worker():
            yield pause()
            return "worker-done"

        results = []

        def joiner(task):
            results.append((yield from task.join()))
        sched = CoScheduler()
        t = sched.spawn(worker)
        sched.spawn(joiner, t)
        sched.run()
        assert results == ["worker-done"]

    def test_join_propagates_error(self):
        def bad():
            yield pause()
            raise ValueError("inner")

        caught = []

        def joiner(task):
            try:
                yield from task.join()
            except ValueError as e:
                caught.append(str(e))
        sched = CoScheduler()
        t = sched.spawn(bad)
        sched.spawn(joiner, t)
        sched.run()
        assert caught == ["inner"]

    def test_deadlock_detected(self):
        chan = CoChannel()

        def starved():
            yield from chan.get()
        sched = CoScheduler()
        sched.spawn(starved)
        with pytest.raises(CoDeadlock):
            sched.run()

    def test_unjoined_error_reraised_at_end(self):
        def bad():
            yield pause()
            raise RuntimeError("unobserved")
        sched = CoScheduler()
        sched.spawn(bad)
        with pytest.raises(RuntimeError, match="unobserved"):
            sched.run()

    def test_run_until_predicate(self):
        state = {"n": 0}

        def ticker():
            while True:
                state["n"] += 1
                yield pause()
        sched = CoScheduler()
        sched.spawn(ticker)
        assert sched.run_until(lambda: state["n"] >= 5)
        assert state["n"] == 5


class TestCoChannelAndFriends:
    def test_bounded_channel_backpressure(self):
        chan = CoChannel(capacity=1)
        out = []

        def producer():
            for i in range(4):
                yield from chan.put(i)

        def consumer():
            for _ in range(4):
                out.append((yield from chan.get()))
        sched = CoScheduler()
        sched.spawn(producer)
        sched.spawn(consumer)
        sched.run()
        assert out == [0, 1, 2, 3]
        assert len(chan) == 0

    def test_channel_close_unblocks_getter(self):
        chan = CoChannel()
        outcome = []

        def getter():
            try:
                yield from chan.get()
            except ChannelClosed:
                outcome.append("closed")

        def closer():
            yield from chan.close()
        sched = CoScheduler()
        sched.spawn(getter)
        sched.spawn(closer)
        sched.run()
        assert outcome == ["closed"]

    def test_event_broadcast(self):
        event = CoEvent()
        woken = []

        def waiter(i):
            yield from event.wait()
            woken.append(i)

        def setter():
            yield from event.set()
        sched = CoScheduler()
        sched.spawn(waiter, 1)
        sched.spawn(waiter, 2)
        sched.spawn(setter)
        sched.run()
        assert sorted(woken) == [1, 2]
        assert event.is_set

    def test_semaphore_bounds_entry(self):
        sem = CoSemaphore(1)
        inside = {"now": 0, "max": 0}

        def worker():
            yield from sem.acquire()
            inside["now"] += 1
            inside["max"] = max(inside["max"], inside["now"])
            yield pause()
            inside["now"] -= 1
            yield from sem.release()
        sched = CoScheduler()
        for _ in range(3):
            sched.spawn(worker)
        sched.run()
        assert inside["max"] == 1


class TestAsyncioBridge:
    def test_same_tasks_run_on_asyncio(self):
        chan = CoChannel(capacity=2)
        out = []

        def producer():
            for i in range(3):
                yield from chan.put(i)

        def consumer():
            for _ in range(3):
                out.append((yield from chan.get()))
        asyncio.run(gather_generators(producer, consumer))
        assert out == [0, 1, 2]

    def test_gather_returns_results(self):
        def fn(n):
            yield pause()
            return n * 10
        results = asyncio.run(gather_generators(lambda: fn(1),
                                                lambda: fn(2)))
        assert results == [10, 20]

    def test_async_channel(self):
        from repro.coroutines import AsyncChannel

        async def main():
            chan = AsyncChannel(capacity=1)
            await chan.put("x")
            return await chan.get()
        assert asyncio.run(main()) == "x"
