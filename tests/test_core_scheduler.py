"""Scheduler semantics: spawning, effects, termination, replay."""

import pytest

from repro.core import (BudgetExceeded, Choice, DeadlockError, Emit,
                        FixedPolicy, IllegalEffectError, Join, Pause,
                        RandomPolicy, RoundRobinPolicy, Scheduler, Sleep,
                        Spawn, Task, TaskFailed, TaskState, run_tasks)


def emit_each(*values):
    for v in values:
        yield Emit(v)


class TestSpawn:
    def test_spawn_generator_function_with_args(self):
        s = Scheduler()
        t = s.spawn(emit_each, "a", "b", name="t")
        assert t.name == "t"
        assert t.state is TaskState.READY

    def test_spawn_pre_made_generator(self):
        s = Scheduler()
        t = s.spawn(emit_each("x"))
        assert isinstance(t, Task)

    def test_spawn_plain_function_rejected(self):
        s = Scheduler()
        with pytest.raises(TypeError):
            s.spawn(lambda: None)

    def test_args_with_generator_object_rejected(self):
        s = Scheduler()
        with pytest.raises(TypeError):
            s.spawn(emit_each("x"), "extra")

    def test_default_names_unique(self):
        s = Scheduler()
        a = s.spawn(emit_each("x"))
        b = s.spawn(emit_each("y"))
        assert a.tid != b.tid


class TestRunBasics:
    def test_single_task_output(self):
        trace = run_tasks(lambda: emit_each(1, 2, 3))
        assert trace.output == [1, 2, 3]
        assert trace.outcome == "done"

    def test_return_value_captured(self):
        def body():
            yield Pause()
            return 42
        s = Scheduler()
        t = s.spawn(body)
        s.run()
        assert t.state is TaskState.DONE
        assert t.result == 42
        assert s.results() == {"body": 42}

    def test_round_robin_interleaves_fairly(self):
        def worker(tag):
            for _ in range(3):
                yield Emit(tag)
        s = Scheduler(RoundRobinPolicy())
        s.spawn(worker, "a", name="a")
        s.spawn(worker, "b", name="b")
        trace = s.run()
        assert trace.output == ["a", "b", "a", "b", "a", "b"]

    def test_scheduler_single_use(self):
        s = Scheduler()
        s.spawn(emit_each, "x")
        s.run()
        with pytest.raises(Exception, match="single-use"):
            s.run()

    def test_empty_scheduler_runs_cleanly(self):
        assert Scheduler().run().outcome == "done"


class TestSpawnJoinEffects:
    def test_spawn_effect_returns_task(self):
        def parent():
            child = yield Spawn(emit_each("c"), name="child")
            result = yield Join(child)
            yield Emit(("joined", result))
        trace = run_tasks(parent)
        assert ("joined", None) in trace.output
        assert "c" in trace.output

    def test_join_returns_child_result(self):
        def child_body():
            yield Pause()
            return "payload"

        def parent():
            child = yield Spawn(child_body(), name="child")
            result = yield Join(child)
            yield Emit(result)
        trace = run_tasks(parent)
        assert trace.output == ["payload"]

    def test_join_already_finished_task(self):
        def quick():
            return "fast"
            yield  # pragma: no cover

        def parent():
            child = yield Spawn(quick(), name="q")
            yield Pause()
            yield Pause()
            result = yield Join(child)
            yield Emit(result)
        trace = run_tasks(parent)
        assert trace.output == ["fast"]


class TestChoice:
    def test_choice_value_delivered(self):
        def chooser():
            got = yield Choice(["only"])
            yield Emit(got)
        assert run_tasks(chooser).output == ["only"]

    def test_empty_choice_is_error(self):
        def chooser():
            yield Choice([])
        with pytest.raises(TaskFailed):
            run_tasks(chooser)

    def test_choice_options_enumerable(self):
        from repro.verify import explore

        def program(sched):
            def chooser():
                got = yield Choice(["a", "b", "c"])
                yield Emit(got)
            sched.spawn(chooser)
        res = explore(program)
        assert res.output_strings() == {"a", "b", "c"}


class TestFailureHandling:
    def test_task_exception_raises_taskfailed(self):
        def bad():
            yield Pause()
            raise ValueError("boom")
        with pytest.raises(TaskFailed) as err:
            run_tasks(bad)
        assert isinstance(err.value.original, ValueError)

    def test_failure_recorded_when_not_raising(self):
        def bad():
            yield Pause()
            raise ValueError("boom")
        s = Scheduler(raise_on_failure=False)
        t = s.spawn(bad)
        trace = s.run()
        assert t.state is TaskState.FAILED
        assert trace.outcome == "failed"

    def test_non_effect_yield_is_illegal(self):
        def bad():
            yield "not an effect"
        with pytest.raises(TaskFailed) as err:
            run_tasks(bad)
        assert isinstance(err.value.original, IllegalEffectError)


class TestDeadlockAndBudget:
    def test_deadlock_raises_with_blocked_names(self):
        from repro.core import Acquire, SimLock
        l1, l2 = SimLock("l1"), SimLock("l2")

        def ab():
            yield Acquire(l1)
            yield Pause()
            yield Acquire(l2)

        def ba():
            yield Acquire(l2)
            yield Pause()
            yield Acquire(l1)
        s = Scheduler(RoundRobinPolicy())
        s.spawn(ab, name="ab")
        s.spawn(ba, name="ba")
        with pytest.raises(DeadlockError) as err:
            s.run()
        names = [n for n, _ in err.value.blocked]
        assert set(names) == {"ab", "ba"}

    def test_budget_exceeded(self):
        def spinner():
            while True:
                yield Pause()
        s = Scheduler(max_steps=50)
        s.spawn(spinner)
        with pytest.raises(BudgetExceeded):
            s.run()

    def test_budget_recorded_when_not_raising(self):
        def spinner():
            while True:
                yield Pause()
        s = Scheduler(max_steps=50, raise_on_failure=False)
        s.spawn(spinner)
        assert s.run().outcome == "budget"


class TestDaemons:
    def test_daemon_does_not_block_termination(self):
        from repro.core import Mailbox, Receive
        mb = Mailbox("box")

        def loop():
            while True:
                msg = yield Receive(mb)
                yield Emit(msg)

        def main():
            from repro.core import Send
            yield Send(mb, "one")
            yield Send(mb, "two")
        s = Scheduler()
        s.spawn(loop, name="daemon", daemon=True)
        s.spawn(main, name="main")
        trace = s.run()
        assert trace.outcome == "done"
        assert sorted(trace.output) == ["one", "two"]

    def test_non_daemon_blocked_is_still_deadlock(self):
        from repro.core import Mailbox, Receive
        mb = Mailbox("box")

        def loop():
            yield Receive(mb)
        s = Scheduler()
        s.spawn(loop, name="stuck")
        with pytest.raises(DeadlockError):
            s.run()


class TestSleep:
    def test_sleep_defers_task(self):
        def sleeper():
            yield Sleep(3)
            yield Emit("late")

        def worker():
            yield Emit("early")
        trace = run_tasks(sleeper, worker)
        assert trace.output == ["early", "late"]

    def test_all_sleeping_fast_forwards(self):
        def sleeper():
            yield Sleep(100)
            yield Emit("woke")
        assert run_tasks(sleeper).output == ["woke"]


class TestReplayDeterminism:
    def _program(self, sched):
        def worker(tag):
            for _ in range(3):
                yield Emit(tag)
        sched.spawn(worker, "a")
        sched.spawn(worker, "b")

    def test_same_seed_same_trace(self):
        outs = []
        for _ in range(2):
            s = Scheduler(RandomPolicy(42))
            self._program(s)
            outs.append(s.run().output)
        assert outs[0] == outs[1]

    def test_recorded_schedule_replays_exactly(self):
        s1 = Scheduler(RandomPolicy(7))
        self._program(s1)
        trace1 = s1.run()
        s2 = Scheduler(FixedPolicy(trace1.schedule()))
        self._program(s2)
        trace2 = s2.run()
        assert trace2.output == trace1.output
        assert trace2.schedule() == trace1.schedule()
