"""Interpreter semantics — every example from the paper's Figures 1-5,
plus the rules stated in the figure captions."""

import pytest

from repro.core import DeliveryPolicy
from repro.pseudocode import (AnalysisError, PseudoRuntimeError,
                              compile_program, interpret, possible_outputs)


class TestFigure1Assignments:
    def test_assignment_examples(self):
        result = interpret("""
total = 0
name = "John Smith"
condition = True
height = 3.3
""")
        assert result.globals == {"total": 0, "name": "John Smith",
                                  "condition": True, "height": 3.3}


class TestFigure2Conditional:
    SRC = """
testScore = {score}
IF testScore >= 90 THEN
  PRINTLN "A"
ELSE IF testScore >= 80 THEN
  PRINTLN "B"
ELSE IF testScore >= 70 THEN
  PRINTLN "C"
ELSE
  PRINTLN "F"
ENDIF
"""

    def test_paper_example_score_88(self):
        assert interpret(self.SRC.format(score=88)).output_tokens() == ["B"]

    @pytest.mark.parametrize("score,grade", [
        (95, "A"), (90, "A"), (80, "B"), (75, "C"), (10, "F")])
    def test_all_branches(self, score, grade):
        assert interpret(self.SRC.format(score=score)).output_tokens() == \
            [grade]


class TestFigure3Para:
    def test_two_prints_either_order(self):
        assert possible_outputs(
            'PARA\nPRINT "hello "\nPRINT "world "\nENDPARA') == \
            {"hello world", "world hello"}

    def test_function_body_sequential(self):
        assert possible_outputs("""
DEFINE print()
  PRINT "hi "
  PRINT "there "
ENDDEF
PARA
  print()
ENDPARA
""") == {"hi there"}

    def test_function_interleaves_with_simple_statement(self):
        assert possible_outputs("""
DEFINE print()
  PRINT "hi "
  PRINT "there "
ENDDEF
PARA
  print()
  PRINT "world "
ENDPARA
""") == {"hi there world", "hi world there", "world hi there"}

    def test_two_functions_interleave_preserving_internal_order(self):
        outs = possible_outputs("""
DEFINE one()
  PRINT "a "
  PRINT "b "
ENDDEF
DEFINE two()
  PRINT "c "
  PRINT "d "
ENDDEF
PARA
  one()
  two()
ENDPARA
""")
        assert len(outs) == 6   # C(4,2) interleavings
        for out in outs:
            toks = out.split()
            assert toks.index("a") < toks.index("b")
            assert toks.index("c") < toks.index("d")


class TestFigure4SharedMemory:
    def test_exc_acc_example_prints_9(self):
        assert possible_outputs("""
x = 10
DEFINE changeX(diff)
  EXC_ACC
    x = x + diff
  END_EXC_ACC
ENDDEF
PARA
  changeX(1)
  changeX(-2)
ENDPARA
PRINTLN x
""") == {"9"}

    def test_wait_notify_example_prints_0(self):
        assert possible_outputs("""
x = 10
DEFINE changeX(diff)
  EXC_ACC
    WHILE x + diff < 0
      WAIT()
    ENDWHILE
    x = x + diff
    NOTIFY()
  END_EXC_ACC
ENDDEF
PARA
  changeX(-11)
  changeX(1)
ENDPARA
PRINTLN x
""") == {"0"}

    def test_unsynchronized_update_races(self):
        """Without EXC_ACC the classic lost update is possible."""
        outs = possible_outputs("""
x = 0
DEFINE bump(d)
  y = x + d
  x = y
ENDDEF
PARA
  bump(1)
  bump(2)
ENDPARA
PRINTLN x
""")
        assert "3" in outs          # serialized
        assert {"1", "2"} & outs    # lost update reachable


class TestFigure5MessagePassing:
    SRC = """
CLASS Receiver
  DEFINE receive()
    ON_RECEIVING
      MESSAGE.h(var)
        PRINT var
      MESSAGE.w(var)
        PRINTLN var
  ENDDEF
ENDCLASS
m1 = MESSAGE.h("hello ")
m2 = MESSAGE.w("world")
r1 = new Receiver()
r1.receive()
Send(m1).To(r1)
Send(m2).To(r1)
"""

    def test_both_arrival_orders(self):
        assert possible_outputs(self.SRC) == {"hello world", "world hello"}

    def test_fifo_mailbox_removes_reordering(self):
        assert possible_outputs(
            self.SRC, mailbox_policy=DeliveryPolicy.FIFO) == {"hello world"}


class TestLanguageRules:
    def test_exc_acc_outside_function_rejected(self):
        with pytest.raises(AnalysisError, match="function"):
            compile_program("EXC_ACC\nx = 1\nEND_EXC_ACC")

    def test_wait_outside_exc_acc_rejected(self):
        with pytest.raises(AnalysisError, match="WAIT"):
            compile_program("DEFINE f()\nWAIT()\nENDDEF")

    def test_on_receiving_outside_method_rejected(self):
        with pytest.raises(AnalysisError, match="class method"):
            compile_program("""
DEFINE f()
  ON_RECEIVING
    MESSAGE.h(v)
      PRINT v
ENDDEF
""")

    def test_undefined_function_rejected(self):
        with pytest.raises(AnalysisError, match="undefined function"):
            compile_program("nosuch()")

    def test_undefined_class_rejected(self):
        with pytest.raises(AnalysisError, match="undefined class"):
            compile_program("r = new Ghost()")

    def test_undefined_variable_at_runtime(self):
        result = compile_program("PRINT mystery").run(
            raise_on_failure=False)
        assert result.outcome == "failed"

    def test_globals_vs_locals(self):
        result = interpret("""
x = 1
DEFINE f()
  x = 2
  y = 99
ENDDEF
f()
""")
        assert result.globals["x"] == 2       # assigned global
        assert "y" not in result.globals      # function-local

    def test_return_value(self):
        result = interpret("""
DEFINE double(n)
  RETURN n * 2
ENDDEF
x = double(21)
PRINT x
""")
        assert result.output_tokens() == ["42"]

    def test_recursion(self):
        result = interpret("""
DEFINE fact(n)
  IF n <= 1 THEN
    RETURN 1
  ENDIF
  RETURN n * fact(n - 1)
ENDDEF
PRINT fact(5)
""")
        assert result.output_tokens() == ["120"]

    def test_integer_division_stays_exact(self):
        assert interpret("PRINT 10 / 2").output_tokens() == ["5"]

    def test_fields_on_instances(self):
        result = interpret("""
CLASS Box
ENDCLASS
b = new Box()
b.size = 7
PRINT b.size
""")
        assert result.output_tokens() == ["7"]

    def test_exclusion_groups_by_footprint(self):
        """Blocks with disjoint footprints land in different exclusion
        groups (separate monitors), per Figure 4's data-keyed rule."""
        info = compile_program("""
x = 0
y = 0
DEFINE f()
  EXC_ACC
    x = x + 1
  END_EXC_ACC
ENDDEF
DEFINE g()
  EXC_ACC
    y = y + 1
  END_EXC_ACC
ENDDEF
""").info
        groups = {b.group for b in info.exc_blocks}
        assert len(groups) == 2
        assert {("x",), ("y",)} == set(info.groups.values())

    def test_disjoint_blocks_do_not_exclude(self):
        """Operationally: a block on y can run while a block on x is
        held — both print orders reachable."""
        outs = possible_outputs("""
x = 0
DEFINE f()
  EXC_ACC
    PRINT "f "
  END_EXC_ACC
ENDDEF
DEFINE g()
  EXC_ACC
    PRINT "g "
  END_EXC_ACC
ENDDEF
PARA
  f()
  g()
ENDPARA
""", max_runs=100_000)
        assert outs == {"f g", "g f"}

    def test_shared_footprint_excludes(self):
        info = compile_program("""
x = 0
DEFINE f()
  EXC_ACC
    x = x + 1
  END_EXC_ACC
ENDDEF
DEFINE g()
  EXC_ACC
    x = x - 1
  END_EXC_ACC
ENDDEF
""").info
        groups = {b.group for b in info.exc_blocks}
        assert len(groups) == 1
