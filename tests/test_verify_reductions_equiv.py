"""Reduction soundness: `explore(reduce=...)` answers exactly like naive DFS.

The explorer's reductions (sleep-set/DPOR pruning, state-fingerprint
deduplication, parallel subtree partitioning) are only allowed to change
*how much work* finding the behaviour space takes — never the behaviour
space itself.  This module pins that contract down three ways:

1. every kernel program in ``repro.problems`` (and the bug gallery, both
   buggy and fixed variants) is explored naively and under each
   reduction mode, and the terminal sets / deadlock verdicts /
   observation sets must be identical;
2. Hypothesis generates random small emit/lock programs — including
   ABBA lock orders that deadlock — and checks the same equivalence;
3. the advertised speedup is asserted: on the bounded-buffer and
   single-lane-bridge programs the combined reductions execute at least
   5x fewer scheduler decisions than the naive enumeration.

Sizes here are chosen so the *naive* exploration completes within the
run budget; comparing a complete reduced result against a budget-capped
naive one would be vacuous.  The heavier configurations carry the
``slow`` marker and run in the full tier only.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Acquire, Emit, Release, SimLock
from repro.problems.bounded_buffer import buffer_program
from repro.problems.bug_gallery import detect_bug, gallery
from repro.problems.dining_philosophers import philosophers_program
from repro.problems.party_matching import party_program
from repro.problems.readers_writers import rw_program
from repro.problems.single_lane_bridge import bridge_program
from repro.problems.sleeping_barber import barber_program
from repro.problems.sum_workers import sum_program
from repro.verify import REDUCTIONS, explore

MODES = ("sleep", "fingerprint", "all")
TWO_CARS = (("redCarA", "red"), ("blueCarA", "blue"))


def assert_equivalent(program, *, max_runs=500_000, modes=MODES, workers=0):
    """Explore naively and reduced; the answers must coincide exactly."""
    base = explore(program, max_runs=max_runs)
    assert base.complete, "test misconfigured: naive exploration hit budget"
    for mode in modes:
        red = explore(program, max_runs=max_runs, reduce=mode,
                      workers=workers)
        assert red.complete, (mode, red.summary())
        assert red.output_strings() == base.output_strings(), mode
        assert red.deadlock_possible == base.deadlock_possible, mode
        assert set(red.observations()) == set(base.observations()), mode
        # bookkeeping: every run is accounted for in the outcome multiset
        assert red.runs == sum(red.outcomes.values()), mode
    return base


# ---------------------------------------------------------------------------
# 1. the problem suite
# ---------------------------------------------------------------------------

FAST_PROGRAMS = {
    "buffer-minimal": buffer_program(capacity=1, producers=1, consumers=1,
                                     items_each=1),
    "buffer-two-items": buffer_program(capacity=1, producers=1, consumers=1,
                                       items_each=2),
    "philosophers-2": philosophers_program(n=2, meals=1),
    "party-1-1": party_program(boys=1, girls=1),
    "readers-writers": rw_program(readers=1, writers=1, rounds=1),
    "sum-synchronized": sum_program(amounts=(1, 2), synchronized=True),
    "sum-racy": sum_program(amounts=(1, 2), synchronized=False),
    "bridge-2car": bridge_program(cars=TWO_CARS),
}


@pytest.mark.parametrize("name", sorted(FAST_PROGRAMS))
def test_reductions_preserve_answers(name):
    assert_equivalent(FAST_PROGRAMS[name])


# Naive DFS exceeds any practical run budget on these specimens (their
# mailbox interleavings explode combinatorially — >200k runs and still
# incomplete), so the ground-truth equivalence leg is infeasible.  They
# are cross-checked mode-against-mode below instead.
_NAIVE_INFEASIBLE = {"interleave-transaction", "interleave-rmw",
                     "turntaking-pingpong"}


@pytest.mark.parametrize(
    "spec",
    [s for s in gallery() if s.bug_id not in _NAIVE_INFEASIBLE],
    ids=lambda spec: spec.bug_id)
def test_reductions_preserve_gallery_verdicts(spec):
    """The bug-manifestation predicates see the same result either way."""
    for variant in (spec.buggy, spec.fixed):
        base = assert_equivalent(variant)
    red_buggy = explore(spec.buggy, reduce="all")
    red_fixed = explore(spec.fixed, reduce="all")
    assert spec.manifests(red_buggy)
    assert not spec.manifests(red_fixed)


@pytest.mark.parametrize("mode", [
    "fingerprint",
    pytest.param("sleep", marks=pytest.mark.slow),
])
@pytest.mark.parametrize(
    "spec",
    [s for s in gallery() if s.bug_id in _NAIVE_INFEASIBLE],
    ids=lambda spec: spec.bug_id)
def test_reduction_modes_agree_on_heavy_gallery(spec, mode):
    """Where naive DFS cannot finish, the reductions check each other.

    Each reduction prunes along a different axis (persistence vs state
    revisits), so a single mode and the combined ``reduce="all"``
    exploration agreeing on observations, deadlock verdict and the bug
    predicate is strong evidence neither pruned a behaviour away.
    """
    for variant, expect in ((spec.buggy, True), (spec.fixed, False)):
        combined = explore(variant, reduce="all")
        assert combined.complete, combined.summary()
        single = explore(variant, max_runs=500_000, reduce=mode)
        assert single.complete, (mode, single.summary())
        assert single.output_strings() == combined.output_strings(), mode
        assert single.deadlock_possible == combined.deadlock_possible, mode
        assert (set(single.observations())
                == set(combined.observations())), mode
        assert bool(spec.manifests(single)) == expect, mode


# sleep-set pruning alone leaves these specimens with large run counts
# (tens of seconds); their sleep-mode leg runs in the full tier.
_SLEEP_HEAVY = {"interleave-transaction", "interleave-rmw",
                "turntaking-pingpong"}
_DETECT_PARAMS = [
    pytest.param(spec, mode, id=f"{spec.bug_id}-{mode}",
                 marks=([pytest.mark.slow]
                        if mode == "sleep" and spec.bug_id in _SLEEP_HEAVY
                        else []))
    for spec in gallery()
    for mode in ("sleep", "fingerprint")
]


@pytest.mark.parametrize("spec,mode", _DETECT_PARAMS)
def test_reductions_reach_every_monitored_violation(spec, mode):
    """Each reduction alone still visits a schedule where the online
    detectors (race/deadlock/protocol monitors) flag the specimen.

    Reductions prune *equivalent* schedules; the hazard witness lives
    in some equivalence class, so a sound reduction may make the
    detector's job cheaper but never impossible.  The fixed twin must
    stay clean under the same pruned exploration.
    """
    report = detect_bug(spec, reduce=mode)
    assert report["detected"], (mode, report)
    assert report["fixed_clean"], (mode, report)


@pytest.mark.slow
@pytest.mark.parametrize("name,program", [
    ("philosophers-3", philosophers_program(n=3, meals=1)),
    ("barber-1", barber_program(customers=1, chairs=1, barbers=1)),
    ("buffer-2-producers", buffer_program(capacity=2, producers=2,
                                          consumers=1, items_each=1)),
])
def test_reductions_preserve_answers_slow(name, program):
    assert_equivalent(program)


def test_parallel_workers_preserve_answers():
    for program in (bridge_program(cars=TWO_CARS),
                    buffer_program(capacity=1, producers=1, consumers=1,
                                   items_each=1)):
        assert_equivalent(program, modes=((), "all"), workers=2)


# ---------------------------------------------------------------------------
# 2. random programs (Hypothesis)
# ---------------------------------------------------------------------------

def _make_program(tasks):
    """tasks: per task, a list of actions.

    An action is ``("emit", v)`` or ``("locked", order, v)`` — acquire
    two shared locks in the given order, emit inside, release.  Opposite
    orders across tasks can deadlock (the ABBA pattern), so the verdict
    side of the equivalence is exercised too.
    """

    def program(sched):
        locks = (SimLock("A"), SimLock("B"))

        def body(actions):
            for action in actions:
                if action[0] == "emit":
                    yield Emit(action[1])
                else:
                    _, order, v = action
                    first, second = ((0, 1) if order == 0 else (1, 0))
                    yield Acquire(locks[first])
                    yield Acquire(locks[second])
                    yield Emit(v)
                    yield Release(locks[second])
                    yield Release(locks[first])

        for t, actions in enumerate(tasks):
            sched.spawn(body, actions, name=f"t{t}")

    return program


actions = st.one_of(
    st.tuples(st.just("emit"), st.integers(min_value=0, max_value=2)),
    st.tuples(st.just("locked"), st.integers(min_value=0, max_value=1),
              st.integers(min_value=3, max_value=5)),
)
small_tasks = st.lists(st.lists(actions, min_size=1, max_size=2),
                       min_size=2, max_size=2)


class TestRandomProgramEquivalence:
    @given(small_tasks)
    @settings(max_examples=25, deadline=None)
    def test_two_task_programs(self, tasks):
        assert_equivalent(_make_program(tasks), max_runs=100_000)

    @given(st.lists(st.lists(st.integers(min_value=0, max_value=2),
                             min_size=1, max_size=2),
                    min_size=3, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_three_task_emit_programs(self, emits):
        tasks = [[("emit", v) for v in vs] for vs in emits]
        assert_equivalent(_make_program(tasks), max_runs=100_000)


# ---------------------------------------------------------------------------
# 3. the advertised speedup (the ISSUE's acceptance criterion)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name,program", [
    ("bridge", bridge_program(cars=TWO_CARS)),
    ("buffer", buffer_program(capacity=1, producers=1, consumers=1,
                              items_each=2)),
])
def test_reductions_cut_decisions_5x(name, program):
    base = explore(program)
    red = explore(program, reduce="all")
    assert base.complete and red.complete
    assert red.output_strings() == base.output_strings()
    assert red.deadlock_possible == base.deadlock_possible
    assert base.decisions >= 5 * red.decisions, \
        (name, base.decisions, red.decisions)


def test_reduced_explorer_finishes_where_naive_cannot():
    """The paper-scale bridge (2 red + 1 blue): naive DFS blows a
    200k-run budget; the combined reductions finish the whole space."""
    red = explore(bridge_program(), reduce="all")
    assert red.complete
    assert len(red.terminals) == 14
    assert not red.deadlock_possible
    # every terminal is a safe crossing log (audit verdict None)
    assert set(red.observations()) == {(None, 0)}


# ---------------------------------------------------------------------------
# plumbing
# ---------------------------------------------------------------------------

def test_reduce_argument_forms():
    program = FAST_PROGRAMS["buffer-minimal"]
    base = explore(program)
    for form in (True, "all", set(REDUCTIONS), ["sleep"], "fingerprint", ()):
        res = explore(program, reduce=form)
        assert res.output_strings() == base.output_strings()
    with pytest.raises(ValueError):
        explore(program, reduce="frobnicate")


def test_naive_path_is_unchanged_by_default():
    """`reduce=()` must leave the original enumeration byte-identical
    (run counts included) — it is the ground truth everything above is
    measured against."""
    program = FAST_PROGRAMS["buffer-minimal"]
    res = explore(program)
    assert res.pruned_runs == 0
    assert "pruned" not in res.outcomes
