"""Exploration over simulated worlds + the PR-5 mutation fixtures.

The regression pins work mutation-style: each test reverts one review
fix (monkeypatching the method back to its buggy shape), explores the
scenario that exercises it, and asserts the *monitor* reports the
pinned hazard — then asserts the same exploration budget on fixed code
reports nothing.  The assertion is on the monitor, not the fix: if a
future change breaks the detection channel, these fail even though the
fix itself is still in place.
"""

from repro.cluster import delivery
from repro.cluster.node import ClusterNode, PeerState
from repro.obs.protocol import Protocol, ProtocolMonitor
from repro.sim import explore_world, run_world
from repro.sim.scenarios import SCENARIOS, get

EXPLORE_RUNS = 400      # the CI exploration budget per fixture


def explore_kinds(name, max_runs=EXPLORE_RUNS, detectors=None):
    sc = get(name)
    res = explore_world(sc.factory(0), budget=sc.budget,
                        max_runs=max_runs, detectors=detectors)
    return res, sorted({hz.kind for hz in res.hazards})


# ---------------------------------------------------------------------------
# exploration basics
# ---------------------------------------------------------------------------

class TestExploreWorlds:
    def test_explore_is_deterministic(self):
        sc = get("crash_rejoin")
        runs = [explore_world(sc.factory(0), budget=sc.budget,
                              max_runs=150) for _ in range(2)]
        assert runs[0].runs == runs[1].runs
        assert runs[0].decisions == runs[1].decisions
        assert set(runs[0].terminals) == set(runs[1].terminals)
        assert sorted(h.key for h in runs[0].hazards) == \
            sorted(h.key for h in runs[1].hazards)

    def test_fingerprint_reduction_prunes_reconverged_schedules(self):
        sc = get("eviction")
        naive = explore_world(sc.factory(0), budget=sc.budget,
                              max_runs=600, reduce=())
        reduced = explore_world(sc.factory(0), budget=sc.budget,
                                max_runs=600)
        assert naive.pruned_runs == 0
        assert reduced.pruned_runs > 0
        assert reduced.stats.fingerprint_hits > 0
        # pruning must not change what is observable
        assert set(reduced.terminals) == set(naive.terminals)

    def test_crash_and_recover_schedules_are_enumerated(self):
        res, kinds = explore_kinds("crash_rejoin", max_runs=200)
        assert kinds == []
        assert res.runs == 200
        # every terminal's observation shows the crash script completed
        # (crash fired and recovery brought the node back)
        for (_, obs) in res.terminals:
            assert obs[2] == (), obs   # no node left crashed
            ledger = dict((k, (d, dead)) for k, d, dead in obs[1])
            assert ledger["'w3'"][0] >= 1   # post-recovery delivery

    def test_every_pinned_scenario_is_clean_on_fixed_code(self):
        for name, sc in SCENARIOS.items():
            if not sc.pins:
                continue
            _, kinds = explore_kinds(name)
            assert kinds == [], name

    def test_protocol_monitors_ride_along(self):
        """Conformance monitors consume simulated cluster events
        without tripping on virtual time or inline delivery."""
        def detectors():
            spec = Protocol("sim-traffic", "MSG*", parties=("sink",),
                            classify=lambda _r: "MSG")
            return [ProtocolMonitor([spec])]
        res, kinds = explore_kinds("crash_rejoin", max_runs=80,
                                   detectors=detectors)
        assert [k for k in kinds if k.startswith("protocol")] == []


# ---------------------------------------------------------------------------
# the mutation fixtures
# ---------------------------------------------------------------------------

class TestRegressionPins:
    def test_skip_resync_pin(self, monkeypatch):
        """Reverting DedupTable.skip_to stalls the dedup prefix under a
        permanently lost message -> sim-resync-stall."""
        monkeypatch.setattr(delivery.DedupTable, "skip_to",
                            lambda self, seq: None)
        _, kinds = explore_kinds("skip_resync")
        assert "sim-resync-stall" in kinds

    def test_credit_return_pin(self, monkeypatch):
        """Reverting the _abandon credit release leaks window slots on
        retry exhaustion -> sim-credit-leak."""
        def no_release(self, dest, env):
            with self._state_lock:
                if env.seq > self._skip.get(dest, 0):
                    self._skip[dest] = env.seq
            # fix reverted: the TELL's credit is never returned
        monkeypatch.setattr(ClusterNode, "_abandon", no_release)
        _, kinds = explore_kinds("credit_return")
        assert "sim-credit-leak" in kinds

    def test_recovery_remint_pin(self, monkeypatch):
        """Reverting the DOWN->ALIVE gate re-mint leaves broken gates
        rejecting traffic to a peer the detector says is healthy ->
        sim-recovery-loss."""
        def no_remint(self, origin):
            now = self.clock()
            peer = self._peers.get(origin)
            if peer is not None and peer.state == PeerState.ALIVE:
                peer.last_heard = now
                return
            with self._state_lock:
                peer = self._peers.get(origin)
                if peer is None:
                    self._peers[origin] = PeerState(origin, now)
                    return
                peer.last_heard = now
                recovered = peer.state != PeerState.ALIVE
                if recovered:
                    peer.state = PeerState.ALIVE
                # fix reverted: broken credit gates survive recovery
            if recovered:
                self._event("cluster-recover", peer=origin)
        monkeypatch.setattr(ClusterNode, "_heard_from", no_remint)
        _, kinds = explore_kinds("recovery_remint")
        assert "sim-recovery-loss" in kinds

    def test_eviction_pin(self, monkeypatch):
        """Reverting _evict_peer keeps per-peer state for a corpse far
        past the eviction window -> sim-evict-leak."""
        monkeypatch.setattr(ClusterNode, "_evict_peer",
                            lambda self, peer: None)
        _, kinds = explore_kinds("eviction")
        assert "sim-evict-leak" in kinds

    def test_dup_delivery_pin(self, monkeypatch):
        """Reverting DedupTable.fresh delivers every retransmission to
        the actor -> sim-duplicate-delivery."""
        monkeypatch.setattr(delivery.DedupTable, "fresh",
                            lambda self, seq: True)
        _, kinds = explore_kinds("dup_delivery")
        assert "sim-duplicate-delivery" in kinds

    def test_mutations_only_raise_their_own_pin(self, monkeypatch):
        """A mutation must not light up unrelated monitors — the pins
        localize the regression, not just detect 'something broke'."""
        monkeypatch.setattr(delivery.DedupTable, "skip_to",
                            lambda self, seq: None)
        _, kinds = explore_kinds("skip_resync")
        assert kinds == ["sim-resync-stall"]


# ---------------------------------------------------------------------------
# seeded runs find the mutations too (the `repro sim run` path)
# ---------------------------------------------------------------------------

class TestSeededDetection:
    def test_seeded_run_catches_a_mutation_and_replays(self, monkeypatch):
        monkeypatch.setattr(delivery.DedupTable, "skip_to",
                            lambda self, seq: None)
        sc = get("skip_resync")
        hit = None
        for seed in range(30):
            run = run_world(sc.factory(seed), seed=seed,
                            budget=sc.budget)
            if any(hz.kind == "sim-resync-stall" for hz in run.hazards):
                hit = run
                break
        assert hit is not None, "no seed under 30 exposed the mutation"
        replay = run_world(sc.factory(hit.seed), seed=hit.seed,
                           budget=sc.budget)
        assert replay.digest() == hit.digest()
        assert [h.key for h in replay.hazards] == \
            [h.key for h in hit.hazards]

    def test_hazard_step_counts_decisions_not_wall_time(self):
        """Satellite: hazards found in simulation are stamped with the
        schedule position (and the world runs on virtual time), so a
        replay reproduces the stamp exactly."""
        sc = get("eviction")
        import repro.cluster.node as nodemod
        orig = nodemod.ClusterNode._evict_peer
        nodemod.ClusterNode._evict_peer = lambda self, peer: None
        try:
            first = run_world(sc.factory(2), seed=2, budget=sc.budget)
            again = run_world(sc.factory(2), seed=2, budget=sc.budget)
        finally:
            nodemod.ClusterNode._evict_peer = orig
        assert [(h.kind, h.step) for h in first.hazards] == \
            [(h.kind, h.step) for h in again.hazards]
        assert first.hazards, "eviction mutation should flag"
