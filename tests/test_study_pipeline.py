"""The §V study pipeline: questions, cohort, grouping, test, analyses."""

import pytest

from repro.study import (SESSION2_PRACTICE, administer_test1, bridge_effort,
                         cohens_d, difficulty_survey, grade_choice_survey,
                         matched_split, measure, paired_t, problem_effort,
                         question_bank, run_full_study, sample_cohort,
                         section_summary, split_balance, table1, table2,
                         table3, welch_t)


class TestQuestionBank:
    def test_bank_covers_both_sections(self):
        bank = question_bank()
        assert sum(1 for i in bank if i.section == "sm") >= 10
        assert sum(1 for i in bank if i.section == "mp") >= 10

    def test_all_items_ground_truthed(self):
        for item in question_bank():
            assert item.answer in ("YES", "NO")
            assert item.size > 0

    def test_mixed_truth_values(self):
        """A sound exam needs both YES and NO items in each section."""
        bank = question_bank()
        for section in ("sm", "mp"):
            answers = {i.answer for i in bank if i.section == section}
            assert answers == {"YES", "NO"}

    def test_figure6_item_present_and_yes(self):
        item = next(i for i in question_bank() if i.qid == "SM-b")
        assert item.answer == "YES"

    def test_figure7_item_present_and_yes(self):
        item = next(i for i in question_bank() if i.qid == "MP-b")
        assert item.answer == "YES"

    def test_difficulty_spread_for_u1(self):
        """The bank must include items beyond the small-capacity
        threshold so U1 overload has something to bite."""
        sizes = sorted(i.size for i in question_bank())
        assert sizes[0] < 100
        assert sizes[-1] > 1000


class TestCohortAndGrouping:
    def test_cohort_deterministic_by_seed(self):
        a = sample_cohort(16, seed=1)
        b = sample_cohort(16, seed=1)
        assert [m.student.profile for m in a] == \
            [m.student.profile for m in b]

    def test_profiles_track_prevalences(self):
        members = sample_cohort(400, seed=9)
        holders = sum(1 for m in members if "S7" in m.student.profile)
        assert 0.45 < holders / 400 < 0.80   # prevalence 10/16 = 0.625

    def test_matched_split_sizes_and_balance(self):
        members = sample_cohort(16, seed=2013)
        group_s, group_d = matched_split(members, sizes=(9, 7), seed=1)
        assert len(group_s) == 9 and len(group_d) == 7
        assert all(m.group == "S" for m in group_s)
        balance = split_balance(group_s, group_d)
        assert balance["gap"] < 8.0

    def test_matched_beats_random_on_average(self):
        """The ablation claim: matched splits balance priors better
        than random ones (averaged over repetitions)."""
        import random

        def random_gap(seed):
            members = sample_cohort(16, seed=2013)
            rng = random.Random(seed)
            shuffled = list(members)
            rng.shuffle(shuffled)
            a, b = shuffled[:9], shuffled[9:]
            return split_balance(a, b)["gap"]

        def matched_gap(seed):
            members = sample_cohort(16, seed=2013)
            a, b = matched_split(members, sizes=(9, 7), seed=seed)
            return split_balance(a, b)["gap"]
        random_mean = sum(random_gap(s) for s in range(20)) / 20
        matched_mean = sum(matched_gap(s) for s in range(20)) / 20
        assert matched_mean < random_mean

    def test_sizes_must_cover_cohort(self):
        with pytest.raises(ValueError):
            matched_split(sample_cohort(16), sizes=(9, 9))


class TestTest1:
    @pytest.fixture(scope="class")
    def study(self):
        return run_full_study(seed=2013)

    def test_every_student_scored(self, study):
        assert len(study.results) == 16
        for r in study.results:
            assert 0 <= r.sm_score <= 100
            assert 0 <= r.mp_score <= 100

    def test_group_order_assignment(self, study):
        for r in study.results:
            if r.group == "S":
                assert r.sm_session == 1 and r.mp_session == 2
            else:
                assert r.sm_session == 2 and r.mp_session == 1

    def test_paper_pattern_mp_easier_than_sm(self, study):
        all_ = study.summary["all"]
        assert all_["mp_mean"] > all_["sm_mean"]

    def test_paper_pattern_session2_better(self, study):
        all_ = study.summary["all"]
        assert all_["session2_mean"] > all_["session1_mean"]
        assert all_["session_test"].pvalue < 0.05

    def test_paper_pattern_each_group_better_on_second_section(self, study):
        s = study.summary["S"]
        d = study.summary["D"]
        assert s["mp_mean"] > s["sm_mean"]     # S took MP second
        assert d["sm_mean"] > d["mp_mean"]     # D took SM second

    def test_ungrouped_cohort_rejected(self):
        members = sample_cohort(4)
        with pytest.raises(ValueError):
            administer_test1(members)

    def test_misconception_counts_correlate_with_paper(self, study):
        """Spearman-style sanity: frequent paper misconceptions are
        frequent in the reproduction."""
        from scipy import stats
        data = study.table3_data
        measured = [row["measured"] for row in data.values()]
        paper = [row["paper"] for row in data.values()]
        rho = stats.spearmanr(measured, paper).statistic
        assert rho > 0.4

    def test_dominant_misconceptions_dominant(self, study):
        counts = study.misconception_counts()
        sm_counts = {k: v for k, v in counts.items() if k.startswith("S")}
        assert max(sm_counts, key=sm_counts.get) in ("S5", "S7")


class TestStats:
    def test_paired_t_detects_shift(self):
        a = [60, 65, 70, 62, 68] * 3
        b = [x + 10 for x in a]
        result = paired_t(b, a)
        assert result.significant
        assert result.mean_a - result.mean_b == pytest.approx(10)

    def test_paired_t_requires_equal_length(self):
        with pytest.raises(ValueError):
            paired_t([1, 2], [1])

    def test_welch_t_runs(self):
        result = welch_t([1.0, 2.0, 3.0], [10.0, 11.0, 12.0])
        assert result.significant

    def test_cohens_d_zero_for_identical(self):
        assert cohens_d([1, 2, 3], [1, 2, 3]) == 0

    def test_describe_renders(self):
        assert "p=" in welch_t([1, 2, 3], [4, 5, 6]).describe()


class TestSurveysAndTables:
    @pytest.fixture(scope="class")
    def study(self):
        return run_full_study(seed=2013)

    def test_difficulty_survey_sm_harder_majority(self, study):
        report = study.difficulty
        assert report.sm_harder > report.mp_harder

    def test_grade_choice_mostly_accurate(self, study):
        report = study.choice
        assert report.chose_correctly / report.respondents >= 0.75

    def test_table1_rendering(self):
        rows, text = table1()
        assert len(rows) == 6
        assert "TABLE I" in text
        assert "Uncertainty Level" in text

    def test_table2_rendering(self, study):
        _, text = table2(study.results)
        assert "TABLE II" in text
        assert "(1st)" in text and "(2nd)" in text

    def test_table3_rendering(self, study):
        data, text = table3(study.results)
        assert set(data) == {m.mid for m in
                             __import__("repro.misconceptions",
                                        fromlist=["CATALOG"]).CATALOG}
        assert "TABLE III" in text

    def test_full_render(self, study):
        text = study.render()
        for token in ("TABLE I", "TABLE II", "TABLE III", "SURVEYS"):
            assert token in text


class TestEffort:
    def test_bridge_effort_three_models(self):
        rows = bridge_effort()
        assert [r.model for r in rows] == ["threads", "actors", "coroutines"]
        assert all(r.loc > 5 for r in rows)

    def test_actors_trade_locks_for_protocol(self):
        rows = {r.model: r for r in bridge_effort()}
        # actor solutions are the longest (explicit protocol)
        assert rows["actors"].loc > rows["coroutines"].loc

    def test_problem_effort_lookup(self):
        rows = problem_effort("barber")
        assert len(rows) == 3
        with pytest.raises(KeyError):
            problem_effort("halting")

    def test_measure_counts_sync_ops(self):
        def sample():
            import threading
            lock = threading.Lock()
            with lock:
                pass
        metrics = measure(sample, "demo")
        assert metrics.loc >= 4
        assert metrics.describe().startswith("demo")
