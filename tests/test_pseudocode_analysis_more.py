"""Deeper interpreter/analysis behaviour: scoping, control flow,
message matching, error surfaces."""

import pytest

from repro.core import DeadlockError, DeliveryPolicy, RandomPolicy
from repro.pseudocode import (PseudoRuntimeError, compile_program, interpret,
                              possible_outputs)


class TestControlFlow:
    def test_while_loop_counts(self):
        result = interpret("""
n = 0
WHILE n < 5
  n = n + 1
ENDWHILE
PRINT n
""")
        assert result.output_tokens() == ["5"]

    def test_nested_if_in_while(self):
        result = interpret("""
n = 0
odd = 0
WHILE n < 6
  n = n + 1
  IF n % 2 == 1 THEN
    odd = odd + 1
  ENDIF
ENDWHILE
PRINT odd
""")
        assert result.output_tokens() == ["3"]

    def test_and_or_short_circuit(self):
        # right operand would crash if evaluated
        result = interpret("""
safe = False
IF safe AND missing() THEN
  PRINT "bad"
ELSE
  PRINT "ok"
ENDIF
DEFINE missing()
  RETURN unbound_name
ENDDEF
""")
        assert result.output_tokens() == ["ok"]

    def test_not_operator(self):
        assert interpret("PRINT NOT True").output_tokens() == ["False"]

    def test_comparison_chain_via_and(self):
        assert interpret(
            "x = 5\nPRINT x > 1 AND x < 10").output_tokens() == ["True"]

    def test_mod_and_unary_minus(self):
        assert interpret("PRINT -7 % 3").output_tokens() == ["2"]


class TestScoping:
    def test_param_shadows_global(self):
        result = interpret("""
x = 100
DEFINE f(x)
  x = x + 1
  RETURN x
ENDDEF
PRINTLN f(1)
PRINTLN x
""")
        assert result.output_tokens() == ["2", "100"]
        assert result.globals["x"] == 100

    def test_locals_do_not_leak_between_calls(self):
        result = interpret("""
DEFINE f()
  local = 1
  RETURN local
ENDDEF
DEFINE g()
  RETURN probe()
ENDDEF
DEFINE probe()
  RETURN 42
ENDDEF
a = f()
b = g()
PRINT a + b
""")
        assert result.output_tokens() == ["43"]

    def test_recursive_locals_independent(self):
        result = interpret("""
DEFINE count(n)
  mine = n
  IF n > 0 THEN
    ignored = count(n - 1)
  ENDIF
  RETURN mine
ENDDEF
PRINT count(3)
""")
        assert result.output_tokens() == ["3"]


class TestMessageMatching:
    def test_arity_distinguishes_arms(self):
        source = """
CLASS R
  DEFINE loop()
    ON_RECEIVING
      MESSAGE.m(a)
        PRINT "one"
      MESSAGE.m(a, b)
        PRINT "two"
  ENDDEF
ENDCLASS
r = new R()
r.loop()
Send(MESSAGE.m(1, 2)).To(r)
"""
        assert possible_outputs(source) == {"two"}

    def test_unmatched_message_left_pending(self):
        """A message no arm accepts stays in the mailbox; the run still
        quiesces (daemon rule)."""
        source = """
CLASS R
  DEFINE loop()
    ON_RECEIVING
      MESSAGE.known(v)
        PRINT v
  ENDDEF
ENDCLASS
r = new R()
r.loop()
Send(MESSAGE.unknown(1)).To(r)
Send(MESSAGE.known("yes")).To(r)
"""
        assert possible_outputs(source) == {"yes"}

    def test_two_receivers(self):
        source = """
CLASS R
  DEFINE loop()
    ON_RECEIVING
      MESSAGE.m(v)
        PRINT v
  ENDDEF
ENDCLASS
a = new R()
b = new R()
a.loop()
b.loop()
Send(MESSAGE.m("x ")).To(a)
Send(MESSAGE.m("y ")).To(b)
"""
        assert possible_outputs(source) == {"x y", "y x"}

    def test_message_carrying_instance(self):
        """Reply-to pattern: a message carries the requester object."""
        source = """
CLASS Server
  DEFINE loop()
    ON_RECEIVING
      MESSAGE.req(client)
        Send(MESSAGE.resp("pong")).To(client)
  ENDDEF
ENDCLASS
CLASS Client
  DEFINE loop()
    ON_RECEIVING
      MESSAGE.resp(v)
        PRINT v
  ENDDEF
ENDCLASS
s = new Server()
s.loop()
c = new Client()
c.loop()
Send(MESSAGE.req(c)).To(s)
"""
        assert possible_outputs(source) == {"pong"}


class TestRuntimeErrors:
    def test_send_to_non_object(self):
        result = compile_program(
            'Send(MESSAGE.m(1)).To(5)').run(raise_on_failure=False)
        assert result.outcome == "failed"

    def test_send_non_message(self):
        result = compile_program("""
CLASS R
ENDCLASS
r = new R()
Send(42).To(r)
""").run(raise_on_failure=False)
        assert result.outcome == "failed"

    def test_bad_operand_types(self):
        result = compile_program('PRINT "a" - 1').run(
            raise_on_failure=False)
        assert result.outcome == "failed"

    def test_wrong_arity_call(self):
        result = compile_program("""
DEFINE f(a, b)
  RETURN a
ENDDEF
PRINT f(1)
""").run(raise_on_failure=False)
        assert result.outcome == "failed"

    def test_constructor_args_without_init(self):
        result = compile_program("""
CLASS Box
ENDCLASS
b = new Box(1)
""").run(raise_on_failure=False)
        assert result.outcome == "failed"

    def test_missing_field(self):
        result = compile_program("""
CLASS Box
ENDCLASS
b = new Box()
PRINT b.nothing
""").run(raise_on_failure=False)
        assert result.outcome == "failed"


class TestSchedulingSemantics:
    def test_guard_deadlock_detected(self):
        """A WAIT whose condition nobody ever makes true deadlocks."""
        runtime = compile_program("""
flag = 0
DEFINE waiter()
  EXC_ACC
    WHILE flag == 0
      WAIT()
    ENDWHILE
  END_EXC_ACC
ENDDEF
PARA
  waiter()
ENDPARA
""")
        with pytest.raises(DeadlockError):
            runtime.run()

    def test_seeded_runs_reproducible(self):
        runtime = compile_program(
            'PARA\nPRINT "a "\nPRINT "b "\nENDPARA')
        a = runtime.run(RandomPolicy(9)).output_text()
        b = runtime.run(RandomPolicy(9)).output_text()
        assert a == b

    def test_constructor_with_init(self):
        result = interpret("""
CLASS Counter
  DEFINE init(start)
    this.n = start
  ENDDEF
ENDCLASS
c = new Counter(5)
PRINT c.n
""")
        assert result.output_tokens() == ["5"]
