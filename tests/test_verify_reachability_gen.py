"""The generator-engine question API (answer_question over explore),
complementing the LTS engine tests."""

from repro.core import Emit, Mailbox, Receive, Scheduler, Send
from repro.verify import (ScenarioQuestion, answer_question, explore)


def pingpong_program(sched: Scheduler):
    left = Mailbox("left")
    right = Mailbox("right")

    def alice():
        yield Send(right, "serve")
        yield Emit(("alice", "served"))
        reply = yield Receive(left)
        yield Emit(("alice", "got", reply))

    def bob():
        ball = yield Receive(right)
        yield Emit(("bob", "got", ball))
        yield Send(left, "return")
        yield Emit(("bob", "returned"))
    sched.spawn(alice, name="alice")
    sched.spawn(bob, name="bob")


class TestAnswerQuestionGenerator:
    def test_yes_with_witness_schedule(self):
        question = ScenarioQuestion(
            qid="q-yes", text="bob can return before alice logs the serve",
            history=(),
            scenario=(("bob", "returned"), ("alice", "served")))
        answer = answer_question(pingpong_program, question)
        assert answer.verdict == "YES"
        assert answer.witness_schedule is not None
        assert answer.exhaustive

    def test_no_when_exhaustive(self):
        question = ScenarioQuestion(
            qid="q-no", text="alice receives before bob got the ball",
            scenario=(("alice", "got", "return"),),
            forbidden_anywhere=(("bob", "got", "serve"),))
        answer = answer_question(pingpong_program, question)
        assert answer.verdict == "NO"
        assert answer.exhaustive

    def test_unknown_when_budget_too_small(self):
        question = ScenarioQuestion(
            qid="q-unknown", text="",
            scenario=(("nobody", "never"),))
        answer = answer_question(pingpong_program, question, max_runs=2)
        assert answer.verdict == "UNKNOWN"
        assert not answer.exhaustive

    def test_shared_exploration_amortized(self):
        exploration = explore(pingpong_program)
        q1 = ScenarioQuestion(qid="a", text="",
                              scenario=(("alice", "served"),))
        q2 = ScenarioQuestion(qid="b", text="",
                              scenario=(("bob", "returned"),))
        a1 = answer_question(pingpong_program, q1, exploration=exploration)
        a2 = answer_question(pingpong_program, q2, exploration=exploration)
        assert a1.yes and a2.yes
        assert a1.runs == a2.runs == exploration.runs

    def test_explanations_present(self):
        q = ScenarioQuestion(qid="e", text="",
                             scenario=(("alice", "served"),))
        answer = answer_question(pingpong_program, q)
        assert answer.explanation
