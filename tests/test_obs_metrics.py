"""Kernel metrics: units, determinism across runtimes, non-interference."""

import pytest

from repro.actors import Actor, SimActorSystem
from repro.core import RandomPolicy, Scheduler
from repro.coroutines import CoChannel, CoScheduler
from repro.obs import Histogram, KernelMetrics
from repro.problems import kernel_program
from repro.problems.bounded_buffer import buffer_program


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.snapshot() == {"count": 0, "total": 0, "min": None,
                                "max": None, "mean": 0.0,
                                "p50": None, "p95": None, "p99": None}

    def test_record(self):
        h = Histogram()
        for v in (3, 1, 8):
            h.record(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 1
        assert snap["max"] == 8
        assert snap["mean"] == pytest.approx(4.0)
        assert snap["p50"] == 3

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):          # 1..100, recorded out of order
            h.record(101 - v)
        assert h.p50 == 50
        assert h.p95 == 95
        assert h.p99 == 99
        assert h.percentile(100) == 100
        assert h.percentile(1) == 1

    def test_percentiles_interleave_with_records(self):
        h = Histogram()
        h.record(10)
        assert h.p50 == 10               # sorted-cache then invalidated
        h.record(2)
        h.record(4)
        assert h.p50 == 4
        assert h.p99 == 10

    def test_percentile_rejects_out_of_range(self):
        h = Histogram()
        h.record(1)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_merge_equals_union_series(self):
        """a.merge(b) must answer every percentile exactly as if the
        union had been recorded into one histogram — the property the
        telemetry aggregator's sliding-window buckets rest on."""
        left = Histogram.of([5, 1, 9])
        right = Histogram.of([2, 8, 100, 3])
        union = Histogram.of([5, 1, 9, 2, 8, 100, 3])
        merged = left.merge(right)
        assert merged is left                    # in place, chainable
        assert merged.count == union.count
        assert merged.total == union.total
        assert merged.min == union.min and merged.max == union.max
        for p in (1, 25, 50, 75, 95, 99, 100):
            assert merged.percentile(p) == union.percentile(p)
        # other side untouched
        assert right.count == 4 and right.percentile(50) == 3

    def test_merge_empty_cases(self):
        h = Histogram.of([1, 2])
        h.merge(Histogram())                     # no-op
        assert h.count == 2 and h.min == 1
        empty = Histogram()
        empty.merge(Histogram.of([7]))
        assert (empty.count, empty.min, empty.max) == (1, 7, 7)

    def test_merge_after_percentile_queries(self):
        """Percentile queries sort a cached copy; merging afterwards
        must still extend the raw insertion-order series."""
        h = Histogram.of([3, 1])
        assert h.p50 == 1
        h.merge(Histogram.of([2]))
        assert h.p50 == 2
        assert h.samples_since(0) == [3, 1, 2]   # insertion order kept

    def test_samples_since_is_the_delta_cursor(self):
        h = Histogram()
        for v in (4, 6, 5):
            h.record(v)
        seen = h.count
        assert h.samples_since(0) == [4, 6, 5]
        h.record(9)
        h.record(7)
        assert h.samples_since(seen) == [9, 7]
        assert h.samples_since(h.count) == []


class TestKernelMetrics:
    def test_counters_and_gauges(self):
        m = KernelMetrics()
        m.inc("steps")
        m.inc("steps", 2)
        m.gauge_max("depth", 3)
        m.gauge_max("depth", 1)   # monotone: must not shrink
        m.observe("wait", 5)
        m.task_add("t", "steps", 1)
        assert m.get("steps") == 3
        assert m.get("missing") == 0
        snap = m.snapshot()
        assert snap["counters"]["steps"] == 3
        assert snap["gauges"]["depth"] == 3
        assert snap["histograms"]["wait"]["count"] == 1
        assert snap["per_task"]["t"]["steps"] == 1

    def test_format_lists_everything(self):
        m = KernelMetrics()
        m.inc("steps", 7)
        m.observe("lock_wait_ticks", 2)
        m.task_add("worker", "steps", 7)
        text = m.format()
        assert "steps" in text
        assert "lock_wait_ticks" in text
        assert "worker" in text


def _kernel_snapshot(seed):
    """Bounded buffer (monitor/threads model) on the kernel, instrumented."""
    metrics = KernelMetrics()
    sched = Scheduler(RandomPolicy(seed), raise_on_deadlock=False,
                      raise_on_failure=False, metrics=metrics)
    buffer_program()(sched)
    trace = sched.run()
    return trace, metrics.snapshot()


def _actor_snapshot(seed):
    """Actor runtime on the kernel: messages + per-actor stats."""
    class Echo(Actor):
        def receive(self, message, sender):
            pass

    metrics = KernelMetrics()
    sched = Scheduler(RandomPolicy(seed), raise_on_deadlock=False,
                      raise_on_failure=False, metrics=metrics)
    system = SimActorSystem(sched)
    ref = system.spawn(Echo, name="echo")

    def driver():
        for i in range(3):
            yield from system.tell_gen(ref, i)
    sched.spawn(driver, name="driver")
    sched.run()
    return system.stats(), metrics.snapshot()


def _coroutine_snapshot():
    """Cooperative runtime: channel producer/consumer, instrumented."""
    metrics = KernelMetrics()
    sched = CoScheduler(metrics=metrics)
    chan = CoChannel(capacity=1)
    out = []

    def producer():
        for i in range(3):
            yield from chan.put(i)

    def consumer():
        for _ in range(3):
            out.append((yield from chan.get()))

    sched.spawn(producer)
    sched.spawn(consumer)
    sched.run()
    return out, metrics.snapshot()


class TestDeterminism:
    """Same seed ⇒ identical metric snapshots; all quantities are logical."""

    def test_kernel_runtime_deterministic(self):
        (trace_a, snap_a) = _kernel_snapshot(seed=11)
        (trace_b, snap_b) = _kernel_snapshot(seed=11)
        assert trace_a.schedule() == trace_b.schedule()
        assert snap_a == snap_b
        assert snap_a["counters"]["steps"] == len(trace_a.events)

    def test_actor_runtime_deterministic(self):
        stats_a, snap_a = _actor_snapshot(seed=5)
        stats_b, snap_b = _actor_snapshot(seed=5)
        assert stats_a == stats_b
        assert snap_a == snap_b
        assert snap_a["counters"]["messages_sent"] == 3
        assert stats_a["echo"]["processed"] == 3

    def test_coroutine_runtime_deterministic(self):
        out_a, snap_a = _coroutine_snapshot()
        out_b, snap_b = _coroutine_snapshot()
        assert out_a == out_b == [0, 1, 2]
        assert snap_a == snap_b
        assert snap_a["counters"]["parks"] >= 1

    def test_different_seeds_still_internally_consistent(self):
        _, snap = _kernel_snapshot(seed=3)
        c = snap["counters"]
        assert c["lock_acquires"] == c["lock.buffer.acquires"]
        assert c["tasks_spawned"] == c["tasks_finished"]


class TestNonInterference:
    """Attaching metrics must not change what the scheduler does."""

    @pytest.mark.parametrize("name", ["bounded_buffer", "pingpong",
                                      "bridge_2car"])
    def test_schedule_unchanged_by_metrics(self, name):
        def run(metrics):
            sched = Scheduler(RandomPolicy(42), raise_on_deadlock=False,
                              raise_on_failure=False, metrics=metrics)
            kernel_program(name)(sched)
            return sched.run()

        bare = run(None)
        instrumented = run(KernelMetrics())
        assert bare.schedule() == instrumented.schedule()
        assert bare.outcome == instrumented.outcome
        assert bare.output == instrumented.output

    def test_message_latency_recorded(self):
        metrics = KernelMetrics()
        sched = Scheduler(RandomPolicy(1), raise_on_deadlock=False,
                          raise_on_failure=False, metrics=metrics)
        kernel_program("pingpong")(sched)
        sched.run()
        snap = metrics.snapshot()
        assert snap["counters"]["messages_sent"] == 4
        assert snap["counters"]["messages_delivered"] == 4
        assert snap["histograms"]["message_latency_ticks"]["count"] == 4
