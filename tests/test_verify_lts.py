"""Explicit-state model checker: BFS, invariants, question products."""

from repro.verify import (LTS, Rule, ScenarioQuestion, answer_question_lts,
                          embeds, matches)


def counter_lts(limit=3, steps=2):
    """Two processes incrementing a shared counter up to `limit`."""
    def inc_rule(pid):
        return Rule(
            name=f"p{pid}.inc",
            guard=lambda s, pid=pid: s[pid] < steps and s[2] < limit,
            apply=lambda s, pid=pid: tuple(
                v + 1 if i in (pid, 2) else v for i, v in enumerate(s)),
            event=lambda s, pid=pid: ("inc", pid, s[2] + 1),
        )
    return LTS((0, 0, 0), [inc_rule(0), inc_rule(1)],
               is_final=lambda s: s[0] == steps and s[1] == steps,
               name="counter")


class TestExplore:
    def test_counts_reachable_states(self):
        lts = counter_lts(limit=4, steps=2)
        result = lts.explore()
        assert result.states == 9     # (0..2) x (0..2), total = p0+p1
        assert not result.deadlocks
        assert result.final_states

    def test_deadlock_vs_final_distinction(self):
        # limit 3 < 4 total increments: some runs stall at the limit
        lts = counter_lts(limit=3, steps=2)
        result = lts.explore()
        assert result.deadlocks
        trace = lts.deadlock_trace()
        assert trace is not None
        assert len(trace) == 3        # three increments then stuck

    def test_truncation_flag(self):
        lts = counter_lts(limit=4, steps=2)
        result = lts.explore(max_states=2)
        assert result.truncated


class TestFindPath:
    def test_shortest_path_found(self):
        lts = counter_lts(limit=4, steps=2)
        path = lts.find_path(lambda s: s[2] == 2)
        assert path is not None
        assert len(path) == 2

    def test_initial_state_accepting(self):
        lts = counter_lts()
        assert lts.find_path(lambda s: s[2] == 0) == []

    def test_unreachable_returns_none(self):
        lts = counter_lts(limit=4, steps=2)
        assert lts.find_path(lambda s: s[2] == 99) is None

    def test_invariant_counterexample(self):
        lts = counter_lts(limit=4, steps=2)
        cx = lts.check_invariant(lambda s: s[2] < 2)
        assert cx is not None
        assert lts.check_invariant(lambda s: s[2] <= 4) is None


class TestMatches:
    def test_literal_equality(self):
        assert matches(("a", 1), ("a", 1))
        assert not matches(("a", 1), ("a", 2))

    def test_whole_pattern_callable(self):
        assert matches(lambda e: e[0] == "a", ("a", 1))

    def test_elementwise_predicate(self):
        pattern = ("inc", 0, lambda n: n >= 2)
        assert matches(pattern, ("inc", 0, 3))
        assert not matches(pattern, ("inc", 0, 1))

    def test_length_mismatch(self):
        assert not matches(("a",), ("a", 1))

    def test_nested_tuples(self):
        assert matches(("recv", ("ok", 2)), ("recv", ("ok", 2)))
        assert not matches(("recv", ("ok", 2)), ("recv", ("ok", 3)))


class TestEmbeds:
    def test_simple_subsequence(self):
        log = ["a", "b", "c", "d"]
        assert embeds(log, ["a"], ["c"])
        assert not embeds(log, ["c"], ["a"])

    def test_forbidden_in_scenario_window(self):
        log = ["h", "bad", "s"]
        assert not embeds(log, ["h"], ["s"], forbidden=["bad"])
        assert embeds(["bad", "h", "s"], ["h"], ["s"], forbidden=["bad"])

    def test_forbidden_anywhere(self):
        assert not embeds(["bad", "h", "s"], ["h"], ["s"],
                          forbidden_anywhere=["bad"])

    def test_backtracking_finds_later_embedding(self):
        # matching the first "x" for history would make scenario fail;
        # the matcher must consider the second occurrence
        log = ["x", "stop", "x", "go"]
        assert embeds(log, ["x"], ["go"], forbidden=["stop"])


class TestQuestionProduct:
    def test_reachable_scenario_yes_with_witness(self):
        lts = counter_lts(limit=4, steps=2)
        q = ScenarioQuestion(
            qid="q1", text="",
            history=(("inc", 0, 1),),
            scenario=(("inc", 1, lambda n: n >= 3),))
        answer = answer_question_lts(lts, q)
        assert answer.yes
        events = [step.event for step in answer.witness]
        assert ("inc", 0, 1) in events

    def test_unreachable_scenario_no(self):
        lts = counter_lts(limit=2, steps=2)
        q = ScenarioQuestion(
            qid="q2", text="",
            scenario=(("inc", 0, 3),))
        assert answer_question_lts(lts, q).verdict == "NO"

    def test_forbidden_anywhere_constrains(self):
        lts = counter_lts(limit=4, steps=2)
        # p1 reaches total 2 while p0 never increments: possible
        q = ScenarioQuestion(
            qid="q3", text="",
            scenario=(("inc", 1, 2),),
            forbidden_anywhere=(("inc", 0, lambda n: True),))
        assert answer_question_lts(lts, q).yes
        # ... but total 3 without p0 is impossible (p1 caps at 2 steps)
        q4 = ScenarioQuestion(
            qid="q4", text="",
            scenario=(("inc", 1, 3),),
            forbidden_anywhere=(("inc", 0, lambda n: True),))
        assert answer_question_lts(lts, q4).verdict == "NO"

    def test_empty_question_trivially_yes(self):
        lts = counter_lts()
        q = ScenarioQuestion(qid="empty", text="")
        assert answer_question_lts(lts, q).yes

    def test_match_skipping_explored(self):
        """An event matching the current pattern may be skipped when a
        later occurrence is needed for the full embedding."""
        lts = counter_lts(limit=4, steps=2)
        # history: some inc of p0; scenario: p0's inc at total >= 2.
        # if the matcher greedily consumed p0's first inc as history it
        # could still match p0's second inc for the scenario — but with
        # scenario requiring p0's *first* total position, skipping is
        # required: history (inc p0 any) then scenario (inc p0 value 1)
        # can only embed if history matched a later inc... which doesn't
        # exist for value 1, so the answer must be NO, found without
        # false positives from forced advancement.
        q = ScenarioQuestion(
            qid="skip", text="",
            history=(("inc", 0, lambda n: True),),
            scenario=(("inc", 0, 1),))
        assert answer_question_lts(lts, q).verdict == "NO"
