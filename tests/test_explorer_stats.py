"""ExplorationStats: prune counters, progress callbacks, parallel split."""

from repro.core import Emit
from repro.problems import kernel_program
from repro.verify.explorer import ExplorationStats, explore


def tiny_program(sched):
    def t(c):
        yield Emit(c)
    sched.spawn(t, "a")
    sched.spawn(t, "b")


class TestStatsCounters:
    def test_naive_exploration_counts_work(self):
        result = explore(tiny_program)
        s = result.stats
        assert s.runs == result.runs
        assert s.decisions == result.decisions
        assert s.max_frontier_depth == 4   # 2 tasks × (emit + return)
        assert s.sleep_prunes == 0
        assert s.fingerprint_hits == 0
        assert s.elapsed_seconds > 0
        assert s.decisions_per_sec > 0

    def test_reduced_bridge_reports_prunes(self):
        """Acceptance: sleep+fingerprint on the 2-car bridge prunes."""
        result = explore(kernel_program("bridge_2car"),
                         reduce="sleep+fingerprint")
        assert result.complete
        assert result.stats.sleep_prunes > 0
        assert result.stats.fingerprint_hits > 0
        assert result.stats.fingerprint_states > 0
        assert result.stats.fingerprint_hits >= result.pruned_runs

    def test_plus_spelling_equals_all(self):
        combined = explore(kernel_program("bridge_2car"),
                           reduce="sleep+fingerprint")
        all_ = explore(kernel_program("bridge_2car"), reduce="all")
        assert combined.runs == all_.runs
        assert combined.output_strings() == all_.output_strings()

    def test_reductions_preserve_terminals(self):
        naive = explore(kernel_program("bridge_2car"))
        reduced = explore(kernel_program("bridge_2car"),
                          reduce="sleep+fingerprint")
        assert reduced.output_strings() == naive.output_strings()
        assert reduced.decisions < naive.decisions

    def test_as_dict_is_json_shaped(self):
        import json
        result = explore(tiny_program, reduce=True)
        d = result.stats.as_dict()
        json.dumps(d)
        assert set(d) == {"runs", "decisions", "sleep_prunes",
                          "fingerprint_hits", "fingerprint_states",
                          "max_frontier_depth", "elapsed_seconds",
                          "decisions_per_sec", "workers"}


class TestProgress:
    def test_callback_sees_growing_counters(self):
        seen = []
        explore(kernel_program("bounded_buffer"), max_runs=50,
                progress=lambda s: seen.append((s.runs, s.decisions)),
                progress_every=10)
        assert len(seen) == 5
        assert seen == sorted(seen)
        assert all(runs % 10 == 0 for runs, _ in seen)

    def test_callback_on_reduced_exploration(self):
        seen = []
        explore(kernel_program("bridge_2car"), reduce=True,
                progress=lambda s: seen.append(s.runs), progress_every=5)
        assert seen, "reduced exploration must still report progress"


class TestParallelAndMerge:
    def test_parallel_fills_worker_split(self):
        result = explore(kernel_program("bridge_2car"), reduce=True,
                         workers=2)
        # fork may be unavailable; only assert the split when it ran
        if result.stats.workers:
            assert sum(w["runs"] for w in result.stats.workers) \
                == result.runs
            assert all({"subtree", "runs", "decisions"} <= set(w)
                       for w in result.stats.workers)

    def test_fold_accumulates(self):
        a = ExplorationStats(runs=2, decisions=10, sleep_prunes=1,
                             max_frontier_depth=4)
        b = ExplorationStats(runs=3, decisions=7, fingerprint_hits=2,
                             max_frontier_depth=9)
        a.fold(b)
        assert a.runs == 5
        assert a.decisions == 17
        assert a.sleep_prunes == 1
        assert a.fingerprint_hits == 2
        assert a.max_frontier_depth == 9


class TestClockInjection:
    def test_fake_clock_makes_wall_stats_deterministic(self):
        from repro.obs import FakeClock

        clock = FakeClock(step=0.5)
        result = explore(kernel_program("pingpong"), max_runs=100,
                         reduce=True, clock=clock)
        # explore() brackets the search with exactly two clock reads
        assert clock.calls == 2
        assert result.stats.elapsed_seconds == 0.5
        assert result.stats.decisions_per_sec == result.decisions / 0.5

    def test_default_clock_still_measures_wall_time(self):
        result = explore(kernel_program("pingpong"), max_runs=100,
                         reduce=True)
        assert result.stats.elapsed_seconds > 0
