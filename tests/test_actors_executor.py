"""Work-stealing dispatcher acceptance suite.

The executor replaced the ThreadPool behind :class:`ActorSystem`; these
tests pin the semantics the swap must preserve — per-actor FIFO under
stealing, supervision across batch boundaries, drain() quiescence with
continuous re-tells, and the stop/shutdown races that used to strand a
stale ``scheduled`` flag — plus the executor's own contract (LIFO local
submit, fair requeue, rejection after shutdown, stats counters).
"""

import threading
import time
import tracemalloc

import pytest

from repro.actors import Actor, ActorSystem, SupervisionDirective
from repro.actors.executor import WorkStealingExecutor
from repro.obs import Profiler


# ---------------------------------------------------------------------------
# the executor on its own
# ---------------------------------------------------------------------------

class TestWorkStealingExecutor:
    def test_runs_submitted_tasks(self):
        hits = []
        with WorkStealingExecutor(workers=2) as ex:
            for i in range(100):
                ex.submit(lambda i=i: hits.append(i))
            deadline = time.monotonic() + 10
            while len(hits) < 100 and time.monotonic() < deadline:
                time.sleep(0.001)
        assert sorted(hits) == list(range(100))

    def test_worker_local_submit_keeps_chain_on_one_thread(self):
        """A request/reply-style chain (each task submits the next from
        inside a worker) runs overwhelmingly on a single thread via the
        LIFO local path — stealing may migrate it occasionally, but the
        common case is zero handoffs."""
        hops = []
        done = threading.Event()
        n = 400
        with WorkStealingExecutor(workers=4) as ex:
            def hop(k):
                hops.append(threading.current_thread().name)
                if k > 0:
                    ex.submit(lambda: hop(k - 1))    # worker-local LIFO
                else:
                    done.set()
            ex.submit(lambda: hop(n), affinity=7)
            assert done.wait(timeout=10)
            stats = ex.stats
        dominant = max(hops.count(name) for name in set(hops))
        assert dominant >= n * 0.9       # at most a few steals
        assert stats["local_hits"] >= n * 0.9

    def test_stealing_balances_one_hot_producer(self):
        """Tasks all submitted to one worker's deque get stolen by the
        others instead of running serially."""
        seen = set()
        gate = threading.Event()
        n = 32

        def task():
            seen.add(threading.current_thread().name)
            gate.wait(2)        # hold the worker so others must steal

        with WorkStealingExecutor(workers=4) as ex:
            for _ in range(n):
                ex.submit(task, affinity=0)     # all on worker 0
            deadline = time.monotonic() + 5
            while len(seen) < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
            gate.set()
            deadline = time.monotonic() + 10
            while ex.stats["executed"] < n and time.monotonic() < deadline:
                time.sleep(0.005)
            stats = ex.stats
        assert len(seen) >= 2           # work migrated off the hot deque
        assert stats["steals"] >= 1
        assert stats["executed"] == n

    def test_submit_after_shutdown_returns_false(self):
        ex = WorkStealingExecutor(workers=1)
        ex.shutdown(wait=True)
        assert ex.submit(lambda: None) is False

    def test_idle_and_stats(self):
        with WorkStealingExecutor(workers=2) as ex:
            release = threading.Event()
            started = threading.Event()

            def block():
                started.set()
                release.wait(5)

            ex.submit(block)
            assert started.wait(timeout=5)
            assert not ex.idle()          # one task mid-flight
            release.set()
            deadline = time.monotonic() + 5
            while not ex.idle() and time.monotonic() < deadline:
                time.sleep(0.001)
            assert ex.idle()
            stats = ex.stats
            assert stats["workers"] == 2
            assert stats["executed"] == 1
            assert stats["queued"] == 0

    def test_worker_survives_raising_task(self):
        hits = []
        with WorkStealingExecutor(workers=1) as ex:
            ex.submit(lambda: 1 / 0)
            ex.submit(lambda: hits.append("alive"))
            deadline = time.monotonic() + 5
            while not hits and time.monotonic() < deadline:
                time.sleep(0.001)
        assert hits == ["alive"]

    def test_profiler_counts_steals_and_parks(self):
        prof = Profiler()
        gate = threading.Event()
        with WorkStealingExecutor(workers=2, profiler=prof) as ex:
            for _ in range(16):
                ex.submit(gate.wait, affinity=0)
            time.sleep(0.05)
            gate.set()
            deadline = time.monotonic() + 5
            while ex.stats["executed"] < 16 \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
        # parks are guaranteed (workers started idle); steals happen
        # once worker 1 finds worker 0's backlog
        assert prof.get("executor.parks") >= 1
        assert prof.get("executor.steals") == ex.stats["steals"]


# ---------------------------------------------------------------------------
# dispatch semantics through the ActorSystem
# ---------------------------------------------------------------------------

class Collector(Actor):
    def __init__(self, sink, signal=None, expect=None):
        super().__init__()
        self.sink = sink
        self.signal = signal
        self.expect = expect

    def receive(self, message, sender):
        self.sink.append(message)
        if self.signal and self.expect and len(self.sink) >= self.expect:
            self.signal.set()


class TestOrderingUnderStealing:
    def test_per_actor_fifo_with_many_actors_and_workers(self):
        """N actors × M messages on 4 workers: heavy steal traffic, yet
        every actor sees its own messages in send order."""
        n_actors, m = 16, 200
        sinks = [[] for _ in range(n_actors)]
        with ActorSystem(workers=4, throughput=8) as system:
            refs = [system.spawn(Collector, sinks[i], name=f"c{i}")
                    for i in range(n_actors)]
            for j in range(m):
                for ref in refs:
                    ref.tell(j)
            assert system.drain(timeout=60)
            stats = system.executor_stats()
        for sink in sinks:
            assert sink == list(range(m))
        assert stats["executed"] >= n_actors    # sanity: it did dispatch

    def test_fifo_per_producer_with_concurrent_producers(self):
        """Messages from each producer thread arrive in that producer's
        send order (the per-sender FIFO guarantee)."""
        sink = []
        producers, per = 4, 300
        with ActorSystem(workers=4) as system:
            ref = system.spawn(Collector, sink)

            def produce(tag):
                for j in range(per):
                    ref.tell((tag, j))

            threads = [threading.Thread(target=produce, args=(t,))
                       for t in range(producers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert system.drain(timeout=60)
        assert len(sink) == producers * per
        for tag in range(producers):
            seq = [j for (t, j) in sink if t == tag]
            assert seq == list(range(per))


class TestSupervisionAcrossBatches:
    class Fragile(Actor):
        def __init__(self, sink):
            super().__init__()
            self.sink = sink

        def receive(self, message, sender):
            if message == "boom":
                raise RuntimeError("crash")
            self.sink.append(message)

    def test_restart_mid_batch_keeps_draining(self):
        """Failures inside a drained batch hit _on_failure and the rest
        of the batch (and mailbox) still processes — across workers and
        steals."""
        sink = []
        with ActorSystem(workers=4, throughput=4,
                         directive=SupervisionDirective.RESTART) as system:
            ref = system.spawn(self.Fragile, sink)
            msgs = []
            for i in range(100):
                msgs.append(i)
                ref.tell(i)
                if i % 10 == 5:
                    ref.tell("boom")
            assert system.drain(timeout=30)
            assert len(system.failures()) == 10
        assert sink == msgs

    def test_stop_directive_mid_batch_dead_letters_remainder(self):
        """A STOP directive firing inside a batch must dead-letter the
        batch's tail exactly like queued mail — nothing vanishes."""
        sink = []
        with ActorSystem(workers=1, throughput=64,
                         directive=SupervisionDirective.STOP) as system:
            ref = system.spawn(self.Fragile, sink)
            # one big burst so crash + tail share a single batch
            for msg in ["a", "b", "boom", "c", "d", "e"]:
                ref.tell(msg)
            assert system.drain(timeout=10)
            dead = [dl.message for dl in system.dead_letters]
        assert sink == ["a", "b"]
        assert set(dead) == {"c", "d", "e"}

    def test_resume_style_restart_preserves_state_object(self):
        """RESTART calls pre_restart but keeps the same instance (this
        runtime restarts behaviour, not allocation) — state survives."""
        events = []

        class Counting(Actor):
            def __init__(self):
                super().__init__()
                self.n = 0

            def receive(self, message, sender):
                self.n += 1
                if message == "boom":
                    raise ValueError("nope")
                events.append(self.n)

            def pre_restart(self, error, message):
                events.append(("restart", str(error)))

        with ActorSystem(workers=2) as system:
            ref = system.spawn(Counting)
            ref.tell("ok")
            ref.tell("boom")
            ref.tell("ok")
            assert system.drain(timeout=10)
        assert events == [1, ("restart", "nope"), 3]


class TestQuiescence:
    def test_drain_waits_out_continuous_retells(self):
        """An actor chain that keeps re-telling itself: drain() must not
        report quiet until the chain actually dies out."""
        done = []

        class Countdown(Actor):
            def receive(self, message, sender):
                if message > 0:
                    self.context.self_ref.tell(message - 1)
                else:
                    done.append(True)

        with ActorSystem(workers=4) as system:
            refs = [system.spawn(Countdown) for _ in range(8)]
            for ref in refs:
                ref.tell(500)
            assert system.drain(timeout=60)
            # quiet means *every* chain finished, not just mailbox gaps
            assert len(done) == 8
            assert system.executor_stats()["queued"] == 0

    def test_drain_times_out_while_work_remains(self):
        gate = threading.Event()

        class Blocker(Actor):
            def receive(self, message, sender):
                gate.wait(10)

        with ActorSystem(workers=1) as system:
            ref = system.spawn(Blocker)
            ref.tell("x")
            ref.tell("y")
            assert system.drain(timeout=0.2) is False
            gate.set()
            assert system.drain(timeout=10)


class TestStopAndShutdownRaces:
    def test_tell_racing_stop_is_processed_or_dead_lettered(self):
        """Regression for the stale-scheduled-flag drop: a message told
        concurrently with stop() must end up processed or in dead
        letters — never silently gone."""
        for _ in range(20):                      # the race needs reps
            sink = []
            with ActorSystem(workers=2) as system:
                ref = system.spawn(Collector, sink)
                barrier = threading.Barrier(2)
                sent = 50

                def teller():
                    barrier.wait()
                    for i in range(sent):
                        ref.tell(i)

                def stopper():
                    barrier.wait()
                    system.stop(ref)

                t1 = threading.Thread(target=teller)
                t2 = threading.Thread(target=stopper)
                t1.start(); t2.start()
                t1.join(); t2.join()
                assert system.drain(timeout=10)
                dead = [dl.message for dl in system.dead_letters
                        if dl.message != "stop"]
            accounted = len(sink) + len(dead)
            assert accounted == sent, (sink, dead)

    def test_tell_after_shutdown_dead_letters_instead_of_raising(self):
        """The old ThreadPool raised RuntimeError from tell() once shut
        down, leaving the scheduled flag stale; the executor path must
        dead-letter instead."""
        sink = []
        system = ActorSystem(workers=1)
        ref = system.spawn(Collector, sink)
        ref.tell("delivered")
        system.drain(timeout=10)
        system.shutdown()
        ref.tell("too late")                     # must not raise
        assert sink == ["delivered"]
        assert any(dl.message == "too late" for dl in system.dead_letters)

    def test_shutdown_is_idempotent_and_quiesces(self):
        system = ActorSystem(workers=2)
        sink = []
        ref = system.spawn(Collector, sink)
        for i in range(20):
            ref.tell(i)
        system.shutdown()
        system.shutdown()
        assert sink == list(range(20))


# ---------------------------------------------------------------------------
# profiler integration on the new dispatch path
# ---------------------------------------------------------------------------

class TestDispatchProfiling:
    def test_processed_counts_backlog_enqueued_before_profiler_attach(self):
        """The mailbox.processed fix: messages enqueued while no
        profiler was attached have no latency timestamp but must still
        be counted once one is attached mid-run."""
        gate = threading.Event()
        first = threading.Event()
        sink = []

        class Slow(Actor):
            def receive(self, message, sender):
                first.set()
                gate.wait(10)
                sink.append(message)

        system = ActorSystem(workers=1, throughput=1)
        try:
            ref = system.spawn(Slow)
            ref.tell(0)                          # occupies the worker
            assert first.wait(timeout=5)
            for i in range(1, 6):                # backlog, no profiler
                ref.tell(i)
            prof = Profiler()
            system.profiler = prof               # attach mid-run
            gate.set()
            assert system.drain(timeout=10)
            assert len(sink) == 6
            # all 5 backlog messages counted despite empty enq_times
            assert prof.get("mailbox.processed") >= 5
        finally:
            system.shutdown()

    def test_batch_size_and_latency_observed(self):
        prof = Profiler()
        sink, done = [], threading.Event()

        class Staller(Actor):
            def receive(self, message, sender):
                if not sink:
                    time.sleep(0.02)     # let a backlog build once
                sink.append(message)
                if len(sink) >= 64:
                    done.set()

        with ActorSystem(workers=1, throughput=16,
                         profiler=prof) as system:
            ref = system.spawn(Staller)
            for i in range(64):
                ref.tell(i)
            assert done.wait(timeout=10)
            assert system.drain(timeout=10)
        snap = prof.snapshot()
        assert snap["counters"]["mailbox.enqueued"] >= 64
        assert snap["histograms"]["mailbox.batch_size"]["count"] >= 1
        assert snap["histograms"]["mailbox.batch_size"]["max"] >= 2
        assert snap["histograms"]["mailbox.latency_us"]["count"] >= 64

    def test_disabled_profiling_adds_zero_obs_allocations_on_tell(self):
        """With profiler=None the tell→process hot path touches nothing
        in repro/obs — the opt-in is one ``is None`` test per hop."""
        sink = []
        with ActorSystem(workers=2) as system:
            ref = system.spawn(Collector, sink)
            for i in range(50):                  # warm lazy caches
                ref.tell(i)
            system.drain(timeout=10)
            tracemalloc.start()
            before = tracemalloc.take_snapshot()
            for i in range(500):
                ref.tell(i)
            system.drain(timeout=10)
            after = tracemalloc.take_snapshot()
            tracemalloc.stop()
        grew = [s for s in after.compare_to(before, "filename")
                if s.size_diff > 0 and s.count_diff >= 10
                and "repro/obs" in s.traceback[0].filename]
        assert not grew, [str(s) for s in grew]
