"""Cluster acceptance suite on the in-process loopback transport.

Every distributed behavior the cluster promises, exercised without a
single socket: the :class:`LoopbackHub` delivers frames synchronously
and injects faults (drop/dup/partition/cut) on demand, and nodes run
with ``timer=False`` plus a hand-cranked clock so retry timeouts,
suspect windows, and down declarations fire exactly when the test says
so — the suite is deterministic and belongs to tier 1.
"""

import threading
import time

import pytest

from repro.actors import Actor, SupervisionDirective
from repro.cluster import (
    ActorSignal,
    ClusterConfig,
    ClusterNode,
    LoopbackHub,
    PeerState,
    register_actor_type,
)


class Recorder(Actor):
    def __init__(self):
        super().__init__()
        self.got = []

    def receive(self, msg, sender):
        self.got.append(msg)


class Replier(Actor):
    def receive(self, msg, sender):
        if sender is not None:
            sender.tell(["echo", msg])


class Faulty(Actor):
    def receive(self, msg, sender):
        raise RuntimeError(f"cannot handle {msg!r}")


register_actor_type("test-recorder", Recorder)
register_actor_type("test-faulty", Faulty)


def _actor(ref):
    """The live instance behind a local ref (test-only peek)."""
    return ref._cell.actor


def _settle(*nodes, rounds=20):
    """Let synchronous loopback deliveries and executors quiesce."""
    for _ in range(rounds):
        for n in nodes:
            n.pump()
        time.sleep(0.005)


@pytest.fixture()
def pair():
    """Two connected loopback nodes with a crankable shared clock."""
    clock = [1000.0]
    hub = LoopbackHub()
    cfg = ClusterConfig(mailbox_bound=4, credit_window=8,
                        retry_timeout=0.5, max_attempts=3,
                        heartbeat_interval=0.5, suspect_after=1.5,
                        down_after=4.0, tick_interval=1e9, ack_every=2)
    a = ClusterNode("a", hub.join("a"), config=cfg, timer=False,
                    clock=lambda: clock[0])
    b = ClusterNode("b", hub.join("b"), config=cfg, timer=False,
                    clock=lambda: clock[0])
    a.connect("b")
    b.connect("a")
    yield hub, a, b, clock
    a.close()
    b.close()


def _advance(node, clock, dt):
    clock[0] += dt
    node.tick()


# ---------------------------------------------------------------------------
# basic delivery + location transparency
# ---------------------------------------------------------------------------

def test_remote_tell_delivers(pair):
    hub, a, b, clock = pair
    sink = b.spawn(Recorder, name="sink")
    a.ref("b/sink").tell(["hello", 1])
    assert b.drain(timeout=5)
    assert _actor(sink).got == [["hello", 1]]
    assert sum(hub.delivered.values()) > 0


def test_reply_via_remote_sender_ref(pair):
    hub, a, b, clock = pair
    b.spawn(Replier, name="rep")
    sink = a.spawn(Recorder, name="sink")
    a.ref("b/rep").tell("hi", sender=sink)
    _settle(a, b)
    assert a.drain(timeout=5) and b.drain(timeout=5)
    assert _actor(sink).got == [["echo", "hi"]]


def test_tell_to_missing_actor_dead_letters_on_receiver(pair):
    hub, a, b, clock = pair
    a.ref("b/nobody").tell("lost")
    _settle(a, b)
    assert any("nobody" in d.target for d in b.dead_letters())


def test_spawn_remote_and_status(pair):
    hub, a, b, clock = pair
    ref = a.spawn_remote("b", "test-recorder", "r1")
    assert ref.path == "b/r1"
    ref.tell("x")
    assert b.drain(timeout=5)
    status = a.status_of("b")
    assert status["node"] == "b"
    assert "r1" in status["actors"]
    assert status["peers"]["a"] == PeerState.ALIVE


# ---------------------------------------------------------------------------
# at-least-once wire + exactly-once actor delivery
# ---------------------------------------------------------------------------

def test_dropped_frame_is_retried_until_delivered(pair):
    hub, a, b, clock = pair
    sink = b.spawn(Recorder, name="sink")
    hub.drop("a", "b", count=1)
    a.ref("b/sink").tell(["once", 1])
    _settle(a, b)
    assert _actor(sink).got == []          # first copy was eaten
    _advance(a, clock, 0.6)                # past retry_timeout: resend
    _settle(a, b)
    assert b.drain(timeout=5)
    assert _actor(sink).got == [["once", 1]]


def test_duplicated_frame_is_deduplicated(pair):
    hub, a, b, clock = pair
    sink = b.spawn(Recorder, name="sink")
    hub.dup("a", "b", count=1)             # wire delivers two copies
    a.ref("b/sink").tell(["dup", 1])
    _settle(a, b)
    assert b.drain(timeout=5)
    assert _actor(sink).got == [["dup", 1]]


def test_retry_then_late_original_still_exactly_once(pair):
    """Retransmit + the retry's own dup: three wire copies, one
    delivery."""
    hub, a, b, clock = pair
    sink = b.spawn(Recorder, name="sink")
    hub.drop("a", "b", count=1)
    a.ref("b/sink").tell(["x", 1])
    hub.dup("a", "b", count=1)
    _advance(a, clock, 0.6)
    _settle(a, b)
    assert b.drain(timeout=5)
    assert _actor(sink).got == [["x", 1]]


def test_exhausted_retries_escalate_to_dead_letters(pair):
    hub, a, b, clock = pair
    b.spawn(Recorder, name="sink")
    hub.partition("a", "b")
    a.ref("b/sink").tell("doomed")
    # burn through every attempt (max_attempts=3, exponential backoff:
    # 0.5 + 1.0 + 2.0 s before expiry), keeping the detector quiet so
    # expiry — not node death — is what dead-letters the message
    for _ in range(8):
        _advance(a, clock, 0.7)
        a._heard_from("b")
    assert any("doomed" == d.message for d in a.dead_letters())


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------

def test_saturation_parks_sender_and_loses_nothing(pair):
    hub, a, b, clock = pair

    class Slow(Actor):
        def __init__(self):
            super().__init__()
            self.n = 0

        def receive(self, msg, sender):
            time.sleep(0.002)
            self.n += 1

    slow = b.spawn(Slow, name="slow")
    rs = a.ref("b/slow")
    total = 40                              # 5x the credit window
    flood = threading.Thread(
        target=lambda: [rs.tell(i) for i in range(total)])
    flood.start()
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline and _actor(slow).n < total:
        _settle(a, b, rounds=1)
        a.tick()
        b.tick()
    flood.join()
    assert _actor(slow).n == total          # no drop, no dup
    assert not a.dead_letters() and not b.dead_letters()
    # the 8-credit window must actually have parked the flooder
    gate = a._gate("b/slow")
    assert gate.total_parks > 0


def test_staged_messages_bounded_by_stage_then_credit():
    """With the window larger than the mailbox bound, overflow stages
    on the receiver instead of growing the mailbox unboundedly."""
    clock = [0.0]
    hub = LoopbackHub()
    cfg = ClusterConfig(mailbox_bound=2, credit_window=64,
                        tick_interval=1e9, ack_every=4)
    a = ClusterNode("a", hub.join("a"), config=cfg, timer=False,
                    clock=lambda: clock[0])
    b = ClusterNode("b", hub.join("b"), config=cfg, timer=False,
                    clock=lambda: clock[0])
    a.connect("b")
    b.connect("a")
    try:
        class Gate(Actor):
            def __init__(self, release):
                super().__init__()
                self.release = release
                self.n = 0

            def receive(self, msg, sender):
                self.release.wait(10)
                self.n += 1

        release = threading.Event()
        gate = b.spawn(Gate, release, name="gate")
        rs = a.ref("b/gate")
        for i in range(12):
            rs.tell(i)
        time.sleep(0.1)
        staged = b.status()["staged"].get("gate", 0)
        assert staged > 0                  # overflow parked outside mailbox
        assert gate.pending <= cfg.mailbox_bound + 1
        release.set()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and _actor(gate).n < 12:
            b.pump()
            time.sleep(0.01)
        assert _actor(gate).n == 12
    finally:
        release.set()
        a.close()
        b.close()


# ---------------------------------------------------------------------------
# failure detector + cross-node supervision
# ---------------------------------------------------------------------------

class Watcher(Actor):
    def __init__(self, fired):
        super().__init__()
        self.fired = fired
        self.signals = []

    def receive(self, msg, sender):
        if isinstance(msg, ActorSignal):
            self.signals.append(msg)
            self.fired.set()


def test_cross_node_watch_applies_directive_and_signals(pair):
    hub, a, b, clock = pair
    faulty = b.spawn(Faulty, name="faulty")
    fired = threading.Event()
    w = a.spawn(Watcher, fired, name="w")
    a.watch("b/faulty", w, SupervisionDirective.STOP)
    _settle(a, b)
    a.ref("b/faulty").tell("kaboom")
    assert fired.wait(5)
    sig = _actor(w).signals[0]
    assert sig.kind == "failure"
    assert sig.path == "b/faulty"
    assert sig.directive == "stop"
    assert "RuntimeError" in sig.error
    _settle(a, b)
    assert faulty.is_stopped               # directive applied remotely


def test_silent_peer_goes_suspect_then_down(pair):
    hub, a, b, clock = pair
    hub.cut("b")
    _advance(a, clock, 2.0)                # past suspect_after
    assert a.peer_state("b") == PeerState.SUSPECT
    _advance(a, clock, 3.0)                # past down_after
    assert a.peer_state("b") == PeerState.DOWN


def test_node_down_signals_watchers_and_dead_letters_outbox(pair):
    hub, a, b, clock = pair
    b.spawn(Recorder, name="sink")
    fired = threading.Event()
    w = a.spawn(Watcher, fired, name="w")
    a.watch("b/sink", w, SupervisionDirective.RESTART)
    _settle(a, b)
    hub.cut("b")
    a.ref("b/sink").tell("never-arrives")
    _advance(a, clock, 5.0)                # straight past down_after
    assert fired.wait(5)
    sig = _actor(w).signals[0]
    assert sig.kind == "node-down"
    assert sig.path == "b/sink"
    assert any(d.message == "never-arrives" for d in a.dead_letters())
    # sends to a DOWN node fail fast into dead letters
    a.ref("b/sink").tell("late")
    assert any(d.message == "late" for d in a.dead_letters())


def test_peer_recovers_when_heard_again(pair):
    hub, a, b, clock = pair
    hub.cut("b")
    _advance(a, clock, 2.0)
    assert a.peer_state("b") == PeerState.SUSPECT
    hub.restore("b")
    _advance(b, clock, 0.6)                # b heartbeats out
    assert a.peer_state("b") == PeerState.ALIVE


def test_down_then_recover_remints_gates_and_delivers(pair):
    """DOWN -> ALIVE recovery must not leave broken credit gates behind:
    tells to a previously-used path on the recovered peer deliver again
    instead of dead-lettering forever."""
    hub, a, b, clock = pair
    sink = b.spawn(Recorder, name="sink")
    a.ref("b/sink").tell("before")
    _settle(a, b)
    hub.cut("b")
    a.ref("b/sink").tell("lost-in-flight")
    _advance(a, clock, 5.0)                # straight past down_after
    assert a.peer_state("b") == PeerState.DOWN
    assert a._gate("b/sink").broken is not None
    hub.restore("b")
    _advance(b, clock, 0.1)                # b heartbeats; a hears it
    assert a.peer_state("b") == PeerState.ALIVE
    # the broken gate was dropped: a fresh full-window gate is minted
    gate = a._gate("b/sink")
    assert gate.broken is None
    assert gate.available == a.config.credit_window
    a.ref("b/sink").tell("after-recovery")
    _settle(a, b)
    assert b.drain(timeout=5)
    assert _actor(sink).got == ["before", "after-recovery"]
    # the drained in-flight seq left a hole in b's cumulative-ACK
    # prefix; the SKIP resync closes it so the post-recovery tell is
    # acknowledged instead of falsely expiring into dead letters
    for _ in range(8):
        _advance(a, clock, 0.7)
        _advance(b, clock, 0.7)
    assert len(a._outboxes["b"]) == 0
    assert not any(d.message == "after-recovery" for d in a.dead_letters())


def test_expired_tell_releases_its_credit(pair):
    """Retry exhaustion on a lossy-but-alive link must return the TELL's
    credit — otherwise the send window permanently shrinks."""
    hub, a, b, clock = pair
    b.spawn(Recorder, name="sink")
    hub.partition("a", "b")
    a.ref("b/sink").tell("doomed")
    gate = a._gate("b/sink")
    assert gate.available == a.config.credit_window - 1
    for _ in range(8):                     # burn through every attempt
        _advance(a, clock, 0.7)
        a._heard_from("b")                 # keep the detector quiet
    assert any(d.message == "doomed" for d in a.dead_letters())
    assert gate.available == a.config.credit_window


def test_long_down_peer_state_is_evicted():
    clock = [0.0]
    hub = LoopbackHub()
    cfg = ClusterConfig(tick_interval=1e9, suspect_after=0.5,
                        down_after=1.0, evict_after=2.0)
    a = ClusterNode("a", hub.join("a"), config=cfg, timer=False,
                    clock=lambda: clock[0])
    b = ClusterNode("b", hub.join("b"), config=cfg, timer=False,
                    clock=lambda: clock[0])
    a.connect("b")
    b.connect("a")
    try:
        b.spawn(Recorder, name="sink")
        a.ref("b/sink").tell("hi")
        _settle(a, b, rounds=3)
        hub.cut("b")
        a.ref("b/sink").tell("lost")
        clock[0] += 1.5
        a.tick()                           # b declared DOWN
        assert a.peers()["b"] == PeerState.DOWN
        clock[0] += 4.0                    # past down_after + evict_after
        a.tick()
        assert "b" not in a.peers()        # per-peer state dropped
        assert "b" not in a._outboxes and "b" not in a._dedup
        assert not [p for p in a._gates if p.startswith("b/")]
        # a frame from the returned peer re-registers it from scratch
        hub.restore("b")
        clock[0] += 0.1
        b.tick()                           # heartbeat out
        assert a.peers().get("b") == PeerState.ALIVE
    finally:
        a.close()
        b.close()


def test_reply_cache_is_bounded():
    clock = [0.0]
    hub = LoopbackHub()
    cfg = ClusterConfig(tick_interval=1e9, reply_cache_size=4)
    a = ClusterNode("a", hub.join("a"), config=cfg, timer=False,
                    clock=lambda: clock[0])
    b = ClusterNode("b", hub.join("b"), config=cfg, timer=False,
                    clock=lambda: clock[0])
    a.connect("b")
    b.connect("a")
    try:
        for _ in range(10):
            a.status_of("b")
        assert len(b._reply_cache) <= cfg.reply_cache_size
    finally:
        a.close()
        b.close()


def test_broken_gate_fails_parked_senders_on_node_down():
    clock = [0.0]
    hub = LoopbackHub()
    cfg = ClusterConfig(mailbox_bound=1, credit_window=1,
                        park_timeout=30.0, tick_interval=1e9,
                        down_after=1.0, suspect_after=0.5)
    a = ClusterNode("a", hub.join("a"), config=cfg, timer=False,
                    clock=lambda: clock[0])
    b = ClusterNode("b", hub.join("b"), config=cfg, timer=False,
                    clock=lambda: clock[0])
    a.connect("b")
    b.connect("a")
    try:
        class Stuck(Actor):
            def receive(self, msg, sender):
                time.sleep(60)

        b.spawn(Stuck, name="stuck")
        hub.cut("b")
        results = []

        def send(i):
            a.ref("b/stuck").tell(i)
            results.append(i)

        threads = [threading.Thread(target=send, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.2)                    # let them park on 1 credit
        clock[0] += 2.0
        a.tick()                           # declares b DOWN, breaks gates
        for t in threads:
            t.join(timeout=10)
            assert not t.is_alive(), "parked sender never woke"
        assert len(a.dead_letters()) >= 2  # parked sends refused
    finally:
        a.close()
        b.close()


# ---------------------------------------------------------------------------
# node-level drain
# ---------------------------------------------------------------------------

def test_node_drain_reports_livelock(pair):
    hub, a, b, clock = pair

    class Feeder(Actor):
        def receive(self, msg, sender):
            self.self_ref.tell(msg + 1)

    f = b.spawn(Feeder, name="feeder")
    f.tell(0)
    assert b.drain(timeout=0.3) is False
    b.system.stop(f)


# ---------------------------------------------------------------------------
# zero-serialization local fast path
# ---------------------------------------------------------------------------

class TestLocalFastPath:
    def _solo(self, profiler=None, trace=False):
        hub = LoopbackHub()
        return ClusterNode("solo", hub.join("solo"), timer=False,
                           profiler=profiler, trace=trace)

    def test_remote_ref_to_own_node_skips_the_wire(self):
        from repro.cluster.node import RemoteRef
        from repro.obs import Profiler

        prof = Profiler()
        node = self._solo(profiler=prof)
        try:
            rec = node.spawn(Recorder, name="rec")
            ref = RemoteRef(node, "solo/rec")
            for i in range(10):
                ref.tell(i)
            assert node.drain(timeout=10)
            assert _actor(rec).got == list(range(10))
            snap = prof.snapshot()
            assert snap["counters"]["cluster.local_fastpath"] == 10
            # nothing serialized, nothing sent, no reliability state
            assert "cluster.sent" not in snap["counters"]
            assert "cluster.frames_out" not in snap["counters"]
            assert node.status()["unacked"] == {}
        finally:
            node.close()

    def test_send_tell_to_missing_local_actor_dead_letters(self):
        from repro.cluster.node import RemoteRef

        node = self._solo()
        try:
            RemoteRef(node, "solo/ghost").tell("lost?")
            dead = node.dead_letters()
            assert len(dead) == 1
            assert dead[0].message == "lost?"
            assert "ghost" in dead[0].target
        finally:
            node.close()

    def test_cached_local_ref_follows_respawn_under_same_name(self):
        """Stop the target, respawn under the same name: the cached
        fast-path ref must re-resolve to the new incarnation instead of
        feeding a dead cell forever."""
        from repro.cluster.node import RemoteRef

        node = self._solo()
        try:
            first = node.spawn(Recorder, name="phoenix")
            ref = RemoteRef(node, "solo/phoenix")
            ref.tell("one")
            assert node.drain(timeout=10)
            node.system.stop(first)
            assert node.system.drain(timeout=10)
            second = node.spawn(Recorder, name="phoenix")
            ref.tell("two")
            assert node.drain(timeout=10)
            assert _actor(first).got == ["one"]
            assert _actor(second).got == ["two"]
        finally:
            node.close()

    def test_local_delivery_emits_trace_event(self):
        from repro.cluster.node import RemoteRef

        node = self._solo(trace=True)
        try:
            node.spawn(Recorder, name="rec")
            RemoteRef(node, "solo/rec").tell("ping")
            assert node.drain(timeout=10)
            kinds = [e.kind for e in node.trace_events]
            assert "cluster-local" in kinds
        finally:
            node.close()

    def test_reply_path_round_trip_stays_local(self):
        """Request/reply where both parties address each other through
        cluster paths on one node — both directions take the fast path."""
        from repro.cluster.node import RemoteRef
        from repro.obs import Profiler

        prof = Profiler()
        node = self._solo(profiler=prof)
        try:
            node.spawn(Replier, name="rep")
            rec = node.spawn(Recorder, name="rec")
            target = RemoteRef(node, "solo/rep")
            target.tell("hi", sender=RemoteRef(node, "solo/rec"))
            assert node.drain(timeout=10)
            assert _actor(rec).got == [["echo", "hi"]]
            assert prof.snapshot()["counters"]["cluster.local_fastpath"] == 2
        finally:
            node.close()
