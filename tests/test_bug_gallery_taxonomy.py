"""The grown bug gallery as a taxonomy corpus.

The gallery doubles as course material (§IV.C's bug-study homework)
and as the monitors' regression corpus.  This module pins the corpus
shape after the Torres Lopez growth: both taxonomies covered, every
message-protocol specimen carrying the session type that flags it
online, every specimen addressable as a ``bug:<id>`` kernel program,
and the protocol machinery agreeing with each entry's hand-written
``manifests`` predicate on at least one witness.

Per-entry detection (``detect_bug`` buggy-flagged / fixed-clean) runs
in ``test_obs_monitors.py``; reduction soundness over the gallery in
``test_verify_reductions_equiv.py``.
"""

import pytest

from repro.obs import protocol_bus
from repro.problems import kernel_program, kernel_program_names
from repro.problems.bug_gallery import BUG_IDS, gallery
from repro.verify import explore

#: Lu et al. (shared memory) + Torres Lopez et al. (actors)
LU_CATEGORIES = {"atomicity", "order", "deadlock", "liveness", "safety"}
TORRES_LOPEZ_CATEGORIES = {"message-order", "message-interleaving",
                           "memory-in-message", "behavior"}


class TestCorpusShape:
    def test_both_taxonomies_are_covered(self):
        categories = {s.category for s in gallery()}
        assert categories >= LU_CATEGORIES
        assert categories >= TORRES_LOPEZ_CATEGORIES

    def test_the_corpus_grew_to_twelve_specimens(self):
        assert len(gallery()) == 12
        assert len(set(BUG_IDS)) == 12

    def test_actor_specimens_outnumber_the_seed(self):
        actor = [s for s in gallery()
                 if s.category in TORRES_LOPEZ_CATEGORIES]
        assert len(actor) >= 7

    def test_every_specimen_tells_its_story(self):
        for s in gallery():
            assert s.title and s.story, s.bug_id
            assert s.buggy is not s.fixed, s.bug_id
            assert s.hazards, s.bug_id

    def test_message_protocol_specimens_carry_their_session_type(self):
        for s in gallery():
            if "protocol-violation" in s.hazards:
                assert s.protocol is not None, s.bug_id
                d = s.protocol.describe()
                assert d["alphabet"], s.bug_id
                assert d["at"] in ("deliver", "send"), s.bug_id
                # the spec is bound to the conversation it governs
                assert d["parties"], s.bug_id
            else:
                assert s.protocol is None, s.bug_id


class TestKernelProgramRegistry:
    def test_every_specimen_is_addressable_by_name(self):
        names = kernel_program_names()
        for bug_id in BUG_IDS:
            assert f"bug:{bug_id}" in names

    def test_bug_names_resolve_to_the_buggy_variant(self):
        spec = next(s for s in gallery()
                    if s.bug_id == "msgorder-init-work")
        assert kernel_program("bug:msgorder-init-work") is spec.buggy

    def test_bug_names_reject_kwargs_and_unknown_ids(self):
        with pytest.raises(TypeError):
            kernel_program("bug:msgorder-init-work", n=3)
        with pytest.raises(KeyError):
            kernel_program("bug:no-such-specimen")


class TestProtocolWitnesses:
    """The session type and the hand-written bug predicate agree."""

    @pytest.mark.parametrize(
        "spec", [s for s in gallery() if s.protocol is not None],
        ids=lambda s: s.bug_id)
    def test_monitored_witness_runs_also_manifest_the_bug(self, spec):
        res = explore(spec.buggy, reduce="all",
                      monitors=lambda: protocol_bus([spec.protocol]))
        assert res.complete, spec.bug_id
        assert any(h.kind == "protocol-violation" for h in res.hazards)
        assert spec.manifests(res), spec.bug_id

    @pytest.mark.parametrize(
        "spec", [s for s in gallery() if s.protocol is not None],
        ids=lambda s: s.bug_id)
    def test_fixed_twin_conforms_silently(self, spec):
        res = explore(spec.fixed, reduce="all",
                      monitors=lambda: protocol_bus([spec.protocol]))
        assert res.complete, spec.bug_id
        assert not [h for h in res.hazards
                    if h.severity in ("error", "warning")], spec.bug_id
        assert not spec.manifests(res), spec.bug_id
