"""Chrome-trace / JSONL export, Trace.format, and the trace/stats CLI."""

import json

import pytest

from repro.cli import main
from repro.core import RandomPolicy, Scheduler
from repro.problems import kernel_program

REQUIRED_KEYS = {"ph", "ts", "pid", "tid", "name"}


def _run(name, seed=7, **kwargs):
    sched = Scheduler(RandomPolicy(seed), raise_on_deadlock=False,
                      raise_on_failure=False)
    kernel_program(name, **kwargs)(sched)
    return sched.run()


class TestChromeTrace:
    @pytest.mark.parametrize("problem", ["bounded_buffer", "bridge_2car"])
    def test_schema_round_trip(self, problem):
        trace = _run(problem)
        payload = trace.to_chrome_trace()
        # round-trips through JSON (chrome://tracing reads a file)
        payload = json.loads(json.dumps(payload))
        assert payload["otherData"]["outcome"] == trace.outcome
        events = payload["traceEvents"]
        assert events, "trace must produce events"
        for event in events:
            assert REQUIRED_KEYS <= set(event), event
        # one complete slice per executed step
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(trace.events)

    def test_one_lane_per_task(self):
        trace = _run("bounded_buffer")
        payload = trace.to_chrome_trace()
        lanes = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert lanes == set(trace.steps_by_task())

    def test_flow_arrows_pair_send_with_delivery(self):
        trace = _run("pingpong", rounds=3)
        events = trace.to_chrome_trace()["traceEvents"]
        starts = [e["id"] for e in events if e["ph"] == "s"]
        finishes = [e["id"] for e in events if e["ph"] == "f"]
        assert len(starts) == 6          # 3 pings + 3 pongs
        assert sorted(starts) == sorted(finishes)
        assert len(set(starts)) == len(starts)   # ids are unique
        for e in events:
            if e["ph"] == "f":
                assert e["bp"] == "e"    # bind to enclosing slice

    def test_flow_ids_match_trace_seqs(self):
        trace = _run("pingpong")
        sent = [e.msg_seq for e in trace.events if e.msg_seq is not None]
        received = [e.recv_seq for e in trace.events
                    if e.recv_seq is not None]
        assert sorted(sent) == sorted(received)

    def test_mailbox_counter_lanes(self):
        trace = _run("pingpong")
        events = trace.to_chrome_trace()["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert names == {"mailbox ping", "mailbox pong"}
        # depths never go negative and end at zero per mailbox
        last = {}
        for e in counters:
            assert e["args"]["pending"] >= 0
            last[e["name"]] = e["args"]["pending"]
        assert set(last.values()) == {0}

    def test_scale_controls_timestamps(self):
        trace = _run("pingpong")
        events = trace.to_chrome_trace(scale=100)["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert slices[0]["ts"] == 0
        assert slices[1]["ts"] == 100
        assert slices[0]["dur"] == 98


class TestJsonl:
    def test_stream_parses_and_summarizes(self):
        trace = _run("bounded_buffer")
        lines = trace.to_jsonl().strip().split("\n")
        records = [json.loads(line) for line in lines]
        assert len(records) == len(trace.events) + 1
        steps = records[:-1]
        assert all(r["type"] == "step" for r in steps)
        assert [r["step"] for r in steps] == list(
            range(1, len(trace.events) + 1))
        summary = records[-1]
        assert summary["type"] == "summary"
        assert summary["outcome"] == trace.outcome
        assert summary["events"] == len(trace.events)

    def test_message_fields_present(self):
        records = [json.loads(line) for line in
                   _run("pingpong").to_jsonl().strip().split("\n")]
        sends = [r for r in records if "msg_seq" in r]
        recvs = [r for r in records if "recv_seq" in r]
        assert sends and recvs
        assert sorted(r["msg_seq"] for r in sends) \
            == sorted(r["recv_seq"] for r in recvs)
        assert all(r["recv_mbox"] in ("ping", "pong") for r in recvs)


class TestTraceFormat:
    def test_full_listing_by_default(self):
        trace = _run("bounded_buffer")
        text = trace.format()
        assert len(text.splitlines()) >= len(trace.events)
        assert "outcome: done" in text

    def test_vector_clock_stamps(self):
        trace = _run("pingpong")
        assert "VC{" in trace.format()
        assert "VC{" not in trace.format(clocks=False)

    def test_tail_with_elision_header(self):
        trace = _run("bounded_buffer")
        text = trace.format(limit=3)
        first = text.splitlines()[0]
        assert "earlier events elided" in first
        assert f"{len(trace.events) - 3} earlier" in first

    def test_limit_validation(self):
        trace = _run("pingpong")
        with pytest.raises(ValueError):
            trace.format(limit=-1)
        assert "outcome" in trace.format(limit=0)


class TestCli:
    def test_trace_chrome(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "bounded_buffer", "--out", str(out),
                     "--seed", "7"]) == 0
        payload = json.loads(out.read_text())
        for event in payload["traceEvents"]:
            assert REQUIRED_KEYS <= set(event)
        assert "perfetto" in capsys.readouterr().out

    def test_trace_jsonl(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "pingpong", "--out", str(out),
                     "--format", "jsonl"]) == 0
        records = [json.loads(line)
                   for line in out.read_text().strip().split("\n")]
        assert records[-1]["type"] == "summary"

    def test_trace_unknown_problem(self, tmp_path, capsys):
        assert main(["trace", "nope", "--out",
                     str(tmp_path / "x.json")]) == 2
        assert "unknown problem" in capsys.readouterr().err

    def test_stats_table(self, capsys):
        assert main(["stats", "bounded_buffer", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "context_switches" in out

    def test_stats_json_with_explore(self, capsys):
        assert main(["stats", "bridge_2car", "--json", "--explore"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["steps"] > 0
        assert payload["exploration"]["sleep_prunes"] > 0
        assert payload["exploration"]["fingerprint_hits"] > 0

    def test_run_json(self, tmp_path, capsys):
        src = tmp_path / "p.pseudo"
        src.write_text('PARA\nPRINT "a"\nPRINT "b"\nENDPARA\n')
        assert main(["run", str(src), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outcome"] == "done"
        assert payload["output"] in ("ab", "ba")

    def test_outputs_json(self, tmp_path, capsys):
        src = tmp_path / "p.pseudo"
        src.write_text('PARA\nPRINT "a"\nPRINT "b"\nENDPARA\n')
        assert main(["outputs", str(src), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"count": 2, "possibilities": ["ab", "ba"]}

    def test_check_progress(self, tmp_path, capsys):
        src = tmp_path / "p.pseudo"
        src.write_text('PARA\nPRINT "a"\nPRINT "b"\nENDPARA\n')
        assert main(["check", str(src), "--reduce", "sleep+fingerprint",
                     "--progress", "--progress-every", "2"]) == 0
        captured = capsys.readouterr()
        assert "sleep prunes" in captured.err
        assert "decisions in" in captured.out
