"""Causal request tracing: context propagation, critical path, what-if.

Unit half: the tracer's span algebra on a fake clock — chains, the
backward critical-path walk (whose intervals must tile the traced
end-to-end exactly), the what-if DAG reschedule, and the renderers.

Integration half: one request context crossing every runtime the paper
covers — a JThread handoff, a ThreadPool submit, a work-stealing
executor submit, coroutine resumes, an actor chain, and a cluster hop
over the loopback wire — plus the ISSUE-8 acceptance bars: bridge
attribution coverage >= 90% of measured latency and a what-if
prediction within 25% of a measured speedup.
"""

import threading
import time
import tracemalloc

import pytest

from repro.actors import Actor, ActorSystem
from repro.actors.executor import WorkStealingExecutor
from repro.coroutines import CoScheduler
from repro.obs.causal import (
    SEGMENTS,
    CausalTracer,
    RequestContext,
    build_requests,
    chrome_trace_from_causal,
    clear_context,
    critical_path,
    critical_report,
    current_context,
    format_critical,
    format_requests,
    format_whatif,
    parse_speedup,
    rank_targets,
    trace_cluster_cell,
    whatif_report,
)
from repro.threads import JThread, ThreadPool


@pytest.fixture()
def clk():
    """Hand-cranked clock: ``clk[0] = t`` sets the tracer's now."""
    return [0.0]


@pytest.fixture()
def tracer(clk):
    t = CausalTracer(clock=lambda: clk[0])
    yield t
    clear_context()


# ---------------------------------------------------------------------------
# tracer core
# ---------------------------------------------------------------------------

class TestTracerCore:
    def test_context_is_thread_local(self, tracer):
        ctx = tracer.start_request("req")
        assert current_context() is ctx
        seen = []
        t = threading.Thread(target=lambda: seen.append(current_context()))
        t.start()
        t.join()
        assert seen == [None]          # TLS: other threads start clean
        clear_context()
        assert current_context() is None

    def test_start_request_records_zero_length_ingress(self, tracer, clk):
        clk[0] = 5.0
        ctx = tracer.start_request("ingress-name")
        (sid, parent, rid, seg, lane, t0, t1), = tracer.spans()
        assert (sid, parent, rid) == (ctx.span_id, 0, ctx.request_id)
        assert (seg, lane, t0, t1) == ("ingress", "ingress-name", 5.0, 5.0)

    def test_chain_links_and_continues(self, tracer):
        root = tracer.start_request("r", install=False)
        child = tracer.chain(root, "handler", "lane-a", 1.0, 2.0)
        assert isinstance(child, RequestContext)
        assert child.request_id == root.request_id
        assert child.span_id != root.span_id
        spans = tracer.spans()
        assert spans[-1] == (child.span_id, root.span_id,
                             root.request_id, "handler", "lane-a", 1.0, 2.0)

    def test_class_attribute_protocol(self, tracer):
        """Runtimes reach the TLS primitives through the tracer object
        itself — they never import repro.obs."""
        ctx = tracer.context(7, 9)
        tracer.install(ctx)
        assert tracer.current() is ctx
        assert current_context() is ctx
        tracer.uninstall()
        assert tracer.current() is None

    def test_capacity_evicts_oldest(self, clk):
        t = CausalTracer(clock=lambda: clk[0], capacity=3)
        for i in range(5):
            t.record(i, 0, 1, "handler", "x", 0.0, 1.0)
        assert len(t) == 3
        assert [s[0] for s in t.spans()] == [2, 3, 4]

    def test_segment_vocabulary(self):
        for seg in ("ingress", "handler", "mailbox-wait", "executor-queue",
                    "credit-wait", "network", "serialize", "stage-wait",
                    "thread-exec", "pool-exec", "coro-resume"):
            assert seg in SEGMENTS


# ---------------------------------------------------------------------------
# critical path
# ---------------------------------------------------------------------------

def _chain_spans(tracer, *steps):
    """Build one request as a linear chain of (segment, t0, t1)."""
    ctx = tracer.start_request("r", install=False)
    for seg, t0, t1 in steps:
        ctx = tracer.chain(ctx, seg, "lane", t0, t1)
    return ctx.request_id


class TestCriticalPath:
    def test_intervals_tile_the_request_exactly(self, tracer, clk):
        clk[0] = 0.0
        rid = _chain_spans(tracer,
                           ("handler", 0.0, 1.0),
                           ("mailbox-wait", 1.5, 2.0),   # 0.5s gap before
                           ("handler", 2.0, 4.0))
        trace = build_requests(tracer.spans())[rid]
        steps = critical_path(trace)
        # contiguous: each hi is the next lo, spanning root.t0..term.t1
        assert steps[0][1] == trace.root.t0
        assert steps[-1][2] == trace.terminal.t1
        for (_, _, hi), (_, lo, _) in zip(steps, steps[1:]):
            assert hi == lo
        total = sum(hi - lo for _, lo, hi in steps)
        assert total == pytest.approx(trace.e2e)
        # the untraced 0.5s gap is charged to the span *before* it:
        # each step's hi is its successor's t0, so the first handler's
        # interval stretches [0.0, 1.5] while mailbox-wait keeps 0.5
        widths = [(s.segment, hi - lo) for s, lo, hi in steps]
        assert widths == [("ingress", 0.0), ("handler", 1.5),
                          ("mailbox-wait", 0.5), ("handler", 2.0)]

    def test_report_shares_and_coverage(self, tracer):
        rid = _chain_spans(tracer,
                           ("serialize", 0.0, 1.0),
                           ("handler", 1.0, 4.0))
        report = critical_report(tracer.spans())
        assert report["requests"] == 1
        assert report["coverage"] == pytest.approx(1.0)
        assert report["e2e_p50_ms"] == pytest.approx(4000.0)
        segs = report["segments"]
        assert segs["handler"]["share"] == pytest.approx(0.75)
        assert segs["serialize"]["share"] == pytest.approx(0.25)
        # sorted by total attributed time, heaviest first (the
        # zero-length ingress span trails with no share)
        assert list(segs) == ["handler", "serialize", "ingress"]
        assert segs["ingress"]["share"] == 0.0
        # measured e2e larger than traced -> coverage drops below 1
        low = critical_report(tracer.spans(), measured_e2e={rid: 8.0})
        assert low["coverage"] == pytest.approx(0.5)
        assert low["e2e_p50_ms"] == pytest.approx(8000.0)

    def test_renderers_smoke(self, tracer):
        _chain_spans(tracer, ("handler", 0.0, 1.0))
        report = critical_report(tracer.spans())
        text = format_critical(report)
        assert "coverage 100.0%" in text and "handler" in text
        drill = format_requests(tracer.spans())
        assert "REQ" in drill and "handler" in drill


# ---------------------------------------------------------------------------
# what-if
# ---------------------------------------------------------------------------

class TestWhatif:
    def test_linear_chain_prediction_is_exact(self, tracer):
        _chain_spans(tracer,
                     ("serialize", 0.0, 1.0),
                     ("handler", 1.0, 5.0))
        report = whatif_report(tracer.spans(), "handler", 0.5)
        # 4s of handler halves: 5s -> 3s end to end
        assert report["baseline_p50_ms"] == pytest.approx(5000.0)
        assert report["predicted_p50_ms"] == pytest.approx(3000.0)
        assert report["improvement_p50_ms"] == pytest.approx(2000.0)
        assert report["improvement_pct"] == pytest.approx(40.0)

    def test_off_critical_path_segment_buys_nothing(self, tracer):
        """A fast segment overlapped by a slow sibling is not a target:
        shrinking it cannot move the terminal."""
        root = tracer.start_request("r", install=False)
        tracer.chain(root, "serialize", "a", 0.0, 1.0)   # overlapped
        tracer.chain(root, "handler", "b", 0.0, 10.0)    # dominates
        report = whatif_report(tracer.spans(), "serialize", 0.9)
        assert report["predicted_p50_ms"] == \
            pytest.approx(report["baseline_p50_ms"])

    def test_rank_targets_orders_by_predicted_win(self, tracer):
        _chain_spans(tracer,
                     ("serialize", 0.0, 1.0),
                     ("handler", 1.0, 9.0))
        ranked = rank_targets(tracer.spans(), speedup=0.5)
        assert [r["segment"] for r in ranked][:2] == \
            ["handler", "serialize"]
        text = format_whatif(ranked, chosen=ranked[0])
        assert "what-if: handler" in text
        assert "top optimization targets" in text

    def test_parse_speedup(self):
        assert parse_speedup("20%") == pytest.approx(0.2)
        assert parse_speedup("0.2") == pytest.approx(0.2)
        assert parse_speedup(" 95% ") == pytest.approx(0.95)
        for bad in ("0", "1.5", "100%", "-10%"):
            with pytest.raises(ValueError):
                parse_speedup(bad)


# ---------------------------------------------------------------------------
# chrome export
# ---------------------------------------------------------------------------

def test_chrome_trace_from_causal_carries_request_id(tracer):
    _chain_spans(tracer, ("handler", 0.0, 1.0))
    payload = chrome_trace_from_causal(tracer.spans())
    slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert slices and all("request_id" in e["args"] for e in slices)
    names = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    assert any(e["args"]["name"] == "lane" for e in names)


# ---------------------------------------------------------------------------
# propagation across runtimes
# ---------------------------------------------------------------------------

class TestRuntimePropagation:
    def test_jthread_handoff(self):
        tracer = CausalTracer()
        root = tracer.start_request("spawn")
        try:
            t = JThread(target=lambda: current_context(), tracer=tracer)
            t.start()
            inner = t.join()
        finally:
            clear_context()
        assert inner is not None
        assert inner.request_id == root.request_id
        exec_spans = [s for s in tracer.spans() if s[3] == "thread-exec"]
        assert len(exec_spans) == 1
        assert exec_spans[0][1] == root.span_id        # chained on starter
        # untraced start: no context leaks into the thread
        bare = JThread(target=lambda: current_context())
        bare.start()
        assert bare.join() is None

    def test_thread_pool_submit(self):
        tracer = CausalTracer()
        with ThreadPool(2, tracer=tracer) as pool:
            root = tracer.start_request("submit")
            try:
                fut = pool.submit(current_context)
                inner = fut.result()
            finally:
                clear_context()
        assert inner.request_id == root.request_id
        pool_spans = [s for s in tracer.spans() if s[3] == "pool-exec"]
        assert len(pool_spans) == 1
        assert pool_spans[0][1] == root.span_id

    def test_workstealing_executor_submit(self):
        tracer = CausalTracer()
        ex = WorkStealingExecutor(workers=2, tracer=tracer)
        got = []
        done = threading.Event()
        try:
            root = tracer.start_request("exec")
            try:
                ex.submit(lambda: (got.append(current_context()),
                                   done.set()))
            finally:
                clear_context()
            assert done.wait(5)
        finally:
            ex.shutdown(wait=True)
        assert got[0] is not None
        assert got[0].request_id == root.request_id
        segs = [s[3] for s in tracer.spans()]
        assert "executor-queue" in segs and "handler" in segs

    def test_coroutine_resumes_extend_the_chain(self):
        tracer = CausalTracer()
        sched = CoScheduler(tracer=tracer)
        seen = []

        def coro():
            seen.append(current_context())
            yield
            seen.append(current_context())

        root = tracer.start_request("spawn-coro")
        try:
            sched.spawn(coro)
        finally:
            clear_context()
        sched.run()
        assert all(c is not None for c in seen)
        assert {c.request_id for c in seen} == {root.request_id}
        resumes = [s for s in tracer.spans() if s[3] == "coro-resume"]
        assert len(resumes) == 2
        # second resume chains on the first, which chains on the root
        assert resumes[0][1] == root.span_id
        assert resumes[1][1] == resumes[0][0]

    def test_actor_chain_grows_one_request(self):
        class Fwd(Actor):
            def __init__(self, nxt=None, done=None):
                super().__init__()
                self.nxt, self.done = nxt, done

            def receive(self, message, sender):
                if self.nxt is not None:
                    self.nxt.tell(message)
                else:
                    self.done.set()

        tracer = CausalTracer()
        done = threading.Event()
        with ActorSystem(workers=2, tracer=tracer) as system:
            last = system.spawn(Fwd, None, done, name="last")
            first = system.spawn(Fwd, last, None, name="first")
            root = tracer.start_request("actor-chain")
            try:
                first.tell("go")
            finally:
                clear_context()
            assert done.wait(10)
            system.drain()
        spans = tracer.spans()
        assert {s[2] for s in spans} == {root.request_id}
        segs = [s[3] for s in spans]
        # two hops: each contributes a wait + queue + handler triple
        assert segs.count("handler") == 2
        assert segs.count("mailbox-wait") == 2
        assert segs.count("executor-queue") == 2
        # the second hop's chain hangs off the first handler span
        trace = build_requests(spans)[root.request_id]
        assert trace.terminal.segment == "handler"
        walked = [s.segment for s, _, _ in critical_path(trace)]
        assert walked == ["ingress", "mailbox-wait", "executor-queue",
                          "handler", "mailbox-wait", "executor-queue",
                          "handler"]

    def test_hop_budget_self_terminates_runaway_chain(self):
        """One request may trace at most ``hop_budget`` execution
        handoffs — a degenerate message storm downstream of a single
        ingress stops paying tracing costs once the budget is spent
        (the production bound behind the bench's tracing-on gate)."""

        class Loop(Actor):
            def __init__(self, done):
                super().__init__()
                self.done = done

            def receive(self, message, sender):
                if message == 0:
                    self.done.set()
                else:
                    self.self_ref.tell(message - 1)

        tracer = CausalTracer(hop_budget=3)
        done = threading.Event()
        with ActorSystem(workers=2, tracer=tracer) as system:
            ref = system.spawn(Loop, done, name="loop")
            tracer.start_request("storm")
            try:
                ref.tell(20)           # 21 handler runs, budget of 3
            finally:
                clear_context()
            assert done.wait(10)
            system.drain()
        segs = [s[3] for s in tracer.spans()]
        assert segs.count("handler") == 3
        assert segs.count("mailbox-wait") == 3
        # ingress + three full wait/queue/handler hop triples, nothing
        # after the budget ran out
        assert len(tracer) == 1 + 3 * 3

    def test_hop_method_returns_none_at_exhaustion(self):
        tracer = CausalTracer(clock=lambda: 0.0, hop_budget=1)
        ctx = tracer.start_request("r", install=False)
        nxt = tracer.hop(ctx, "coro-resume", "t", 0.0, 1.0)
        assert nxt is not None
        # budget spent: nothing recorded, chain terminated
        assert tracer.hop(nxt, "coro-resume", "t", 1.0, 2.0) is None
        assert len(tracer) == 2            # ingress + the one resume

    def test_hop_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            CausalTracer(hop_budget=0)

    def test_tracer_attached_but_no_request_records_nothing(self):
        tracer = CausalTracer()
        done = threading.Event()

        class Sink(Actor):
            def receive(self, message, sender):
                if message == 9:
                    done.set()

        with ActorSystem(workers=2, tracer=tracer) as system:
            ref = system.spawn(Sink, name="sink")
            for i in range(10):
                ref.tell(i)            # no context installed anywhere
            assert done.wait(10)
            system.drain()
        assert len(tracer) == 0


def test_tracing_off_allocates_nothing_from_causal():
    """The ISSUE-8 overhead bar, structurally: with no tracer attached
    the hot path is `is None` tests — nothing from the causal module
    ever allocates.  (The throughput side lives in
    benchmarks/test_bench_obs.py::test_bench_tracer_overhead.)"""
    done = threading.Event()

    class Sink(Actor):
        def receive(self, message, sender):
            if message == 199:
                done.set()

    with ActorSystem(workers=2) as system:       # tracer absent
        ref = system.spawn(Sink, name="sink")
        tracemalloc.start()
        try:
            for i in range(200):
                ref.tell(i)
            assert done.wait(10)
            system.drain()
            snap = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
    causal_allocs = snap.filter_traces(
        [tracemalloc.Filter(True, "*causal.py")]).statistics("filename")
    assert sum(s.size for s in causal_allocs) == 0


# ---------------------------------------------------------------------------
# cluster wire
# ---------------------------------------------------------------------------

class TestClusterWire:
    def test_envelope_ctx_roundtrip_and_back_compat(self):
        from repro.cluster.message import (Envelope, JsonSerializer,
                                           PickleSerializer, TELL)
        traced = Envelope(TELL, 3, "a", "b", payload={"m": 1},
                          sender="a/probe", ctx=(7, 42, 1.25))
        bare = Envelope(TELL, 4, "a", "b", payload={"m": 2})
        for ser in (JsonSerializer(), PickleSerializer()):
            back = ser.decode(ser.encode(traced))
            assert back.ctx == (7, 42, 1.25)
            assert back.payload == {"m": 1}
            assert ser.decode(ser.encode(bare)).ctx is None
        # an untraced envelope keeps the pre-tracing 6-tuple wire shape
        assert len(bare.as_tuple()) == 6
        assert len(traced.as_tuple()) == 7
        assert "ctx" not in JsonSerializer().encode(bare).decode()

    def test_loopback_hop_records_network_and_serialize(self):
        from repro.cluster import ClusterNode, LoopbackHub
        from repro.cluster.message import PickleSerializer

        class Sink(Actor):
            def __init__(self, done):
                super().__init__()
                self.done = done

            def receive(self, message, sender):
                self.done.set()

        tracer = CausalTracer()
        hub = LoopbackHub()
        a = ClusterNode("a", hub.join("a"),
                        serializer=PickleSerializer(), tracer=tracer)
        b = ClusterNode("b", hub.join("b"),
                        serializer=PickleSerializer(), tracer=tracer)
        done = threading.Event()
        try:
            a.connect("b")
            b.connect("a")
            b.spawn(Sink, done, name="sink")
            root = tracer.start_request("wire")
            try:
                a.ref("b/sink").tell({"n": 1})
            finally:
                clear_context()
            assert done.wait(10)
        finally:
            a.close()
            b.close()
        spans = tracer.spans()
        segs = {s[3] for s in spans}
        assert {"ingress", "network", "serialize",
                "mailbox-wait", "handler"} <= segs
        assert {s[2] for s in spans} == {root.request_id}
        # clock-skew clamp: no span may run backwards
        assert all(s[6] >= s[5] for s in spans)
        # serialize chains on network, which chains on the sender side
        by_seg = {s[3]: s for s in spans}
        net, ser = by_seg["network"], by_seg["serialize"]
        assert ser[1] == net[0]
        sender_ids = {s[0] for s in spans if s[3] in ("ingress",
                                                      "credit-wait")}
        assert net[1] in sender_ids


# ---------------------------------------------------------------------------
# acceptance bars
# ---------------------------------------------------------------------------

class TestAcceptance:
    def test_bridge_attribution_covers_measured_latency(self):
        """>= 90% of the *measured* end-to-end latency of each bridge
        request must land in attributed segments."""
        tracer, measured = trace_cluster_cell(
            cell="bridge", requests=6, workers=4, scale=8)
        assert len(measured) == 6
        report = critical_report(tracer.spans(), measured_e2e=measured)
        assert report["requests"] == 6
        assert report["coverage"] >= 0.90, report
        # the big three bridge segments all show up
        assert {"handler", "mailbox-wait",
                "executor-queue"} <= set(report["segments"])

    def test_whatif_predicts_sleep_removal_within_25pct(self):
        """Inject a known 4ms sleep into every handler of an 6-stage
        actor chain; `whatif(handler, 90%)` must predict the improvement
        that actually materializes when the sleep shrinks 10x."""
        stages, delay, reqs = 6, 0.004, 5

        class Stage(Actor):
            def __init__(self, nxt, delay, done=None):
                super().__init__()
                self.nxt, self.delay, self.done = nxt, delay, done

            def receive(self, message, sender):
                time.sleep(self.delay)
                if self.nxt is not None:
                    self.nxt.tell(message)
                else:
                    self.done.set()

        def run_chain(delay, tracer):
            done = threading.Event()
            lat = []
            with ActorSystem(workers=2, tracer=tracer) as system:
                nxt = system.spawn(Stage, None, delay, done, name="s-last")
                for i in range(stages - 1):
                    nxt = system.spawn(Stage, nxt, delay, name=f"s{i}")
                for _ in range(reqs):
                    done.clear()
                    if tracer is not None:
                        tracer.start_request("chain")
                    t0 = time.perf_counter()
                    try:
                        nxt.tell("go")
                        assert done.wait(30)
                    finally:
                        if tracer is not None:
                            clear_context()
                    lat.append(time.perf_counter() - t0)
                system.drain()
            lat.sort()
            return lat[len(lat) // 2]

        tracer = CausalTracer()
        base_p50 = run_chain(delay, tracer)
        fast_p50 = run_chain(delay * 0.1, None)
        report = whatif_report(tracer.spans(), "handler", 0.9)
        predicted_gain = report["improvement_p50_ms"]
        measured_gain = (base_p50 - fast_p50) * 1e3
        assert measured_gain > 0
        assert abs(predicted_gain - measured_gain) <= \
            0.25 * measured_gain, (predicted_gain, measured_gain)
