"""Single-lane bridge: LTS models, Figure 6/7 questions, three runtimes."""

import pytest

from repro.problems.single_lane_bridge import (DEFAULT_CARS, MP_PSEUDOCODE,
                                               MPFlags, SM_PSEUDOCODE,
                                               SMFlags, bridge_invariant,
                                               check_crossing_log,
                                               mp_bridge_lts,
                                               run_actor_bridge,
                                               run_coroutine_bridge,
                                               run_threads_bridge,
                                               sm_bridge_lts)
from repro.verify import ScenarioQuestion, answer_question_lts

A, B, BL = "redCarA", "redCarB", "blueCarA"


class TestSharedMemoryModel:
    def test_state_space_explores_cleanly(self):
        result = sm_bridge_lts().explore()
        assert result.states > 100
        assert not result.deadlocks
        assert result.final_states

    def test_safety_invariant_holds(self):
        assert sm_bridge_lts().check_invariant(bridge_invariant) is None

    def test_s5_model_violates_nothing_but_changes_reachability(self):
        """The S5 world is still safe — it is over-restrictive, not
        unsafe; the student rejects feasible behaviours."""
        mutated = sm_bridge_lts(flags=SMFlags(acquire_requires_condition=True))
        assert mutated.check_invariant(bridge_invariant) is None

    def test_s6_world_can_deadlock(self):
        """If WAIT held the monitor (S6), a waiting car would block the
        bridge forever — the deadlock is real in that world."""
        mutated = sm_bridge_lts(flags=SMFlags(wait_blocks_monitor=True))
        assert mutated.deadlock_trace() is not None

    def test_correct_world_deadlock_free(self):
        assert sm_bridge_lts().deadlock_trace() is None


class TestFigure6Question:
    def test_item_m_is_yes(self):
        """Figure 6 (m): redCarB returns from redEnter first, calls
        redExit, and blocks on the EXC_ACC marker — possible."""
        q = ScenarioQuestion(
            qid="(m)", text="fig6(m)",
            history=((A, "call", "redEnter"), (B, "call", "redEnter")),
            scenario=((B, "return", "redEnter"), (B, "call", "redExit"),
                      (B, "acquire", "redExit")),
            forbidden=((A, "return", "redEnter"),))
        answer = answer_question_lts(sm_bridge_lts(), q)
        assert answer.yes
        events = [s.event for s in answer.witness]
        assert (B, "return", "redEnter") in events

    def test_item_m_flips_under_s7(self):
        """A student who believes the lock spans the whole method call
        cannot let redCarB return while redCarA is still inside."""
        q = ScenarioQuestion(
            qid="(m)", text="fig6(m)",
            history=((A, "acquire", "redEnter"), (B, "call", "redEnter")),
            scenario=((B, "return", "redEnter"),),
            forbidden_anywhere=((A, "return", "redEnter"), (A, "wait")))
        assert answer_question_lts(sm_bridge_lts(), q).yes
        mutated = sm_bridge_lts(flags=SMFlags(lock_span_method=True))
        assert answer_question_lts(mutated, q).verdict == "NO"


class TestMessagePassingModel:
    def test_state_space_explores_cleanly(self):
        result = mp_bridge_lts().explore()
        assert result.states > 100
        assert not result.deadlocks

    def test_mp_invariant_one_direction(self):
        def safe(state):
            return state[1] == 0 or state[2] == 0
        assert mp_bridge_lts().check_invariant(safe) is None

    def test_figure7_item_m_is_yes(self):
        q = ScenarioQuestion(
            qid="(m)", text="fig7(m)",
            history=((A, "send", "redEnter"), (B, "send", "redEnter")),
            scenario=((B, "recv", "succeedEnter"), (B, "send", "redExit"),
                      (B, "recv", ("succeedExit", 2))))
        assert answer_question_lts(mp_bridge_lts(), q).yes

    def test_send_order_vs_handle_order(self):
        """The arbitrary-delivery semantics lets B's message overtake
        A's; the M5 (FIFO) world forbids exactly that."""
        q = ScenarioQuestion(
            qid="order", text="",
            history=((A, "send", "redEnter"), (B, "send", "redEnter")),
            scenario=(("bridge", "handle", B, "redEnter"),),
            forbidden_anywhere=(("bridge", "handle", A, "redEnter"),))
        assert answer_question_lts(mp_bridge_lts(), q).yes
        fifo = mp_bridge_lts(flags=MPFlags(delivery="fifo"))
        assert answer_question_lts(fifo, q).verdict == "NO"

    def test_ack_reorder_across_receivers(self):
        q = ScenarioQuestion(
            qid="ack", text="",
            history=(("bridge", "handle", A, "redEnter"),
                     ("bridge", "handle", B, "redEnter")),
            scenario=((B, "recv", "succeedEnter"),),
            forbidden_anywhere=((A, "recv", "succeedEnter"),))
        assert answer_question_lts(mp_bridge_lts(), q).yes
        fifo = mp_bridge_lts(flags=MPFlags(delivery="fifo"))
        assert answer_question_lts(fifo, q).verdict == "NO"

    def test_m4_world_has_no_separate_recv(self):
        q = ScenarioQuestion(
            qid="m4", text="",
            scenario=(("bridge", "handle", A, "redEnter"),
                      (B, "send", "redEnter"),
                      (A, "recv", "succeedEnter")))
        assert answer_question_lts(mp_bridge_lts(), q).yes
        m4 = mp_bridge_lts(flags=MPFlags(ack_synchronous=True))
        assert answer_question_lts(m4, q).verdict == "NO"

    def test_exit_counter_increments(self):
        q = ScenarioQuestion(
            qid="exit3", text="third exit exists",
            scenario=((lambda e: isinstance(e, tuple) and len(e) == 3
                       and e[1] == "recv" and e[2] == ("succeedExit", 3)),))
        assert answer_question_lts(mp_bridge_lts(), q).yes


class TestRunnableImplementations:
    @pytest.mark.parametrize("runner", [
        run_threads_bridge, run_actor_bridge, run_coroutine_bridge])
    def test_log_is_safe_and_complete(self, runner):
        crossings = 2
        log = runner(crossings=crossings)
        assert check_crossing_log(log, DEFAULT_CARS) is None
        enters = sum(1 for e in log if e[1] == "enter-bridge")
        exits = sum(1 for e in log if e[1] == "exit-bridge")
        assert enters == exits == len(DEFAULT_CARS) * crossings

    def test_crossing_audit_flags_violation(self):
        bad_log = [("redCarA", "enter-bridge"), ("blueCarA", "enter-bridge")]
        assert check_crossing_log(bad_log, DEFAULT_CARS) is not None

    def test_crossing_audit_flags_exit_without_enter(self):
        assert check_crossing_log([("redCarA", "exit-bridge")],
                                  DEFAULT_CARS) is not None


class TestPseudocodeForms:
    def test_sm_pseudocode_parses_and_is_safe(self):
        from repro.pseudocode import compile_program
        runtime = compile_program(SM_PSEUDOCODE)
        # one exclusion group covering both counters (enter blocks read
        # the opposite colour's counter)
        assert len(runtime.info.groups) == 1
        result = runtime.run()
        assert result.outcome == "done"
        assert result.output_tokens() == ["0"]

    def test_mp_pseudocode_parses(self):
        from repro.pseudocode import parse
        prog = parse(MP_PSEUDOCODE)
        assert "Bridge" in prog.classes
        assert "Car" in prog.classes
        assert prog.classes["Bridge"].methods["start"].has_receive()
