"""Budget-aware exploration: estimation, sampling, adaptive mode."""

from repro.core import Emit, Pause
from repro.verify import (estimate_tree, explore, explore_adaptive,
                          sample_behaviours)


def _program(tasks=2, steps=2):
    def program(sched):
        for t in range(tasks):
            def body(t=t):
                for s in range(steps):
                    yield Emit((t, s))
            sched.spawn(body, name=f"t{t}")
    return program


class TestEstimate:
    def test_estimate_fields_populated(self):
        est = estimate_tree(_program(2, 2))
        assert est.probe_runs > 0
        assert est.mean_depth > 0
        assert est.max_fanout >= 1
        assert est.est_leaves >= 1
        assert "schedules" in est.describe()

    def test_estimate_tracks_actual_order_of_magnitude(self):
        actual = explore(_program(2, 2)).runs
        est = estimate_tree(_program(2, 2), probes=16)
        assert actual / 20 <= est.est_leaves <= actual * 20

    def test_single_task_estimates_one(self):
        est = estimate_tree(_program(1, 3))
        assert est.est_leaves == 1


class TestSampling:
    def test_sampling_never_claims_completeness(self):
        res = sample_behaviours(_program(2, 2), samples=10)
        assert not res.complete
        assert res.runs == 10

    def test_samples_are_real_behaviours(self):
        full = explore(_program(2, 2))
        sampled = sample_behaviours(_program(2, 2), samples=50)
        assert sampled.output_sets() <= full.output_sets()

    def test_seeds_vary_coverage(self):
        a = sample_behaviours(_program(3, 2), samples=5, seed=1)
        b = sample_behaviours(_program(3, 2), samples=5, seed=100)
        # different seeds explore different schedules (usually);
        # at minimum both found real behaviours
        assert a.terminals and b.terminals


class TestAdaptive:
    def test_small_space_goes_exhaustive(self):
        res, mode = explore_adaptive(_program(2, 1), budget_runs=1000)
        assert mode == "exhaustive"
        assert res.complete

    def test_large_space_degrades_to_sampling(self):
        res, mode = explore_adaptive(_program(4, 4), budget_runs=50)
        assert mode == "sampled"
        assert not res.complete
        assert res.runs <= 50
