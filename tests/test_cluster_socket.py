"""Real-socket cluster tests (pytest marker: ``cluster``).

Everything here opens actual TCP sockets — two in-process nodes over
localhost, then a genuine worker subprocess started through the CLI
(``python -m repro cluster serve``).  Excluded from the default tier
by ``-m "not cluster"``; the CI ``cluster-smoke`` job runs them with a
hard timeout.
"""

import threading
import time

import pytest

from repro.actors import Actor
from repro.cluster import (
    ClusterNode,
    JsonSerializer,
    PickleSerializer,
    SocketTransport,
    register_actor_type,
)

pytestmark = pytest.mark.cluster


class Recorder(Actor):
    def __init__(self):
        super().__init__()
        self.got = []

    def receive(self, msg, sender):
        self.got.append(msg)
        if sender is not None:
            sender.tell(["ack", msg])


register_actor_type("sock-recorder", Recorder)


def _wait(pred, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(0.01)
    return pred()


def test_two_nodes_over_tcp_roundtrip():
    a = ClusterNode("a", SocketTransport("a"), serializer=JsonSerializer())
    b = ClusterNode("b", SocketTransport("b"), serializer=JsonSerializer())
    try:
        a.connect("b", ("127.0.0.1", b.transport.port))
        sink = b.spawn(Recorder, name="sink")
        back = a.spawn(Recorder, name="back")
        for i in range(20):
            a.ref("b/sink").tell(["m", i], sender=back)
        assert _wait(lambda: len(sink._cell.actor.got) == 20)
        # replies route over the same dialed socket (HELLO named it
        # in both directions — b never dialed a)
        assert _wait(lambda: len(back._cell.actor.got) == 20)
        assert b.status()["peers"]["a"] == "alive"
    finally:
        a.close()
        b.close()


def test_ephemeral_client_needs_no_listener():
    from repro.obs import Profiler

    server = ClusterNode("server", SocketTransport("server"),
                         serializer=PickleSerializer(),
                         profiler=Profiler())
    client = ClusterNode("client",
                         SocketTransport("client", listen=False),
                         serializer=PickleSerializer())
    try:
        client.connect("server", ("127.0.0.1", server.transport.port))
        ref = client.spawn_remote("server", "sock-recorder", "r")
        ref.tell(("hello", 1))
        status = client.status_of("server", profile=True)
        assert "r" in status["actors"]
        assert status["profile"]["counters"].get("cluster.delivered", 0) >= 1
    finally:
        client.close()
        server.close()


def test_worker_subprocess_end_to_end():
    """The full CLI story: serve a worker process, spawn into it, chat
    with it, pull its status, shut it down."""
    from repro.cluster.bench import spawn_worker

    proc, port = spawn_worker(name="w1")
    driver = ClusterNode("driver",
                         SocketTransport("driver", listen=False),
                         serializer=PickleSerializer())
    try:
        driver.connect("w1", ("127.0.0.1", port))
        echo = driver.spawn_remote("w1", "cluster-echo", "e")
        done = threading.Event()

        class Counter(Actor):
            def __init__(self):
                super().__init__()
                self.n = 0

            def receive(self, msg, sender):
                self.n += 1
                if self.n == 50:
                    done.set()

        counter = driver.spawn(Counter, name="c")
        for i in range(50):
            echo.tell(("ping", i), sender=counter)
        assert done.wait(20), "echoes did not come back over TCP"
        status = driver.status_of("w1")
        assert status["node"] == "w1"
        assert "e" in status["actors"]
    finally:
        driver.close()
        proc.terminate()
        proc.wait(timeout=10)
