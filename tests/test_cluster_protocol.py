"""Protocol conformance on the live cluster runtime.

The conformance fast path: every bulk message — remote deliver, remote
send, and the zero-serialization local fast path — lands in the node's
per-message observation queue (one GIL-atomic append), and the daemon
conformance pump steps the automata off the critical path.  ``drain()``
flushes the pump, so hazards are visible at quiescence.  The slow fed
path (``trace=True`` stamps kind tokens onto ClusterEvents) must flag
the same streams.  Violations feed the telemetry plane: per-protocol
counters in ``repro top`` frames and a postmortem bundle per incident.
"""

from repro.actors import Actor
from repro.actors.system import DeadLetter
from repro.cluster import (ClusterConfig, ClusterNode, LoopbackHub,
                           RemoteRef, cluster_bus)
from repro.obs import MonitorBus, Protocol, ProtocolMonitor, render_top
from repro.obs.telemetry import TelemetryAgent

BOOT = lambda **kw: Protocol("boot", "INIT -> WORK*",       # noqa: E731
                             parties=("worker",), **kw)


class Sink(Actor):
    def receive(self, message, sender):
        pass


def _pair(protocols, sender_bus=None, **b_kw):
    hub = LoopbackHub()
    bus = cluster_bus(protocols=protocols)
    a = ClusterNode("a", hub.join("a"), workers=2, monitors=sender_bus)
    b = ClusterNode("b", hub.join("b"), workers=2, monitors=bus,
                    **b_kw)
    a.connect("b")
    b.connect("a")
    b.spawn(Sink, name="worker")
    return a, b, bus


def _close(*nodes):
    for n in nodes:
        n.close()


def _protocol_hazards(bus):
    return [h for h in bus.hazards if h.kind == "protocol-violation"]


class TestRemoteConformance:
    def test_out_of_order_delivery_flagged_at_quiescence(self):
        a, b, bus = _pair([BOOT()])
        try:
            a.ref("b/worker").tell(("work", 1))   # WORK before INIT
            a.ref("b/worker").tell(("init", 0))
            assert a.drain() and b.drain()
            flagged = _protocol_hazards(bus)
            assert len(flagged) == 1
            hz = flagged[0]
            assert hz.severity == "error"
            assert hz.subject == "boot@worker"
            assert hz.seq is not None          # symmetric wire-flow id
            assert "b/worker" in hz.tasks
            assert "expected {init}" in hz.message
        finally:
            _close(a, b)

    def test_conforming_stream_is_clean_and_observed(self):
        a, b, bus = _pair([BOOT()])
        try:
            ref = a.ref("b/worker")
            ref.tell(("init", 0))
            for k in range(5):
                ref.tell(("work", k))
            assert a.drain() and b.drain()
            assert not bus.hazards
            mon = next(d for d in bus.detectors
                       if isinstance(d, ProtocolMonitor))
            assert mon._machines[0].moved      # it watched, silently
            assert not mon.counts()
        finally:
            _close(a, b)

    def test_send_point_flags_on_the_sending_node(self):
        sender_bus = cluster_bus(
            protocols=[BOOT(at="send")])
        a, b, _ = _pair([], sender_bus=sender_bus)
        try:
            a.ref("b/worker").tell(("work", 1))
            assert a.drain() and b.drain()
            flagged = _protocol_hazards(sender_bus)
            assert len(flagged) == 1
            assert flagged[0].tasks == ("a/worker",)
        finally:
            _close(a, b)

    def test_strict_spec_flags_outside_alphabet_tokens(self):
        a, b, bus = _pair([BOOT(strict=True)])
        try:
            a.ref("b/worker").tell(("init", 0))
            a.ref("b/worker").tell(("frobnicate", 1))
            assert a.drain() and b.drain()
            flagged = _protocol_hazards(bus)
            assert len(flagged) == 1
            assert "outside the protocol alphabet" in flagged[0].message
        finally:
            _close(a, b)

    def test_local_fastpath_messages_are_not_exempt(self):
        hub = LoopbackHub()
        bus = cluster_bus(protocols=[BOOT()])
        n = ClusterNode("solo", hub.join("solo"), workers=2,
                        monitors=bus)
        try:
            n.spawn(Sink, name="worker")
            # RemoteRef to a local actor takes the zero-serialization
            # fast path — conformance still sees every message
            RemoteRef(n, "solo/worker").tell(("work", 1))
            assert n.drain()
            flagged = _protocol_hazards(bus)
            assert len(flagged) == 1
            assert flagged[0].subject == "boot@worker"
        finally:
            n.close()

    def test_fed_path_flags_the_same_stream(self):
        # trace=True disables the fast pump (the trace log consumes
        # stamped events); conformance rides bus.feed instead and must
        # reach the same verdict
        a, b, bus = _pair([BOOT()], trace=True)
        try:
            a.ref("b/worker").tell(("work", 1))
            assert a.drain() and b.drain()
            assert len(_protocol_hazards(bus)) == 1
        finally:
            _close(a, b)


class TestTelemetryIntegration:
    def _cluster(self, tmp_path):
        clock = [0.0]
        wall = lambda: clock[0]                            # noqa: E731
        hub = LoopbackHub()
        config = ClusterConfig(telemetry_interval=0.5,
                               tick_interval=1e9)
        bus = cluster_bus(protocols=[BOOT()])
        a = ClusterNode("a", hub.join("a"), config=config,
                        timer=False, clock=wall)
        b = ClusterNode("b", hub.join("b"), config=config,
                        timer=False, clock=wall, monitors=bus)
        tb = TelemetryAgent(time_source=wall,
                            postmortem_dir=str(tmp_path)).attach(b)
        a.connect("b")
        b.connect("a")
        b.spawn(Sink, name="worker")
        return clock, a, b, bus, tb

    def test_violation_counts_postmortem_and_top_line(self, tmp_path):
        clock, a, b, bus, tb = self._cluster(tmp_path)
        try:
            ref = a.ref("b/worker")
            for t in range(3):                 # clean warm-up frames
                clock[0] = float(t)
                ref.tell(("init", 0) if t == 0 else ("work", t))
                a.drain()
                b.drain()
                a.tick(now=clock[0])
                b.tick(now=clock[0])
            snap = tb.snapshot()
            assert "protocol.violations" not in \
                (snap["nodes"]["b"].get("gauges") or {})

            ref.tell(("init", 9))              # INIT mid-session
            a.drain()
            b.drain()
            for t in range(3, 6):
                clock[0] = float(t)
                a.tick(now=clock[0])
                b.tick(now=clock[0])

            # the hazard is an incident: a postmortem bundle, on disk
            kinds = [p["kind"] for p in tb.postmortems]
            assert "protocol-violation" in kinds
            pm = next(p for p in tb.postmortems
                      if p["kind"] == "protocol-violation")
            assert pm["detail"]["subject"] == "boot@worker"
            assert list(tmp_path.glob("pm-*.json"))

            # ...and a counter in the live `repro top` snapshot
            snap = tb.snapshot()
            ns = snap["nodes"]["b"]
            assert ns["gauges"]["protocol.violations"] == 1
            top = render_top(snap, color=False)
            # (the per-protocol name detail is rate-gated: it shows
            # only while violations are actively recurring)
            assert "PROTO 1 protocol violation(s) on b" in top
        finally:
            a.close()
            b.close()


class TestDeadLetterContext:
    """Satellite: dead letters preserve the causal request context."""

    def test_request_id_from_wire_triple_and_live_context(self):
        assert DeadLetter("b/x", "m", None,
                          ("req-7", "span-3", 1.5)).request_id == "req-7"

        class Ctx:
            request_id = "req-live"
        assert DeadLetter("b/x", "m", None, Ctx()).request_id \
            == "req-live"
        assert DeadLetter("b/x", "m", None).request_id is None
        assert DeadLetter("b/x", "m", None, object()).request_id is None

    def test_repr_names_the_request(self):
        dl = DeadLetter("b/x", ("pay", 1), None, ("req-7", "s", 0.0))
        assert "[req req-7]" in repr(dl)
        assert "req" not in repr(DeadLetter("b/x", "m", None)).replace(
            "repr", "")

    def test_undeliverable_local_mail_keeps_context_slot(self):
        hub = LoopbackHub()
        n = ClusterNode("solo", hub.join("solo"), workers=2)
        try:
            RemoteRef(n, "solo/ghost").tell(("work", 1))
            n.drain()
            dls = list(n.system.dead_letters)
            assert dls and dls[-1].request_id is None   # no tracer: no id
        finally:
            n.close()


class TestBusWiring:
    def test_cluster_bus_grows_a_protocol_monitor_on_request(self):
        plain = cluster_bus()
        assert not [d for d in plain.detectors
                    if isinstance(d, ProtocolMonitor)]
        wired = cluster_bus(protocols=[BOOT()])
        mons = [d for d in wired.detectors
                if isinstance(d, ProtocolMonitor)]
        assert len(mons) == 1
        assert mons[0].protocols[0].name == "boot"

    def test_node_rejects_nothing_without_kind_wanting_detectors(self):
        # a plain cluster bus must not start a conformance pump
        hub = LoopbackHub()
        n = ClusterNode("solo", hub.join("solo"), workers=2,
                        monitors=cluster_bus())
        try:
            assert not n._proto_fast
            assert n._proto_thread is None
        finally:
            n.close()

    def test_shared_bus_dedups_the_same_wire_message(self):
        # the same non-conforming wire message worded from both ends
        # collapses onto one (kind, subject, seq) key
        bus = MonitorBus(detectors=[])
        from repro.obs import Hazard
        for wording in ("sender view", "receiver view"):
            bus.publish(Hazard(kind="protocol-violation",
                               severity="error", message=wording,
                               step=0, subject="boot@worker",
                               seq=123456))
        assert len(bus.hazards) == 1
