"""The remaining classic problems across all three models."""

import pytest

from repro.verify import check_deadlock_free, explore, sample_behaviours


class TestBoundedBuffer:
    def test_kernel_program_all_items_delivered(self):
        from repro.problems.bounded_buffer import buffer_program
        res = explore(buffer_program(capacity=1, producers=1, consumers=1,
                                     items_each=2))
        assert res.complete
        for consumed, leftover in res.observations():
            assert leftover == 0
            assert list(consumed) == [(0, 0), (0, 1)]

    def test_kernel_capacity_respected(self):
        from repro.problems.bounded_buffer import buffer_program
        res = explore(buffer_program(capacity=1, producers=1, consumers=1,
                                     items_each=2))
        for trace in res.witnesses.values():
            puts = gots = 0
            for event in trace.output:
                if event[0] == "put":
                    puts += 1
                else:
                    gots += 1
                assert puts - gots <= 1   # never more than capacity ahead

    @pytest.mark.parametrize("runner_name", [
        "run_threads_buffer", "run_actor_buffer", "run_coroutine_buffer"])
    def test_exactly_once_delivery(self, runner_name):
        from repro.problems import bounded_buffer
        runner = getattr(bounded_buffer, runner_name)
        consumed = runner(capacity=3, producers=2, consumers=2,
                          items_each=20)
        assert len(consumed) == 40
        assert len(set(consumed)) == 40

    def test_homework_pseudocode_is_correct(self):
        """The 4-arm PARA is beyond exhaustive budget; stress it with
        many random schedules instead — every run must end at count 0."""
        from repro.core import RandomPolicy
        from repro.problems.bounded_buffer import PSEUDOCODE
        from repro.pseudocode import compile_program
        runtime = compile_program(PSEUDOCODE)
        for seed in range(40):
            result = runtime.run(RandomPolicy(seed))
            assert result.outcome == "done"
            assert result.output_tokens() == ["0"], seed


class TestDiningPhilosophers:
    def test_naive_strategy_deadlocks(self):
        from repro.problems.dining_philosophers import philosophers_program
        report = check_deadlock_free(philosophers_program(3, 1, "naive"),
                                     max_runs=30_000)
        assert not report.holds

    def test_waiter_strategy_deadlock_free_proof(self):
        """2 philosophers: small enough for an exhaustive proof."""
        from repro.problems.dining_philosophers import philosophers_program
        report = check_deadlock_free(philosophers_program(2, 1, "waiter"),
                                     max_runs=60_000)
        assert report.holds
        assert report.exhaustive

    def test_waiter_strategy_no_deadlock_sampled_at_scale(self):
        from repro.problems.dining_philosophers import philosophers_program
        res = sample_behaviours(philosophers_program(4, 2, "waiter"),
                                samples=200)
        assert res.outcomes.get("deadlock", 0) == 0

    def test_ordered_strategy_no_deadlock_found(self):
        from repro.problems.dining_philosophers import philosophers_program
        res = sample_behaviours(philosophers_program(4, 2, "ordered"),
                                samples=300)
        assert res.outcomes.get("deadlock", 0) == 0

    def test_unknown_strategy_rejected(self):
        from repro.problems.dining_philosophers import philosophers_program
        with pytest.raises(ValueError):
            philosophers_program(strategy="hope")

    def test_threads_ordered_all_meals(self):
        from repro.problems.dining_philosophers import \
            run_threads_philosophers
        assert run_threads_philosophers(5, 10) == 50

    def test_actor_waiter_all_meals(self):
        from repro.problems.dining_philosophers import \
            run_actor_philosophers
        assert run_actor_philosophers(4, 3) == 12

    def test_coroutine_all_meals(self):
        from repro.problems.dining_philosophers import \
            run_coroutine_philosophers
        assert run_coroutine_philosophers(5, 5) == 25


class TestReadersWriters:
    def test_kernel_no_overlap_proof_small(self):
        """1 reader + 1 writer: exhaustive proof of no overlap."""
        from repro.problems.readers_writers import rw_invariant, rw_program
        res = explore(rw_program(readers=1, writers=1, rounds=1,
                                 priority="readers"), max_runs=100_000)
        assert res.complete
        for obs in res.observations():
            assert rw_invariant(obs)

    def test_kernel_no_overlap_sampled_all_priorities(self):
        from repro.problems.readers_writers import rw_invariant, rw_program
        for priority in ("readers", "writers", "fair"):
            res = sample_behaviours(
                rw_program(readers=2, writers=2, rounds=2,
                           priority=priority), samples=150)
            for obs in res.observations():
                assert rw_invariant(obs), (priority, obs)

    def test_readers_can_share(self):
        from repro.problems.readers_writers import rw_program
        res = sample_behaviours(rw_program(readers=2, writers=1, rounds=1,
                                           priority="readers"), samples=400)
        assert any(obs[0] == 2 for obs in res.observations())

    def test_threads_rwlock_no_torn_reads(self):
        from repro.problems.readers_writers import run_threads_rw
        outcome = run_threads_rw(readers=4, writers=2, rounds=50)
        assert outcome["torn_reads"] == 0
        assert outcome["reads"] == 200

    def test_coroutine_rw_no_torn_reads(self):
        from repro.problems.readers_writers import run_coroutine_rw
        assert run_coroutine_rw()["torn_reads"] == 0

    def test_rwlock_guards(self):
        from repro.problems.readers_writers import ReadWriteLock
        lock = ReadWriteLock()
        with lock.read():
            pass
        with lock.write():
            pass

    def test_bad_priority_rejected(self):
        from repro.problems.readers_writers import rw_program
        with pytest.raises(ValueError):
            rw_program(priority="anarchy")


class TestSleepingBarber:
    def test_kernel_every_customer_resolved(self):
        from repro.problems.sleeping_barber import barber_program
        res = sample_behaviours(barber_program(customers=3, chairs=1,
                                               barbers=1), samples=200)
        for served, turned in res.observations():
            assert served + turned == 3
        assert res.outcomes.get("deadlock", 0) == 0

    @pytest.mark.parametrize("runner_name", [
        "run_threads_barber", "run_actor_barber", "run_coroutine_barber"])
    def test_runtime_accounting(self, runner_name):
        from repro.problems import sleeping_barber
        runner = getattr(sleeping_barber, runner_name)
        outcome = runner(customers=20, chairs=3, barbers=2)
        assert outcome["served"] + outcome["turned"] == 20
        assert sleeping_barber.audit_barber_log(outcome["log"]) is None

    def test_audit_catches_double_serve(self):
        from repro.problems.sleeping_barber import audit_barber_log
        log = [("seated", 1), ("served", 0, 1), ("served", 0, 1)]
        assert "twice" in audit_barber_log(log)

    def test_audit_catches_unseated_serve(self):
        from repro.problems.sleeping_barber import audit_barber_log
        assert audit_barber_log([("served", 0, 9)]) is not None


class TestPartyMatching:
    def test_kernel_single_pair(self):
        from repro.problems.party_matching import party_program
        res = explore(party_program(1, 1))
        assert res.complete
        assert res.observations() == {(("boy-0", "girl-0"),)}

    def test_kernel_two_by_two_all_matchings(self):
        from repro.problems.party_matching import party_program
        res = sample_behaviours(party_program(2, 2), samples=300)
        # every sampled terminal pairs everyone; both matchings reachable
        matchings = res.observations()
        assert len(matchings) >= 2
        for pairs in matchings:
            assert len(pairs) == 2
        assert res.outcomes.get("deadlock", 0) == 0

    @pytest.mark.parametrize("runner_name", [
        "run_threads_party", "run_actor_party", "run_coroutine_party"])
    def test_everyone_leaves_paired(self, runner_name):
        from repro.problems import party_matching
        runner = getattr(party_matching, runner_name)
        pairs = runner(boys=8, girls=8)
        assert len(pairs) == 8

    def test_audit_rejects_same_sex_pair(self):
        from repro.problems.party_matching import audit_pairs
        assert audit_pairs([("boy-0", "boy-1")], 2, 0) is not None


class TestSumWorkers:
    def test_race_and_fix(self):
        from repro.problems.sum_workers import sum_program
        racy = explore(sum_program(synchronized=False))
        assert racy.observations() == {1, 2, 3}
        safe = explore(sum_program(synchronized=True))
        assert safe.observations() == {3}

    def test_race_detector_confirms(self):
        from repro.problems.sum_workers import sum_program
        from repro.verify import find_races_program
        assert find_races_program(sum_program(synchronized=False)) is not None

    def test_pseudocode_versions(self):
        from repro.pseudocode import possible_outputs
        from repro.problems.sum_workers import (PSEUDOCODE_RACY,
                                                PSEUDOCODE_SAFE)
        assert possible_outputs(PSEUDOCODE_SAFE) == {"3"}
        racy = possible_outputs(PSEUDOCODE_RACY)
        assert "3" in racy and len(racy) > 1

    @pytest.mark.parametrize("runner_name,expected", [
        ("run_threads_sum", sum(range(1000))),
        ("run_actor_sum", sum(range(1000))),
        ("run_coroutine_sum", sum(range(1000)))])
    def test_three_models_agree(self, runner_name, expected):
        from repro.problems import sum_workers
        assert getattr(sum_workers, runner_name)() == expected


class TestBookInventory:
    def test_basic_lifecycle(self):
        from repro.problems.book_inventory import SharedMemoryInventory
        inv = SharedMemoryInventory()
        inv.add_stock("sicp", 10)
        order = inv.place_order("sicp", 4)
        assert inv.query("sicp") == {"stock": 6, "reserved": 4,
                                     "shipped": 0, "added": 10}
        inv.ship_order(order.order_id)
        assert inv.query("sicp")["shipped"] == 4

    def test_cancel_returns_stock(self):
        from repro.problems.book_inventory import SharedMemoryInventory
        inv = SharedMemoryInventory()
        inv.add_stock("sicp", 5)
        order = inv.place_order("sicp", 5)
        inv.cancel_order(order.order_id)
        assert inv.query("sicp")["stock"] == 5

    def test_over_order_rejected(self):
        from repro.problems.book_inventory import (InventoryError,
                                                   SharedMemoryInventory)
        inv = SharedMemoryInventory()
        inv.add_stock("sicp", 2)
        with pytest.raises(InventoryError):
            inv.place_order("sicp", 3)

    def test_double_ship_rejected(self):
        from repro.problems.book_inventory import (InventoryError,
                                                   SharedMemoryInventory)
        inv = SharedMemoryInventory()
        inv.add_stock("sicp", 2)
        order = inv.place_order("sicp", 1)
        inv.ship_order(order.order_id)
        with pytest.raises(InventoryError):
            inv.ship_order(order.order_id)

    def test_waiting_order_unblocked_by_restock(self):
        import time
        from repro.problems.book_inventory import SharedMemoryInventory
        from repro.threads import JThread
        inv = SharedMemoryInventory()
        inv.add_stock("sicp", 1)

        def buyer():
            return inv.place_order("sicp", 3, wait=True, timeout=5)
        t = JThread(target=buyer).start()
        time.sleep(0.02)
        inv.add_stock("sicp", 2)
        order = t.join()
        assert order.copies == 3

    def test_concurrent_hammering_preserves_invariants(self):
        from repro.problems.book_inventory import \
            run_concurrent_inventory_demo
        outcome = run_concurrent_inventory_demo(clerks=4, ops_each=50)
        assert outcome["counts"]["ordered"] > 0

    def test_actor_inventory_protocol(self):
        from repro.actors import ActorSystem, ask
        from repro.problems.book_inventory import (inventory_invariants,
                                                   spawn_inventory_actor)

        import threading
        replies = []
        done = threading.Event()

        from repro.actors import Actor

        class Client(Actor):
            def __init__(self, inventory):
                super().__init__()
                self.inventory = inventory

            def pre_start(self):
                self.inventory.tell(("add", "sicp", 10),
                                    sender=self.self_ref)

            def receive(self, message, sender):
                replies.append(message)
                if message[0] == "ok" and len(replies) == 1:
                    self.inventory.tell(("order", "sicp", 4),
                                        sender=self.self_ref)
                elif message[0] == "order":
                    self.inventory.tell(("snapshot",), sender=self.self_ref)
                elif message[0] == "snapshot":
                    done.set()

        with ActorSystem(workers=2) as system:
            inventory = spawn_inventory_actor(system)
            system.spawn(Client, inventory)
            assert done.wait(timeout=10)
        snapshot = next(m[1] for m in replies if m[0] == "snapshot")
        assert inventory_invariants(snapshot) is None
        assert snapshot["sicp"]["reserved"] == 4

    def test_invariant_checker_catches_corruption(self):
        from repro.problems.book_inventory import inventory_invariants
        assert inventory_invariants(
            {"x": {"stock": -1, "reserved": 0, "shipped": 0,
                   "added": -1}}) is not None
        assert inventory_invariants(
            {"x": {"stock": 1, "reserved": 0, "shipped": 0,
                   "added": 5}}) is not None


class TestThreadPoolArith:
    def test_fib_values(self):
        from repro.problems.thread_pool_arith import fib
        assert [fib(n) for n in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]

    def test_prime_count(self):
        from repro.problems.thread_pool_arith import prime_count
        assert prime_count(20) == 8

    def test_lab_checksums_stable_across_pool_sizes(self):
        from repro.problems.thread_pool_arith import run_arith_lab
        rows = run_arith_lab(tasks=8, workload=300, pool_sizes=(1, 2, 4))
        checksums = {r["checksum"] for r in rows}
        assert len(checksums) == 1
        assert all(r["elapsed_s"] > 0 for r in rows)
