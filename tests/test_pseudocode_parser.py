"""Parser: statement forms, precedence, block structure, errors."""

import pytest

from repro.pseudocode import ParseError, parse
from repro.pseudocode.ast_nodes import (Assign, Binary, Call, ExcAccBlock,
                                        IfStmt, MessageExpr, MethodCall,
                                        NewExpr, NotifyStmt, OnReceiving,
                                        ParaBlock, PrintStmt, SendStmt,
                                        WaitStmt, WhileStmt)


class TestStatements:
    def test_assignment(self):
        prog = parse("total = 0")
        stmt = prog.main[0]
        assert isinstance(stmt, Assign)
        assert stmt.name == "total"

    def test_print_vs_println(self):
        prog = parse('PRINT "a"\nPRINTLN "b"')
        assert not prog.main[0].newline
        assert prog.main[1].newline

    def test_if_elseif_else_chain(self):
        prog = parse("""
IF x >= 90 THEN
  PRINTLN "A"
ELSE IF x >= 80 THEN
  PRINTLN "B"
ELSE
  PRINTLN "F"
ENDIF
""")
        stmt = prog.main[0]
        assert isinstance(stmt, IfStmt)
        assert len(stmt.branches) == 2
        assert len(stmt.else_body) == 1

    def test_while_block(self):
        prog = parse("WHILE x < 3\n  x = x + 1\nENDWHILE")
        stmt = prog.main[0]
        assert isinstance(stmt, WhileStmt)
        assert len(stmt.body) == 1

    def test_para_block_arms(self):
        prog = parse('PARA\nPRINT "a"\nPRINT "b"\nENDPARA')
        stmt = prog.main[0]
        assert isinstance(stmt, ParaBlock)
        assert len(stmt.arms) == 2

    def test_send_statement(self):
        prog = parse("Send(m1).To(r1)")
        stmt = prog.main[0]
        assert isinstance(stmt, SendStmt)

    def test_exc_acc_with_wait_notify(self):
        prog = parse("""
DEFINE f()
  EXC_ACC
    WAIT()
    NOTIFY()
  END_EXC_ACC
ENDDEF
""")
        block = prog.functions["f"].body[0]
        assert isinstance(block, ExcAccBlock)
        assert isinstance(block.body[0], WaitStmt)
        assert isinstance(block.body[1], NotifyStmt)


class TestDefinitions:
    def test_function_with_params(self):
        prog = parse("DEFINE changeX(diff)\n  x = x + diff\nENDDEF")
        fn = prog.functions["changeX"]
        assert fn.params == ["diff"]
        assert len(fn.body) == 1

    def test_function_without_parens(self):
        prog = parse("DEFINE go\n  x = 1\nENDDEF")
        assert prog.functions["go"].params == []

    def test_class_with_methods(self):
        prog = parse("""
CLASS Receiver
  DEFINE receive()
    ON_RECEIVING
      MESSAGE.h(var)
        PRINT var
  ENDDEF
ENDCLASS
""")
        cls = prog.classes["Receiver"]
        receive = cls.methods["receive"]
        assert isinstance(receive.body[0], OnReceiving)
        assert receive.has_receive()

    def test_on_receiving_multiple_arms(self):
        prog = parse("""
CLASS R
  DEFINE go()
    ON_RECEIVING
      MESSAGE.h(a)
        PRINT a
      MESSAGE.w(a, b)
        PRINT a
        PRINT b
  ENDDEF
ENDCLASS
""")
        arms = prog.classes["R"].methods["go"].body[0].arms
        assert [a.msg_name for a in arms] == ["h", "w"]
        assert arms[1].params == ["a", "b"]
        assert len(arms[1].body) == 2


class TestExpressions:
    def _expr(self, text):
        return parse(f"x = {text}").main[0].value

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, Binary) and e.op == "+"
        assert isinstance(e.right, Binary) and e.right.op == "*"

    def test_comparison_binds_looser_than_arithmetic(self):
        e = self._expr("x + diff < 0")
        assert e.op == "<"
        assert e.left.op == "+"

    def test_and_or_not(self):
        e = self._expr("NOT a AND b OR c")
        assert e.op == "OR"

    def test_parentheses(self):
        e = self._expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_message_expression(self):
        e = self._expr('MESSAGE.h("hello")')
        assert isinstance(e, MessageExpr)
        assert e.msg_name == "h"

    def test_new_expression(self):
        e = self._expr("new Receiver()")
        assert isinstance(e, NewExpr)
        assert e.class_name == "Receiver"

    def test_call_and_method_chain(self):
        e = self._expr("f(1, 2)")
        assert isinstance(e, Call) and len(e.args) == 2
        prog = parse("r1.receive()")
        assert isinstance(prog.main[0].expr, MethodCall)

    def test_unary_minus(self):
        prog = parse("PARA\nchangeX(-11)\nENDPARA\n"
                     "DEFINE changeX(d)\nx = d\nENDDEF")
        call = prog.main[0].arms[0].expr
        assert call.name == "changeX"


class TestErrors:
    def test_unclosed_block(self):
        with pytest.raises(ParseError):
            parse("PARA\nPRINT 1")

    def test_missing_then(self):
        with pytest.raises(ParseError, match="THEN"):
            parse("IF x > 1\nPRINT 1\nENDIF")

    def test_garbage_statement(self):
        with pytest.raises(ParseError):
            parse("= = =")

    def test_on_receiving_requires_arm(self):
        with pytest.raises(ParseError, match="MESSAGE"):
            parse("CLASS R\nDEFINE go()\nON_RECEIVING\nENDDEF\nENDCLASS")

    def test_error_names_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse("x = 1\nIF y\nENDIF")
